//! The MayQL REPL: type queries against a world set, see u-relations.
//!
//! ```text
//! cargo run --example repl                              # interactive
//! cargo run --example repl -- --batch examples/census.mayql
//! ```
//!
//! The session starts with the paper's `censusform` relation loaded (one row
//! per plausible reading of a scanned census form, weighted by OCR
//! confidence), so the census walkthrough works out of the box:
//!
//! ```text
//! mayql> LET census = REPAIR KEY name IN censusform WEIGHT BY w;
//! mayql> SELECT POSSIBLE ssn FROM census WHERE name = 'Smith';
//! ```
//!
//! Statements end with `;`. `LET name = <query>;` evaluates a query once and
//! registers the result as a new relation — the way to share one repair's
//! components across several later queries. `EXPLAIN <query>;` shows the
//! lowered and the optimized plan instead of evaluating (queries themselves
//! always run through the optimizer); `EXPLAIN ANALYZE <query>;` *executes*
//! the query with tracing on (against a scratch copy of the session world
//! set) and prints the optimized plan annotated per node with wall time,
//! rows, morsel fan-out, pool traffic, and confidence-solver counters.
//!
//! Meta commands: `\d` lists the relations, `\stats` shows the last query's
//! executor statistics (descriptor-pool occupancy and hit rates,
//! string-dictionary size, elided dedups, parallelism, confidence-solver
//! and SIP counters, plan-cache hit rate), `\timing` toggles per-statement
//! wall-clock reporting, `\trace on|off` toggles span tracing for
//! subsequent queries, `\trace last <file>` exports the last captured trace
//! as Chrome trace-event JSON (open it in `chrome://tracing` or Perfetto),
//! `\metrics` prints the process-wide metrics registry, `\set threads N`
//! changes the session's worker budget (initially `MAYBMS_THREADS` or the
//! machine's parallelism), `\set conf_exact_limit N` changes the cost
//! cutover above which an approximate `CONF(eps, delta)` switches from
//! exact per-group computation to sampling (initially
//! `MAYBMS_CONF_EXACT_LIMIT` or 4096), `\set cost_opt on|off` toggles the
//! statistics-driven cost-based plan phase (initially `MAYBMS_COST_OPT`,
//! default on), `\set sip on|off` toggles Bloom-filter sideways information
//! passing (initially `MAYBMS_SIP`, default on), `\set late_mat on|off`
//! toggles late materialization in join pipelines (initially
//! `MAYBMS_LATE_MAT`, default on), `\set plan_cache on|off` toggles the
//! session's LRU cache of optimized plans, `\q` quits, `\help` shows the
//! cheat sheet. A `\set` with an unknown knob or a malformed value is a
//! hard error (it lists the valid knobs) — in batch mode it stops the run
//! with a non-zero exit instead of silently continuing with stale settings.
//!
//! In `--batch` mode the file is processed line by line exactly like an
//! interactive session (`--` comments, `;` separators, `\`-meta commands —
//! including `\timing` and `\trace` — all work), each statement is echoed
//! and executed, and the first error stops the run with a non-zero exit —
//! which is how CI smoke-tests the front-end against
//! `examples/census.mayql` and the trace pipeline against
//! `examples/trace.mayql`.

use std::io::{BufRead, Write};
use std::process::ExitCode;
use std::time::Instant;

use maybms::algebra::{
    estimate_preorder, run_traced, run_with_stats_opts, ExecCfg, ExecStats, StatsProvider,
    LATE_MAT_ENV, SIP_ENV,
};
use maybms::core::{
    metrics, ParCfg, QueryTrace, Relation, Schema, Tuple, URelation, Value, ValueType, WorldSet,
};
use maybms::ql::{conf_exact_limit_from_env, CONF_EXACT_LIMIT_ENV};
use maybms::sql::lexer::{lex, TokenKind};
use maybms::sql::{
    cost_opt_enabled, explain, explain_analyze, explain_analyze_plan, parse_statement, Catalog,
    PlanCache, Statement, COST_OPT_ENV,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let mut session = Session::new(demo_world());
    match args.get(1).map(String::as_str) {
        Some("--batch") => {
            let Some(path) = args.get(2) else {
                eprintln!("usage: repl [--batch <script.mayql>]");
                return ExitCode::from(2);
            };
            session.batch(path)
        }
        Some(other) => {
            eprintln!("unknown option `{other}`; usage: repl [--batch <script.mayql>]");
            ExitCode::from(2)
        }
        None => session.interactive(),
    }
}

/// The paper's running example: one row per plausible reading of each
/// scanned census form, weighted by how likely the OCR considers it, plus
/// a small certain `homes(ssn, city)` relation so join queries (and their
/// `EXPLAIN` output) have something to join against out of the box.
fn demo_world() -> WorldSet {
    let schema = Schema::of(&[
        ("name", ValueType::Str),
        ("ssn", ValueType::Int),
        ("w", ValueType::Int),
    ])
    .expect("distinct columns");
    let readings = [
        ("Smith", 185, 3),
        ("Smith", 785, 1),
        ("Brown", 185, 1),
        ("Brown", 186, 1),
    ];
    let rel = Relation::from_rows(
        schema,
        readings
            .iter()
            .map(|&(n, s, w)| Tuple::new(vec![Value::str(n), s.into(), Value::Int(w)]))
            .collect(),
    )
    .expect("rows match schema");
    let mut ws = WorldSet::new();
    ws.insert("censusform", URelation::from_certain(&rel))
        .expect("certain relation is valid");

    let homes_schema =
        Schema::of(&[("ssn", ValueType::Int), ("city", ValueType::Str)]).expect("distinct columns");
    let homes = [(185, "Armonk"), (785, "Putnam"), (186, "Armonk")];
    let homes_rel = Relation::from_rows(
        homes_schema,
        homes
            .iter()
            .map(|&(s, c)| Tuple::new(vec![s.into(), Value::str(c)]))
            .collect(),
    )
    .expect("rows match schema");
    ws.insert("homes", URelation::from_certain(&homes_rel))
        .expect("certain relation is valid");
    ws
}

/// What a meta command asks the driving loop to do next.
enum MetaOutcome {
    Continue,
    Quit,
}

/// One REPL session: the world set plus every knob and piece of
/// last-query state the meta commands inspect. Interactive and batch mode
/// drive the same session type, so `\timing`, `\trace`, `\stats`, … behave
/// identically in both.
struct Session {
    ws: WorldSet,
    threads: usize,
    timing: bool,
    trace: bool,
    /// Whether compiled plans are served from / inserted into `plan_cache`
    /// (`\set plan_cache on|off`). The cache itself persists across
    /// toggles, so flipping the knob off and on keeps warm entries.
    plan_cache_on: bool,
    plan_cache: PlanCache,
    last_stats: Option<ExecStats>,
    last_trace: Option<QueryTrace>,
}

impl Session {
    fn new(ws: WorldSet) -> Session {
        Session {
            ws,
            threads: ParCfg::from_env().threads,
            timing: false,
            trace: false,
            plan_cache_on: true,
            plan_cache: PlanCache::default(),
            last_stats: None,
            last_trace: None,
        }
    }

    fn interactive(&mut self) -> ExitCode {
        println!("MayQL — type queries ending with `;`, \\help for help, \\q to quit.");
        println!(
            "Preloaded: censusform(name, ssn, w), homes(ssn, city) — the paper's running example."
        );
        let stdin = std::io::stdin();
        let mut buffer = String::new();
        loop {
            print!(
                "{}",
                if buffer.is_empty() {
                    "mayql> "
                } else {
                    "   ... "
                }
            );
            std::io::stdout().flush().expect("stdout is writable");
            let mut line = String::new();
            match stdin.lock().read_line(&mut line) {
                Ok(0) => return ExitCode::SUCCESS, // EOF
                Ok(_) => {}
                Err(e) => {
                    eprintln!("repl: {e}");
                    return ExitCode::FAILURE;
                }
            }
            let trimmed = line.trim();
            if buffer_blank(&buffer) && trimmed.starts_with('\\') {
                buffer.clear();
                match self.meta(trimmed) {
                    Ok(MetaOutcome::Quit) => return ExitCode::SUCCESS,
                    Ok(MetaOutcome::Continue) => {}
                    Err(msg) => eprint!("{msg}"),
                }
                continue;
            }
            buffer.push_str(&line);
            if !statement_complete(&buffer, trimmed) {
                continue;
            }
            let src = std::mem::take(&mut buffer);
            if let Err(msg) = self.run_statement(&src) {
                eprint!("{msg}");
            }
        }
    }

    /// Batch mode is the interactive loop without a prompt: the script is
    /// processed line by line, so meta commands (`\timing`, `\trace`, …)
    /// work exactly as they do at the keyboard. Each statement is echoed,
    /// and the first error stops the run with a non-zero exit.
    fn batch(&mut self, path: &str) -> ExitCode {
        let src = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("repl: cannot read {path}: {e}");
                return ExitCode::from(2);
            }
        };
        let mut buffer = String::new();
        for line in src.lines() {
            let trimmed = line.trim();
            if buffer_blank(&buffer) && trimmed.starts_with('\\') {
                buffer.clear();
                println!("mayql> {trimmed}");
                match self.meta(trimmed) {
                    Ok(MetaOutcome::Quit) => return ExitCode::SUCCESS,
                    Ok(MetaOutcome::Continue) => {}
                    Err(msg) => {
                        eprint!("{msg}");
                        return ExitCode::FAILURE;
                    }
                }
                continue;
            }
            buffer.push_str(line);
            buffer.push('\n');
            if !statement_complete(&buffer, trimmed) {
                continue;
            }
            let stmt_src = std::mem::take(&mut buffer);
            println!("mayql> {};", statement_text(&stmt_src));
            if let Err(msg) = self.run_statement(&stmt_src) {
                eprint!("{msg}");
                return ExitCode::FAILURE;
            }
        }
        if !buffer.trim().is_empty() {
            eprintln!(
                "repl: unterminated statement at end of {path}: {}",
                statement_text(&buffer)
            );
            return ExitCode::FAILURE;
        }
        ExitCode::SUCCESS
    }

    /// Parse and execute one complete statement, honoring `\timing`.
    fn run_statement(&mut self, src: &str) -> Result<(), String> {
        match parse_statement(src) {
            Err(e) => Err(e.render(src)),
            Ok(stmt) => {
                let start = Instant::now();
                let outcome = self.execute(&stmt, src);
                if self.timing {
                    println!("Time: {:.3} ms", start.elapsed().as_secs_f64() * 1e3);
                }
                outcome
            }
        }
    }

    /// Compile and run one statement, printing its result. A `LET`
    /// registers the result as a relation instead, so its components are
    /// shared by every later query that scans it; an `EXPLAIN` prints the
    /// lowered and the optimized plan without evaluating, and `EXPLAIN
    /// ANALYZE` executes against a scratch copy of the world set (so its
    /// repairs don't mint session components) and prints the annotated
    /// plan. Queries run through the logical optimizer by default. `src` is
    /// the statement's source text, so semantic errors render with the same
    /// caret diagnostics as parse errors; runtime errors carry no span and
    /// print as a plain message.
    fn execute(&mut self, stmt: &Statement, src: &str) -> Result<(), String> {
        let catalog = Catalog::from_world_set(&self.ws);
        let par = ParCfg::with_threads(self.threads);
        match stmt {
            Statement::Query(query) => {
                let (plan, _) = self.compile_cached(&catalog, query, src)?;
                let result = self.run_plan(&plan, &par)?;
                print!("{result}");
                println!("({} rows)", result.len());
                Ok(())
            }
            Statement::Let { name, query, .. } => {
                let (plan, _) = self.compile_cached(&catalog, query, src)?;
                let result = self.run_plan(&plan, &par)?;
                let rows = result.len();
                self.ws
                    .insert(name.name.clone(), result)
                    .map_err(|e| format!("error: {e}\n"))?;
                println!("relation `{}` materialized ({rows} rows)", name.name);
                Ok(())
            }
            Statement::Explain {
                query,
                analyze: false,
                ..
            } => {
                let mut ex = explain(&catalog, query).map_err(|e| e.render(src))?;
                // Route the estimates through the plan cache so a pending
                // one-shot q-error correction (from a previous EXPLAIN
                // ANALYZE of this query) shows up in the rendered
                // `est_rows=` — the planner's corrected beliefs, not its
                // original ones.
                if self.plan_cache_on {
                    let key = query_text(query, src);
                    match self.plan_cache.lookup(&catalog, key) {
                        Some(hit) => {
                            ex.optimized = hit.plan;
                            ex.estimates = hit.estimates;
                        }
                        None => self.plan_cache.insert(
                            &catalog,
                            key,
                            ex.optimized.clone(),
                            ex.estimates.clone(),
                        ),
                    }
                }
                print!("{ex}");
                Ok(())
            }
            Statement::Explain {
                query,
                analyze: true,
                ..
            } => {
                // Scratch copy: the analyzed run's side effects (repair-key
                // components, materialized pools) must not leak into the
                // session world set.
                let mut scratch = self.ws.clone();
                let ex = if self.plan_cache_on {
                    let (plan, ests) = self.compile_cached(&catalog, query, src)?;
                    explain_analyze_plan(&mut scratch, plan, ests, query.span(), &par)
                        .map_err(|e| e.render(src))?
                } else {
                    explain_analyze(&catalog, &mut scratch, query, &par)
                        .map_err(|e| e.render(src))?
                };
                // Feed the observed per-node row counts back: the cached
                // entry's next estimates are scaled by the measured
                // q-error, once.
                if self.plan_cache_on {
                    let observed = ex.node_observations();
                    if !observed.is_empty() {
                        self.plan_cache
                            .note_observed(&catalog, query_text(query, src), &observed);
                    }
                }
                print!("{ex}");
                self.last_stats = Some(ex.stats);
                self.last_trace = Some(ex.trace);
                Ok(())
            }
        }
    }

    /// Compile one query to its optimized plan — through the session plan
    /// cache when it is on. The cache key is the query's source slice, so
    /// `SELECT …`, `LET x = SELECT …`, and `EXPLAIN [ANALYZE] SELECT …` of
    /// the same query text share one entry. Returns the plan and its
    /// pre-order cardinality estimates (corrected by the latest observed
    /// run when a one-shot q-error correction was pending).
    #[allow(clippy::type_complexity)]
    fn compile_cached(
        &mut self,
        catalog: &Catalog,
        query: &maybms::sql::Query,
        src: &str,
    ) -> Result<(maybms::algebra::Plan, Option<Vec<f64>>), String> {
        if self.plan_cache_on {
            if let Some(hit) = self.plan_cache.lookup(catalog, query_text(query, src)) {
                return Ok((hit.plan, hit.estimates));
            }
        }
        let (plan, _) = maybms::sql::lower(catalog, query).map_err(|e| e.render(src))?;
        let plan =
            maybms::sql::optimize_plan(catalog, &plan, query.span()).map_err(|e| e.render(src))?;
        let estimates = catalog
            .has_stats()
            .then(|| estimate_preorder(&plan, catalog, catalog));
        if self.plan_cache_on {
            self.plan_cache.insert(
                catalog,
                query_text(query, src),
                plan.clone(),
                estimates.clone(),
            );
        }
        Ok((plan, estimates))
    }

    /// Run a compiled plan, traced or not per the session's `\trace` flag,
    /// updating the last-query state either way.
    fn run_plan(
        &mut self,
        plan: &maybms::algebra::Plan,
        par: &ParCfg,
    ) -> Result<URelation, String> {
        if self.trace {
            let (result, stats, trace) =
                run_traced(&mut self.ws, plan, par).map_err(|e| format!("error: {e}\n"))?;
            println!(
                "trace: {} spans captured (\\trace last <file> to export)",
                trace.spans.len()
            );
            self.last_stats = Some(stats);
            self.last_trace = Some(trace);
            Ok(result)
        } else {
            let (result, stats) = run_with_stats_opts(&mut self.ws, plan, par)
                .map_err(|e| format!("error: {e}\n"))?;
            self.last_stats = Some(stats);
            Ok(result)
        }
    }

    /// Handle one `\`-meta command (shared by interactive and batch mode).
    /// An `Err` is a hard error: interactive mode prints it and continues,
    /// batch mode stops with a non-zero exit (a script that mistypes a knob
    /// must not keep running on stale settings).
    fn meta(&mut self, cmd: &str) -> Result<MetaOutcome, String> {
        match cmd {
            "\\q" | "\\quit" => return Ok(MetaOutcome::Quit),
            "\\d" => self.describe(),
            "\\stats" => self.stats(),
            "\\metrics" => print!("{}", metrics().render()),
            "\\timing" => {
                self.timing = !self.timing;
                println!("Timing is {}.", if self.timing { "on" } else { "off" });
            }
            "\\help" | "\\h" => help(),
            cmd if cmd.starts_with("\\trace") => self.trace_cmd(cmd),
            cmd if cmd.starts_with("\\set") => self.set_cmd(cmd)?,
            other => println!("unknown command `{other}`; try \\help"),
        }
        Ok(MetaOutcome::Continue)
    }

    /// `\trace on|off` toggles span tracing for subsequent queries;
    /// `\trace last <file>` writes the last captured trace (from a traced
    /// query or an `EXPLAIN ANALYZE`) as Chrome trace-event JSON.
    fn trace_cmd(&mut self, cmd: &str) {
        let mut parts = cmd.split_whitespace().skip(1);
        match (parts.next(), parts.next()) {
            (Some("on"), None) => {
                self.trace = true;
                println!("Tracing is on.");
            }
            (Some("off"), None) => {
                self.trace = false;
                println!("Tracing is off.");
            }
            (Some("last"), Some(file)) => match &self.last_trace {
                None => println!(
                    "no trace captured yet; run a query with \\trace on or EXPLAIN ANALYZE"
                ),
                Some(trace) => match std::fs::write(file, trace.to_json()) {
                    Ok(()) => println!(
                        "trace written to {file} ({} spans; open in chrome://tracing or Perfetto)",
                        trace.spans.len()
                    ),
                    Err(e) => println!("cannot write {file}: {e}"),
                },
            },
            (None, None) => println!(
                "Tracing is {}; {} trace captured.",
                if self.trace { "on" } else { "off" },
                if self.last_trace.is_some() { "a" } else { "no" }
            ),
            _ => println!("usage: \\trace on|off  or  \\trace last <file>"),
        }
    }

    /// `\set <knob> <value>`. Unknown knobs and malformed values are hard
    /// errors listing the valid knobs — never a silent no-op.
    fn set_cmd(&mut self, cmd: &str) -> Result<(), String> {
        const VALID: &str = "valid knobs: threads <N>, conf_exact_limit <N>, \
             cost_opt on|off, sip on|off, late_mat on|off, plan_cache on|off";
        let mut parts = cmd.split_whitespace().skip(1);
        let knob = parts.next();
        let raw = parts.next();
        let number = raw.and_then(|v| v.parse::<usize>().ok());
        match (knob, raw, number) {
            (Some("threads"), Some(_), Some(n)) if n >= 1 => {
                self.threads = n;
                println!("threads = {n}");
            }
            (Some("conf_exact_limit"), Some(_), Some(n)) => {
                // Read back through the env so the session's queries and
                // the `\set` knob agree on one source of truth.
                std::env::set_var(CONF_EXACT_LIMIT_ENV, n.to_string());
                println!("conf_exact_limit = {}", conf_exact_limit_from_env());
            }
            (Some("cost_opt"), Some(v @ ("on" | "off")), _) => {
                // Same one-source-of-truth pattern: the planner reads the
                // env on every compile, so toggling it here takes effect
                // for the very next statement.
                std::env::set_var(COST_OPT_ENV, if v == "on" { "1" } else { "0" });
                println!(
                    "cost_opt = {}",
                    if cost_opt_enabled() { "on" } else { "off" }
                );
            }
            (Some("sip"), Some(v @ ("on" | "off")), _) => {
                std::env::set_var(SIP_ENV, if v == "on" { "1" } else { "0" });
                println!(
                    "sip = {}",
                    if ExecCfg::from_env().sip { "on" } else { "off" }
                );
            }
            (Some("late_mat"), Some(v @ ("on" | "off")), _) => {
                std::env::set_var(LATE_MAT_ENV, if v == "on" { "1" } else { "0" });
                println!(
                    "late_mat = {}",
                    if ExecCfg::from_env().late_mat {
                        "on"
                    } else {
                        "off"
                    }
                );
            }
            (Some("plan_cache"), Some(v @ ("on" | "off")), _) => {
                self.plan_cache_on = v == "on";
                println!("plan_cache = {v}");
            }
            (
                Some(
                    knob @ ("threads" | "conf_exact_limit" | "cost_opt" | "sip" | "late_mat"
                    | "plan_cache"),
                ),
                raw,
                _,
            ) => {
                return Err(match raw {
                    Some(v) => format!("error: \\set {knob}: invalid value `{v}`; {VALID}\n"),
                    None => format!("error: \\set {knob}: missing value; {VALID}\n"),
                });
            }
            (Some(other), _, _) => {
                return Err(format!("error: \\set: unknown knob `{other}`; {VALID}\n"));
            }
            (None, _, _) => return Err(format!("error: usage: \\set <knob> <value>; {VALID}\n")),
        }
        Ok(())
    }

    /// Print the last query's executor statistics (the `\stats`
    /// meta-command): descriptor-pool occupancy with intern/conjoin hit
    /// rates, and the string dictionary size — the observability window
    /// into the columnar execution core. Before any query has run, the
    /// session's knobs are still reported so the state stays inspectable.
    fn stats(&self) {
        let Some(s) = &self.last_stats else {
            println!("no query executed yet");
            self.print_cache_and_settings();
            return;
        };
        let p = s.pool;
        println!("last query:");
        println!("  wall time:       {:.3} ms", s.wall_nanos as f64 / 1e6);
        println!(
            "  descriptor pool: {} distinct ({} spilled past inline capacity)",
            s.descriptors, s.descriptors_spilled
        );
        println!(
            "  interning:       {} hits / {} calls ({:.1}% shared)",
            p.intern_hits,
            p.intern_calls,
            if p.intern_calls == 0 {
                0.0
            } else {
                p.intern_hits as f64 / p.intern_calls as f64 * 100.0
            }
        );
        println!(
            "  conjunctions:    {} calls ({} shortcut, {} inconsistent)",
            p.conjoin_calls, p.conjoin_shortcuts, p.conjoin_inconsistent
        );
        println!("  string dict:     {} distinct strings", s.strings);
        println!(
            "  dedups elided:   {} (proven redundant by plan properties)",
            s.dedups_elided
        );
        println!(
            "  parallelism:     {} workers used of {} budgeted, {} morsels",
            s.par.workers_used.max(1),
            s.threads,
            s.par.morsels
        );
        println!(
            "  shard merges:    {} entries re-interned in {:.3} ms",
            s.par.shard_entries,
            s.par.merge_nanos as f64 / 1e6
        );
        let c = s.conf;
        if c.exact_groups + c.sampled_groups > 0 {
            println!(
                "  confidence:      {} groups exact, {} sampled, {} samples drawn (largest group {} descriptors)",
                c.exact_groups, c.sampled_groups, c.samples_drawn, c.largest_group
            );
        }
        let sip = s.sip;
        if sip.filters_built > 0 {
            println!(
                "  sip:             {} filters built, {} probe rows tested, {} pruned ({:.1}%)",
                sip.filters_built,
                sip.probe_rows_tested,
                sip.probe_rows_pruned,
                if sip.probe_rows_tested == 0 {
                    0.0
                } else {
                    sip.probe_rows_pruned as f64 / sip.probe_rows_tested as f64 * 100.0
                }
            );
        }
        println!("  output:          {} rows", s.output_rows);
        self.print_cache_and_settings();
    }

    /// The `\stats` footer: plan-cache counters plus every session knob —
    /// printed whether or not a query has run yet, so the session state is
    /// always inspectable.
    fn print_cache_and_settings(&self) {
        println!(
            "plan cache: {} hits, {} misses, {} entries",
            self.plan_cache.hits(),
            self.plan_cache.misses(),
            self.plan_cache.len()
        );
        let exec = ExecCfg::from_env();
        let on_off = |b: bool| if b { "on" } else { "off" };
        println!(
            "session settings: threads = {}, conf_exact_limit = {}, cost_opt = {}, sip = {}, late_mat = {}, plan_cache = {}",
            self.threads,
            conf_exact_limit_from_env(),
            on_off(cost_opt_enabled()),
            on_off(exec.sip),
            on_off(exec.late_mat),
            on_off(self.plan_cache_on)
        );
    }

    fn describe(&self) {
        for (name, rel) in &self.ws.relations {
            let cols: Vec<String> = rel
                .schema()
                .columns()
                .iter()
                .map(|c| format!("{} {}", c.name, c.ty))
                .collect();
            println!("{name}({}) — {} rows", cols.join(", "), rel.len());
        }
        println!("components in the world set: {}", self.ws.components.len());
    }
}

/// Whether the buffer holds no statement text yet — empty, whitespace, or
/// `--` comments only (the lexer skips comments, leaving just its EOF
/// token). A meta command arriving on a blank buffer runs immediately.
fn buffer_blank(buffer: &str) -> bool {
    match lex(buffer) {
        Ok(tokens) => tokens.len() <= 1,
        Err(_) => false,
    }
}

/// Whether the buffered text forms a complete statement. Statements run
/// once a `;` *token* arrives: the buffer is lexed, so trailing `--`
/// comments and `;` inside string literals or comments don't confuse the
/// boundary. A buffer the lexer rejects (e.g. an unterminated string) is
/// submitted once the raw line ends with `;`, letting the parser surface
/// the diagnostic.
fn statement_complete(buffer: &str, last_line: &str) -> bool {
    match lex(buffer) {
        Ok(tokens) => tokens.len() >= 2 && tokens[tokens.len() - 2].kind == TokenKind::Semi,
        Err(_) => last_line.trim().ends_with(';'),
    }
}

/// The query's exact source slice — the plan cache's key text (the cache
/// normalizes whitespace itself).
fn query_text<'a>(query: &maybms::sql::Query, src: &'a str) -> &'a str {
    let span = query.span();
    &src[span.start.min(src.len())..span.end.min(src.len())]
}

/// A statement's source collapsed to one echo line: comments dropped,
/// whitespace normalized, trailing `;` removed.
fn statement_text(src: &str) -> String {
    let without_comments: Vec<&str> = src
        .lines()
        .map(|l| l.find("--").map_or(l, |i| &l[..i]).trim())
        .filter(|l| !l.is_empty())
        .collect();
    without_comments
        .join(" ")
        .trim_end_matches(';')
        .trim()
        .to_string()
}

fn help() {
    println!(
        "statements (end with `;`):\n  \
         SELECT [POSSIBLE|CERTAIN|CONF[(eps, delta)]] cols|* FROM items [WHERE pred] [UNION ...];\n  \
         REPAIR KEY cols IN rel [WEIGHT BY col];\n  \
         LET name = <query>;        -- materialize a result as a relation\n  \
         EXPLAIN <query>;           -- show the lowered and optimized plans\n  \
         EXPLAIN ANALYZE <query>;   -- execute with tracing, annotate the plan per node\n\
         meta commands:\n  \
         \\d       list relations and schemas\n  \
         \\stats   executor statistics of the last query\n  \
         \\metrics the process-wide metrics registry (counters, histograms)\n  \
         \\timing  toggle wall-clock reporting per statement\n  \
         \\trace on|off      trace subsequent queries\n  \
         \\trace last <file> export the last trace as Chrome trace JSON\n  \
         \\set threads <N>  worker-thread budget for query execution\n  \
         \\set conf_exact_limit <N>  cost cutover for CONF(eps, delta); 0 forces sampling\n  \
         \\set cost_opt on|off  cost-based join reordering (initially MAYBMS_COST_OPT)\n  \
         \\set sip on|off  Bloom-filter sideways information passing (initially MAYBMS_SIP)\n  \
         \\set late_mat on|off  late materialization in join pipelines (initially MAYBMS_LATE_MAT)\n  \
         \\set plan_cache on|off  session LRU cache of optimized plans\n  \
         \\help    this help\n  \
         \\q       quit"
    );
}
