//! The MayQL REPL: type queries against a world set, see u-relations.
//!
//! ```text
//! cargo run --example repl                              # interactive
//! cargo run --example repl -- --batch examples/census.mayql
//! ```
//!
//! The session starts with the paper's `censusform` relation loaded (one row
//! per plausible reading of a scanned census form, weighted by OCR
//! confidence), so the census walkthrough works out of the box:
//!
//! ```text
//! mayql> LET census = REPAIR KEY name IN censusform WEIGHT BY w;
//! mayql> SELECT POSSIBLE ssn FROM census WHERE name = 'Smith';
//! ```
//!
//! Statements end with `;`. `LET name = <query>;` evaluates a query once and
//! registers the result as a new relation — the way to share one repair's
//! components across several later queries. `EXPLAIN <query>;` shows the
//! lowered and the optimized plan instead of evaluating (queries themselves
//! always run through the optimizer). Meta commands: `\d` lists the
//! relations, `\stats` shows the last query's executor statistics
//! (descriptor-pool occupancy and hit rates, string-dictionary size,
//! elided dedups, parallelism and confidence-solver counters), `\timing`
//! toggles per-statement wall-clock reporting, `\set threads N` changes
//! the session's worker budget (initially `MAYBMS_THREADS` or the
//! machine's parallelism), `\set conf_exact_limit N` changes the cost
//! cutover above which an approximate `CONF(eps, delta)` switches from
//! exact per-group computation to sampling (initially
//! `MAYBMS_CONF_EXACT_LIMIT` or 4096), `\q` quits, `\help` shows the
//! cheat sheet.
//!
//! In `--batch` mode the file is parsed as a script (`--` comments, `;`
//! separators), each statement is echoed and executed, and the first error
//! stops the run with a non-zero exit — which is how CI smoke-tests the
//! front-end against `examples/census.mayql`.

use std::io::{BufRead, Write};
use std::process::ExitCode;
use std::time::Instant;

use maybms::algebra::{run_with_stats_opts, ExecStats};
use maybms::core::{ParCfg, Relation, Schema, Tuple, URelation, Value, ValueType, WorldSet};
use maybms::ql::{conf_exact_limit_from_env, CONF_EXACT_LIMIT_ENV};
use maybms::sql::lexer::{lex, TokenKind};
use maybms::sql::{explain, parse_script, parse_statement, Catalog, Statement};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let mut ws = demo_world();
    match args.get(1).map(String::as_str) {
        Some("--batch") => {
            let Some(path) = args.get(2) else {
                eprintln!("usage: repl [--batch <script.mayql>]");
                return ExitCode::from(2);
            };
            batch(&mut ws, path)
        }
        Some(other) => {
            eprintln!("unknown option `{other}`; usage: repl [--batch <script.mayql>]");
            ExitCode::from(2)
        }
        None => interactive(&mut ws),
    }
}

/// The paper's running example: one row per plausible reading of each
/// scanned census form, weighted by how likely the OCR considers it, plus
/// a small certain `homes(ssn, city)` relation so join queries (and their
/// `EXPLAIN` output) have something to join against out of the box.
fn demo_world() -> WorldSet {
    let schema = Schema::of(&[
        ("name", ValueType::Str),
        ("ssn", ValueType::Int),
        ("w", ValueType::Int),
    ])
    .expect("distinct columns");
    let readings = [
        ("Smith", 185, 3),
        ("Smith", 785, 1),
        ("Brown", 185, 1),
        ("Brown", 186, 1),
    ];
    let rel = Relation::from_rows(
        schema,
        readings
            .iter()
            .map(|&(n, s, w)| Tuple::new(vec![Value::str(n), s.into(), Value::Int(w)]))
            .collect(),
    )
    .expect("rows match schema");
    let mut ws = WorldSet::new();
    ws.insert("censusform", URelation::from_certain(&rel))
        .expect("certain relation is valid");

    let homes_schema =
        Schema::of(&[("ssn", ValueType::Int), ("city", ValueType::Str)]).expect("distinct columns");
    let homes = [(185, "Armonk"), (785, "Putnam"), (186, "Armonk")];
    let homes_rel = Relation::from_rows(
        homes_schema,
        homes
            .iter()
            .map(|&(s, c)| Tuple::new(vec![s.into(), Value::str(c)]))
            .collect(),
    )
    .expect("rows match schema");
    ws.insert("homes", URelation::from_certain(&homes_rel))
        .expect("certain relation is valid");
    ws
}

fn batch(ws: &mut WorldSet, path: &str) -> ExitCode {
    let src = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("repl: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let statements = match parse_script(&src) {
        Ok(s) => s,
        Err(e) => {
            eprint!("{}", e.render(&src));
            return ExitCode::FAILURE;
        }
    };
    let mut last_stats = None;
    let threads = ParCfg::from_env().threads;
    for stmt in &statements {
        let span = stmt.span();
        println!("mayql> {};", &src[span.start..span.end]);
        if let Err(msg) = execute(ws, stmt, &src, threads, &mut last_stats) {
            eprint!("{msg}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

fn interactive(ws: &mut WorldSet) -> ExitCode {
    println!("MayQL — type queries ending with `;`, \\help for help, \\q to quit.");
    println!(
        "Preloaded: censusform(name, ssn, w), homes(ssn, city) — the paper's running example."
    );
    let stdin = std::io::stdin();
    let mut buffer = String::new();
    let mut last_stats: Option<ExecStats> = None;
    let mut timing = false;
    let mut threads = ParCfg::from_env().threads;
    loop {
        print!(
            "{}",
            if buffer.is_empty() {
                "mayql> "
            } else {
                "   ... "
            }
        );
        std::io::stdout().flush().expect("stdout is writable");
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => return ExitCode::SUCCESS, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("repl: {e}");
                return ExitCode::FAILURE;
            }
        }
        let trimmed = line.trim();
        if buffer.is_empty() && trimmed.starts_with('\\') {
            match trimmed {
                "\\q" | "\\quit" => return ExitCode::SUCCESS,
                "\\d" => describe(ws),
                "\\stats" => stats(&last_stats),
                "\\timing" => {
                    timing = !timing;
                    println!("Timing is {}.", if timing { "on" } else { "off" });
                }
                "\\help" | "\\h" => help(),
                cmd if cmd.starts_with("\\set") => {
                    let mut parts = cmd.split_whitespace().skip(1);
                    let knob = parts.next();
                    let value = parts.next().and_then(|v| v.parse::<usize>().ok());
                    match (knob, value) {
                        (Some("threads"), Some(n)) if n >= 1 => {
                            threads = n;
                            println!("threads = {n}");
                        }
                        (Some("conf_exact_limit"), Some(n)) => {
                            // Read back through the env so the session's
                            // queries and the `\set` knob agree on one
                            // source of truth.
                            std::env::set_var(CONF_EXACT_LIMIT_ENV, n.to_string());
                            println!("conf_exact_limit = {}", conf_exact_limit_from_env());
                        }
                        _ => println!(
                            "usage: \\set threads <N>   (N >= 1)\n       \
                             \\set conf_exact_limit <N>   (0 forces sampling)"
                        ),
                    }
                }
                other => println!("unknown command `{other}`; try \\help"),
            }
            continue;
        }
        buffer.push_str(&line);
        // Statements run once a `;` *token* arrives: the buffer is lexed,
        // so trailing `--` comments and `;` inside string literals or
        // comments don't confuse the boundary. A buffer the lexer rejects
        // (e.g. an unterminated string) is submitted once the raw line
        // ends with `;`, letting the parser surface the diagnostic.
        let complete = match lex(&buffer) {
            Ok(tokens) => tokens.len() >= 2 && tokens[tokens.len() - 2].kind == TokenKind::Semi,
            Err(_) => trimmed.ends_with(';'),
        };
        if !complete {
            continue;
        }
        let src = std::mem::take(&mut buffer);
        match parse_statement(&src) {
            Err(e) => eprint!("{}", e.render(&src)),
            Ok(stmt) => {
                let start = Instant::now();
                let outcome = execute(ws, &stmt, &src, threads, &mut last_stats);
                let elapsed = start.elapsed();
                if let Err(msg) = outcome {
                    eprint!("{msg}");
                }
                if timing {
                    println!("Time: {:.3} ms", elapsed.as_secs_f64() * 1e3);
                }
            }
        }
    }
}

/// Compile and run one statement, printing its result. A `LET` registers
/// the result as a relation instead, so its components are shared by every
/// later query that scans it; an `EXPLAIN` prints the lowered and the
/// optimized plan without evaluating. Queries run through the logical
/// optimizer by default. `src` is the statement's source text (for the
/// batch mode, the whole script — spans index into it either way), so
/// semantic errors render with the same caret diagnostics as parse errors.
/// Runtime errors carry no span and print as a plain message. Each run's
/// executor statistics are kept in `last_stats` for the `\stats` command;
/// `threads` is the session's worker budget (`\set threads N`).
fn execute(
    ws: &mut WorldSet,
    stmt: &Statement,
    src: &str,
    threads: usize,
    last_stats: &mut Option<ExecStats>,
) -> Result<(), String> {
    let catalog = Catalog::from_world_set(ws);
    let par = ParCfg::with_threads(threads);
    let compile = |query: &maybms::sql::Query| -> Result<maybms::algebra::Plan, String> {
        let (plan, _) = maybms::sql::lower(&catalog, query).map_err(|e| e.render(src))?;
        maybms::sql::optimize_plan(&catalog, &plan, query.span()).map_err(|e| e.render(src))
    };
    match stmt {
        Statement::Query(query) => {
            let plan = compile(query)?;
            let (result, stats) =
                run_with_stats_opts(ws, &plan, &par).map_err(|e| format!("error: {e}\n"))?;
            *last_stats = Some(stats);
            print!("{result}");
            println!("({} rows)", result.len());
            Ok(())
        }
        Statement::Let { name, query, .. } => {
            let plan = compile(query)?;
            let (result, stats) =
                run_with_stats_opts(ws, &plan, &par).map_err(|e| format!("error: {e}\n"))?;
            *last_stats = Some(stats);
            let rows = result.len();
            ws.insert(name.name.clone(), result)
                .map_err(|e| format!("error: {e}\n"))?;
            println!("relation `{}` materialized ({rows} rows)", name.name);
            Ok(())
        }
        Statement::Explain { query, .. } => {
            let ex = explain(&catalog, query).map_err(|e| e.render(src))?;
            print!("{ex}");
            Ok(())
        }
    }
}

/// Print the last query's executor statistics (the `\stats` meta-command):
/// descriptor-pool occupancy with intern/conjoin hit rates, and the string
/// dictionary size — the observability window into the columnar execution
/// core.
fn stats(last: &Option<ExecStats>) {
    let Some(s) = last else {
        println!("no query has run yet in this session");
        return;
    };
    let p = s.pool;
    println!("last query:");
    println!(
        "  descriptor pool: {} distinct ({} spilled past inline capacity)",
        s.descriptors, s.descriptors_spilled
    );
    println!(
        "  interning:       {} hits / {} calls ({:.1}% shared)",
        p.intern_hits,
        p.intern_calls,
        if p.intern_calls == 0 {
            0.0
        } else {
            p.intern_hits as f64 / p.intern_calls as f64 * 100.0
        }
    );
    println!(
        "  conjunctions:    {} calls ({} shortcut, {} inconsistent)",
        p.conjoin_calls, p.conjoin_shortcuts, p.conjoin_inconsistent
    );
    println!("  string dict:     {} distinct strings", s.strings);
    println!(
        "  dedups elided:   {} (proven redundant by plan properties)",
        s.dedups_elided
    );
    println!(
        "  parallelism:     {} workers used of {} budgeted, {} morsels",
        s.par.workers_used.max(1),
        s.threads,
        s.par.morsels
    );
    println!(
        "  shard merges:    {} entries re-interned in {:.3} ms",
        s.par.shard_entries,
        s.par.merge_nanos as f64 / 1e6
    );
    let c = s.conf;
    if c.exact_groups + c.sampled_groups > 0 {
        println!(
            "  confidence:      {} groups exact, {} sampled, {} samples drawn (largest group {} descriptors)",
            c.exact_groups, c.sampled_groups, c.samples_drawn, c.largest_group
        );
    }
    println!("  output:          {} rows", s.output_rows);
}

fn describe(ws: &WorldSet) {
    for (name, rel) in &ws.relations {
        let cols: Vec<String> = rel
            .schema()
            .columns()
            .iter()
            .map(|c| format!("{} {}", c.name, c.ty))
            .collect();
        println!("{name}({}) — {} rows", cols.join(", "), rel.len());
    }
    println!("components in the world set: {}", ws.components.len());
}

fn help() {
    println!(
        "statements (end with `;`):\n  \
         SELECT [POSSIBLE|CERTAIN|CONF[(eps, delta)]] cols|* FROM items [WHERE pred] [UNION ...];\n  \
         REPAIR KEY cols IN rel [WEIGHT BY col];\n  \
         LET name = <query>;   -- materialize a result as a relation\n  \
         EXPLAIN <query>;      -- show the lowered and optimized plans\n\
         meta commands:\n  \
         \\d      list relations and schemas\n  \
         \\stats  executor statistics of the last query\n  \
         \\timing toggle wall-clock reporting per statement\n  \
         \\set threads <N>  worker-thread budget for query execution\n  \
         \\set conf_exact_limit <N>  cost cutover for CONF(eps, delta); 0 forces sampling\n  \
         \\help   this help\n  \
         \\q      quit"
    );
}
