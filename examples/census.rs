//! The paper's running example: ambiguous census forms.
//!
//! Two census forms were scanned with uncertain social-security numbers:
//! Smith's SSN reads as 185 or 785, Brown's as 185 or 186. Each *reading* of
//! each form becomes a row of a certain relation, then `repair-key` on the
//! form id turns the readings into alternative worlds. The example then asks
//! the paper's signature questions: which answers are possible, which are
//! certain, and with what confidence.
//!
//! Run with `cargo run --example census`.

use maybms::algebra::{col, lit, run, Plan, Predicate};
use maybms::core::{Relation, Schema, Tuple, URelation, Value, ValueType, WorldSet};
use maybms::ql::{certain, conf, possible, repair_key};

fn main() {
    // censusform(name, ssn, w): one row per plausible reading of a form,
    // weighted by how likely the OCR considers the reading.
    let schema = Schema::of(&[
        ("name", ValueType::Str),
        ("ssn", ValueType::Int),
        ("w", ValueType::Int),
    ])
    .expect("distinct columns");
    let readings = [
        ("Smith", 185, 3), // the scanner favours 185 for Smith
        ("Smith", 785, 1),
        ("Brown", 185, 1),
        ("Brown", 186, 1),
    ];
    let rel = Relation::from_rows(
        schema,
        readings
            .iter()
            .map(|&(n, s, w)| Tuple::new(vec![Value::str(n), s.into(), Value::Int(w)]))
            .collect(),
    )
    .expect("rows match schema");

    let mut ws = WorldSet::new();
    ws.insert("censusform", URelation::from_certain(&rel))
        .expect("certain relation is valid");

    // repair key name in censusform weight by w — one world per way of
    // choosing a single reading per person. Materialize the result once so
    // every query below shares the same two components (re-evaluating the
    // repair plan would mint fresh, independent components each time).
    let u = run(
        &mut ws,
        &repair_key(Plan::scan("censusform"), &["name"], Some("w")),
    )
    .expect("repair-key evaluates");
    println!("== u-relation after repair-key (4 worlds) ==");
    print!("{u}");
    ws.insert("census", u)
        .expect("repair-key descriptors are valid");
    let repaired = Plan::scan("census");

    // Q1: what are Smith's possible SSNs?
    let smiths = repaired
        .clone()
        .select(Predicate::eq(col("name"), lit("Smith")))
        .project(&["ssn"]);
    let poss = run(&mut ws, &possible(smiths.clone())).expect("possible evaluates");
    println!("\n== possible ssn where name = Smith ==");
    print!("{poss}");

    // Q2: is any of them certain? (No: both readings survive.)
    let cert = run(&mut ws, &certain(smiths)).expect("certain evaluates");
    println!("\n== certain ssn where name = Smith ==");
    print!("{cert}");

    // Q3: tuple confidences for every (name, ssn) claim.
    let all =
        run(&mut ws, &conf(repaired.clone().project(&["name", "ssn"]))).expect("conf evaluates");
    println!("\n== conf of each (name, ssn) ==");
    print!("{all}");

    // Q4: could two different people share an SSN? Self-join the repaired
    // relation on ssn under two name roles and keep distinct pairs.
    let left = repaired
        .clone()
        .project(&["name", "ssn"])
        .rename(&[("name", "n1")]);
    let right = repaired.project(&["name", "ssn"]).rename(&[("name", "n2")]);
    let clash = left
        .join(right)
        .select(Predicate::lt(col("n1"), col("n2")))
        .project(&["n1", "n2", "ssn"]);
    let clash_conf = run(&mut ws, &conf(clash)).expect("conf evaluates");
    println!("\n== conf that two people share an ssn ==");
    print!("{clash_conf}");

    // The repaired census introduced two components (one per person); after
    // the queries the world set still decomposes into those independent
    // choices.
    println!("\ncomponents in the world set: {}", ws.components.len());
}
