//! The paper's running example: ambiguous census forms, driven end-to-end
//! through the MayQL front-end.
//!
//! Two census forms were scanned with uncertain social-security numbers:
//! Smith's SSN reads as 185 or 785, Brown's as 185 or 186. Each *reading* of
//! each form becomes a row of a certain relation, then `REPAIR KEY name`
//! turns the readings into alternative worlds. The example then asks the
//! paper's signature questions — which answers are possible, which are
//! certain, and with what confidence — each written as MayQL text, lowered
//! by `maybms-sql`, and checked against the hand-built plan the example
//! used before the front-end existed.
//!
//! Run with `cargo run --example census`.

use maybms::algebra::{col, lit, run, Plan, Predicate};
use maybms::core::{Relation, Schema, Tuple, URelation, Value, ValueType, WorldSet};
use maybms::ql::{certain, conf, possible, repair_key};
use maybms::sql::{compile, compile_unoptimized, explain, parse_query, to_mayql, Catalog};

/// Compile MayQL text, assert it *lowers* to exactly the given hand-built
/// plan (compared through the canonical MayQL printing, which is injective
/// on the plan shapes the planner emits), and return the **optimized** plan
/// — the one the planner hands the executor by default.
fn compile_checked(catalog: &Catalog, text: &str, hand_built: &Plan) -> Plan {
    let lowered =
        compile_unoptimized(catalog, text).unwrap_or_else(|e| panic!("{}", e.render(text)));
    let printed = to_mayql(catalog, &lowered).expect("lowered plan has a MayQL form");
    let expected = to_mayql(catalog, hand_built).expect("hand-built plan has a MayQL form");
    assert_eq!(
        printed, expected,
        "MayQL lowering diverged from the hand-built plan for: {text}"
    );
    compile(catalog, text).unwrap_or_else(|e| panic!("{}", e.render(text)))
}

fn main() {
    // censusform(name, ssn, w): one row per plausible reading of a form,
    // weighted by how likely the OCR considers the reading.
    let schema = Schema::of(&[
        ("name", ValueType::Str),
        ("ssn", ValueType::Int),
        ("w", ValueType::Int),
    ])
    .expect("distinct columns");
    let readings = [
        ("Smith", 185, 3), // the scanner favours 185 for Smith
        ("Smith", 785, 1),
        ("Brown", 185, 1),
        ("Brown", 186, 1),
    ];
    let rel = Relation::from_rows(
        schema,
        readings
            .iter()
            .map(|&(n, s, w)| Tuple::new(vec![Value::str(n), s.into(), Value::Int(w)]))
            .collect(),
    )
    .expect("rows match schema");

    let mut ws = WorldSet::new();
    ws.insert("censusform", URelation::from_certain(&rel))
        .expect("certain relation is valid");
    let catalog = Catalog::from_world_set(&ws);

    // REPAIR KEY name IN censusform WEIGHT BY w — one world per way of
    // choosing a single reading per person. Materialize the result once so
    // every query below shares the same two components (re-evaluating the
    // repair plan would mint fresh, independent components each time).
    let repair_text = "REPAIR KEY name IN censusform WEIGHT BY w";
    let repair_plan = compile_checked(
        &catalog,
        repair_text,
        &repair_key(Plan::scan("censusform"), &["name"], Some("w")),
    );
    let u = run(&mut ws, &repair_plan).expect("repair-key evaluates");
    println!("== {repair_text} (4 worlds) ==");
    print!("{u}");
    ws.insert("census", u)
        .expect("repair-key descriptors are valid");
    let catalog = Catalog::from_world_set(&ws);

    // Q1: what are Smith's possible SSNs?
    let q1 = "SELECT POSSIBLE ssn FROM census WHERE name = 'Smith'";
    let smiths = Plan::scan("census")
        .select(Predicate::eq(col("name"), lit("Smith")))
        .project(["ssn"]);
    let plan = compile_checked(&catalog, q1, &possible(smiths.clone()));
    let poss = run(&mut ws, &plan).expect("possible evaluates");
    println!("\n== {q1} ==");
    print!("{poss}");

    // Q2: is any of them certain? (No: both readings survive.)
    let q2 = "SELECT CERTAIN ssn FROM census WHERE name = 'Smith'";
    let plan = compile_checked(&catalog, q2, &certain(smiths));
    let cert = run(&mut ws, &plan).expect("certain evaluates");
    println!("\n== {q2} ==");
    print!("{cert}");

    // Q3: tuple confidences for every (name, ssn) claim.
    let q3 = "SELECT CONF name, ssn FROM census";
    let plan = compile_checked(
        &catalog,
        q3,
        &conf(Plan::scan("census").project(["name", "ssn"])),
    );
    let all = run(&mut ws, &plan).expect("conf evaluates");
    println!("\n== {q3} ==");
    print!("{all}");

    // Q4: could two different people share an SSN? Self-join the repaired
    // relation on ssn under two name roles and keep distinct ordered pairs.
    let q4 = "SELECT CONF n1, n2, ssn \
              FROM (SELECT name AS n1, ssn FROM census), \
                   (SELECT name AS n2, ssn FROM census) \
              WHERE n1 < n2";
    let left = Plan::scan("census")
        .project(["name", "ssn"])
        .rename([("name", "n1")]);
    let right = Plan::scan("census")
        .project(["name", "ssn"])
        .rename([("name", "n2")]);
    let clash = conf(
        left.join(right)
            .select(Predicate::lt(col("n1"), col("n2")))
            .project(["n1", "n2", "ssn"]),
    );
    let plan = compile_checked(&catalog, q4, &clash);
    let clash_conf = run(&mut ws, &plan).expect("conf evaluates");
    println!("\n== {q4} ==");
    print!("{clash_conf}");

    // What the optimizer does when a filter sits above a POSSIBLE
    // subquery: the selection commutes *through* `possible` (the paper's
    // equivalence σ ∘ possible = possible ∘ σ), so world-collapsing runs
    // on the filtered — smallest — intermediate.
    let q5 = "SELECT ssn FROM (SELECT POSSIBLE name, ssn FROM census) WHERE name = 'Smith'";
    let parsed = parse_query(q5).expect("q5 parses");
    let ex = explain(&catalog, &parsed).expect("q5 analyzes");
    println!("\n== EXPLAIN {q5} ==");
    print!("{ex}");

    // The repaired census introduced two components (one per person); after
    // the queries the world set still decomposes into those independent
    // choices.
    println!("\ncomponents in the world set: {}", ws.components.len());
}
