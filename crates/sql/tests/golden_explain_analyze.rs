//! Golden test pinning the `EXPLAIN ANALYZE` rendering for the census
//! join + `CONF` query — exactly what the REPL prints (both share
//! [`maybms_sql::explain_analyze`]). Wall-clock values are masked to
//! `<T>` (they are the one nondeterministic ingredient); every row
//! count, morsel count, and confidence-solver counter is pinned exactly,
//! so a change in operator traffic must update this expectation
//! consciously.

use maybms_core::{ParCfg, WorldSet};
use maybms_sql::{compile, explain_analyze, parse_query, Catalog};

/// The REPL's preloaded world with the repaired `census` relation
/// materialized, mirroring `LET census = REPAIR KEY name IN censusform
/// WEIGHT BY w;` on the demo world.
fn census_world() -> WorldSet {
    use maybms_core::{Relation, Schema, Tuple, URelation, Value, ValueType};
    let schema = Schema::of(&[
        ("name", ValueType::Str),
        ("ssn", ValueType::Int),
        ("w", ValueType::Int),
    ])
    .expect("distinct columns");
    let readings = [
        ("Smith", 185, 3),
        ("Smith", 785, 1),
        ("Brown", 185, 1),
        ("Brown", 186, 1),
    ];
    let rel = Relation::from_rows(
        schema,
        readings
            .iter()
            .map(|&(n, s, w)| Tuple::new(vec![Value::str(n), s.into(), Value::Int(w)]))
            .collect(),
    )
    .expect("rows match schema");
    let mut ws = WorldSet::new();
    ws.insert("censusform", URelation::from_certain(&rel))
        .expect("certain relation is valid");
    let homes_schema =
        Schema::of(&[("ssn", ValueType::Int), ("city", ValueType::Str)]).expect("distinct columns");
    let homes = [(185, "Armonk"), (785, "Putnam"), (186, "Armonk")];
    let homes_rel = Relation::from_rows(
        homes_schema,
        homes
            .iter()
            .map(|&(s, c)| Tuple::new(vec![s.into(), Value::str(c)]))
            .collect(),
    )
    .expect("rows match schema");
    ws.insert("homes", URelation::from_certain(&homes_rel))
        .expect("certain relation is valid");

    let catalog = Catalog::from_world_set(&ws);
    let repair =
        compile(&catalog, "REPAIR KEY name IN censusform WEIGHT BY w").expect("repair compiles");
    let census = maybms_algebra::run(&mut ws, &repair).expect("repair runs");
    ws.insert("census", census)
        .expect("repaired relation is valid");
    ws
}

/// Replace every `time=…ms` / `total=…ms` wall-clock value with `<T>`,
/// by hand (the build is offline; no regex crate). Everything else in
/// the rendering is deterministic.
fn mask_times(s: &str) -> String {
    let mut out = String::new();
    let mut rest = s;
    loop {
        let next = ["time=", "total="]
            .iter()
            .filter_map(|k| rest.find(k).map(|i| i + k.len()))
            .min();
        let Some(value_at) = next else {
            out.push_str(rest);
            return out;
        };
        out.push_str(&rest[..value_at]);
        rest = &rest[value_at..];
        let end = rest.find("ms").expect("wall-clock values end with `ms`");
        out.push_str("<T>ms");
        rest = &rest[end + 2..];
    }
}

#[test]
fn explain_analyze_renders_the_census_conf_join() {
    // This golden pins the *cost-optimized, SIP-on* shape; neutralize an
    // ambient MAYBMS_COST_OPT=0 or MAYBMS_SIP=0 (the CI matrix runs the
    // suite all ways).
    std::env::set_var(maybms_sql::COST_OPT_ENV, "1");
    std::env::set_var(maybms_algebra::SIP_ENV, "1");
    let mut ws = census_world();
    let catalog = Catalog::from_world_set(&ws);
    let query = parse_query("SELECT CONF city FROM census, homes WHERE name = 'Smith'")
        .expect("query parses");
    let analyzed = explain_analyze(&catalog, &mut ws, &query, &ParCfg::with_threads(1))
        .expect("query executes");
    // The cost phase reorders the join — the filtered census side (2
    // estimated rows) becomes the hash build (right) side — and every
    // node line carries the estimator's `est_rows=`, graded against the
    // observed counts by the closing `estimation:` line. With SIP on, the
    // executor evaluates the build side *first* (the trace tree renders
    // children in execution order, so the census subtree prints above
    // `scan[homes]`) and pushes a Bloom filter over the two Smith ssns
    // into the homes scan: one of its three rows (ssn 186) is pruned
    // before the join sees it — `rows=2` at the scan, `in=4` at the join,
    // and the closing `sip:` line counts the filter. The pruned scan is
    // also the one node where the observed count diverges from the
    // estimate (3 estimated, 2 after pruning), hence q_error max 1.50.
    let expected = "\
analyzed plan:
  · scan-convert  (time=<T>ms items=7)
  conf  (time=<T>ms rows=2 in=2 exact_groups=2 est_rows=2)
    project[city]  (time=<T>ms rows=2 in=2 est_rows=2)
      natural-join  (time=<T>ms rows=2 in=4 conjoins=2 est_rows=2)
        project[ssn]  (time=<T>ms rows=2 in=2 est_rows=2)
          select[name = 'Smith']  (time=<T>ms rows=2 in=4 est_rows=2)
            scan[census]  (time=<T>ms rows=4 est_rows=4)
        scan[homes]  (time=<T>ms rows=2 est_rows=3)
    · canonical-sort  (time=<T>ms items=2)
    · solve  (time=<T>ms items=2)
execution: total=<T>ms rows=2 threads=1
sip: filters=1 tested=3 pruned=1
estimation: nodes=7 q_error median=1.00 max=1.50
";
    assert_eq!(mask_times(&analyzed.to_string()), expected);
}

#[test]
fn mask_times_touches_only_wall_clock_values() {
    assert_eq!(
        mask_times("a  (time=0.123ms rows=2)\nexecution: total=1.000ms rows=2 threads=1\n"),
        "a  (time=<T>ms rows=2)\nexecution: total=<T>ms rows=2 threads=1\n"
    );
    assert_eq!(mask_times("no clocks here"), "no clocks here");
}
