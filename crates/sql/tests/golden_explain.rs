//! Golden tests pinning the `EXPLAIN` rendering for the census queries.
//!
//! These strings are exactly what the REPL prints for `EXPLAIN <query>;`
//! (both share [`maybms_sql::explain`]), so a rewrite-rule change that
//! shifts plan shapes must update these expectations consciously.

use std::collections::BTreeMap;

use maybms_core::stats::{ColumnStats, RelationStats};
use maybms_core::{Schema, ValueType};
use maybms_sql::{explain, parse_query, Catalog};

/// The REPL's preloaded world: the raw census readings, the repaired
/// `census` relation a `LET` materializes, and the certain `homes` lookup.
fn census_catalog() -> Catalog {
    let mut catalog = Catalog::new();
    let census = Schema::of(&[
        ("name", ValueType::Str),
        ("ssn", ValueType::Int),
        ("w", ValueType::Int),
    ])
    .expect("distinct columns");
    catalog.insert("censusform", census.clone());
    catalog.insert("census", census);
    catalog.insert(
        "homes",
        Schema::of(&[("ssn", ValueType::Int), ("city", ValueType::Str)]).expect("distinct columns"),
    );
    catalog
}

fn explain_text(query: &str) -> String {
    let catalog = census_catalog();
    let parsed = parse_query(query).expect("query parses");
    explain(&catalog, &parsed)
        .expect("query analyzes")
        .to_string()
}

/// The selective predicate sinks below the join into the `census` side,
/// and projection pruning narrows the join to the columns consumed above
/// (the join key `ssn` plus the projected `city`). The join line carries
/// the plan-time SIP decision: without statistics the build side defaults
/// under the cutoff, so a Bloom filter over `ssn` will be pushed sideways
/// into the probe subtree.
#[test]
fn explain_pushes_selection_below_the_join() {
    std::env::set_var(maybms_algebra::SIP_ENV, "1");
    let text = explain_text("SELECT POSSIBLE city FROM census, homes WHERE name = 'Smith'");
    let expected = "\
lowered plan:
  possible
    project[city]
      select[name = 'Smith']
        natural-join
          scan[census]
          scan[homes]
optimized plan:
  possible
    project[city]
      natural-join  (sip=bloom(ssn))
        project[ssn]
          select[name = 'Smith']
            scan[census]
        scan[homes]
";
    assert_eq!(text, expected);
}

/// The outer selection and projection commute *through* `possible` (the
/// paper's equivalences), so the world-collapse runs on the filtered,
/// projected — smallest — intermediate; the then-redundant outer
/// projection is elided.
#[test]
fn explain_commutes_possible_inward() {
    let text = explain_text(
        "SELECT ssn FROM (SELECT POSSIBLE name, ssn FROM census) WHERE name = 'Smith'",
    );
    let expected = "\
lowered plan:
  project[ssn]
    select[name = 'Smith']
      possible
        project[name, ssn]
          scan[census]
optimized plan:
  possible
    project[ssn]
      select[name = 'Smith']
        scan[census]
";
    assert_eq!(text, expected);
}

/// `repair-key` is a rewrite barrier: selections must not cross it (they
/// would change the key groups and the repair weights), so the filter
/// stays put and the plan survives optimization unchanged.
#[test]
fn explain_leaves_repair_key_alone() {
    let text = explain_text(
        "SELECT ssn FROM (REPAIR KEY name IN censusform WEIGHT BY w) WHERE name = 'Smith'",
    );
    let expected = "\
lowered plan:
  project[ssn]
    select[name = 'Smith']
      repair-key[key=name; weight=w]
        scan[censusform]
optimized plan:
  project[ssn]
    select[name = 'Smith']
      repair-key[key=name; weight=w]
        scan[censusform]
";
    assert_eq!(text, expected);
}

/// Approximate confidence renders its (ε, δ) parameters in the plan tree
/// and commutes with selections exactly like exact `conf` — the sampling
/// streams are keyed on descriptor-group content, so the rewrite cannot
/// perturb the estimates.
#[test]
fn explain_shows_approx_conf_parameters() {
    let text =
        explain_text("SELECT ssn FROM (SELECT CONF(0.05, 0.01) * FROM census) WHERE ssn = 1");
    let expected = "\
lowered plan:
  project[ssn]
    select[ssn = 1]
      conf(eps=0.05, delta=0.01)
        scan[census]
optimized plan:
  project[ssn]
    conf(eps=0.05, delta=0.01)
      select[ssn = 1]
        scan[census]
";
    assert_eq!(text, expected);
}

/// With statistics registered, `EXPLAIN` renders the cost model's
/// `est_rows=` on every optimized-plan node, and the cost phase moves the
/// selective census side to the hash build (right) side of the join — whose
/// estimated 5 rows are under the SIP cutoff, so the join also renders its
/// `sip=bloom(ssn)` decision.
#[test]
fn explain_shows_estimates_and_reorders_with_stats() {
    // This golden pins the *cost-optimized* shape; neutralize an ambient
    // MAYBMS_COST_OPT=0 or MAYBMS_SIP=0 (the CI matrix runs the suite all
    // ways).
    std::env::set_var(maybms_sql::COST_OPT_ENV, "1");
    std::env::set_var(maybms_algebra::SIP_ENV, "1");
    let mut catalog = census_catalog();
    let rel = |rows: u64, nontrivial: f64, cols: &[(&str, f64)]| RelationStats {
        rows,
        columns: cols
            .iter()
            .map(|&(name, ndv)| {
                (
                    name.to_string(),
                    ColumnStats {
                        distinct: ndv,
                        min_max: None,
                    },
                )
            })
            .collect::<BTreeMap<_, _>>(),
        nontrivial_frac: nontrivial,
        mean_alternatives: if nontrivial > 0.0 { 2.0 } else { 0.0 },
    };
    catalog.insert_stats(
        "census",
        rel(
            1_000,
            1.0,
            &[("name", 200.0), ("ssn", 1_000.0), ("w", 10.0)],
        ),
    );
    catalog.insert_stats("homes", rel(50, 0.0, &[("ssn", 50.0), ("city", 20.0)]));
    let parsed = parse_query("SELECT POSSIBLE city FROM census, homes WHERE name = 'Smith'")
        .expect("query parses");
    let text = explain(&catalog, &parsed)
        .expect("query analyzes")
        .to_string();
    let expected = "\
lowered plan:
  possible
    project[city]
      select[name = 'Smith']
        natural-join
          scan[census]
          scan[homes]
optimized plan:
  possible  (est_rows=5)
    project[city]  (est_rows=5)
      natural-join  (est_rows=5 sip=bloom(ssn))
        scan[homes]  (est_rows=50)
        project[ssn]  (est_rows=5)
          select[name = 'Smith']  (est_rows=5)
            scan[census]  (est_rows=1000)
";
    assert_eq!(text, expected);
}

/// A predicate over the `conf` column an enclosing `CONF` produced cannot
/// commute (it reads a produced column), while a predicate over input
/// columns does.
#[test]
fn explain_guards_conf_column_predicates() {
    let text = explain_text(
        "SELECT name FROM (SELECT CONF name, ssn FROM census) WHERE conf > 0.5 AND name = 'Smith'",
    );
    let expected = "\
lowered plan:
  project[name]
    select[conf > 0.5 AND name = 'Smith']
      conf
        project[name, ssn]
          scan[census]
optimized plan:
  project[name]
    select[conf > 0.5]
      conf
        project[name, ssn]
          select[name = 'Smith']
            scan[census]
";
    assert_eq!(text, expected);
}
