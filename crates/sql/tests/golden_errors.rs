//! Golden tests for the front-end's error paths: each case pins the exact
//! span *and* message (and, for the headline cases, the fully rendered
//! caret diagnostic), so error quality is part of the crate's contract
//! rather than an accident of the current implementation.

use maybms_core::{Schema, ValueType};
use maybms_sql::{compile, parse_query, Catalog, Span, SqlError};

/// `census(name str, ssn int, w int)` plus `r(a int, b int)`.
fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.insert(
        "census",
        Schema::of(&[
            ("name", ValueType::Str),
            ("ssn", ValueType::Int),
            ("w", ValueType::Int),
        ])
        .expect("distinct columns"),
    );
    c.insert(
        "r",
        Schema::of(&[("a", ValueType::Int), ("b", ValueType::Int)]).expect("distinct columns"),
    );
    c
}

/// The span of `needle` within `src` (first occurrence), so the expected
/// spans in assertions stay readable.
fn span_of(src: &str, needle: &str) -> Span {
    let start = src.find(needle).expect("needle occurs in src");
    Span::new(start, start + needle.len())
}

fn err(src: &str) -> SqlError {
    compile(&catalog(), src).expect_err("query must be rejected")
}

#[test]
fn unknown_relation() {
    let src = "SELECT * FROM nosuch";
    let e = err(src);
    assert_eq!(e.span, span_of(src, "nosuch"));
    assert_eq!(e.message, "unknown relation `nosuch`");
    assert_eq!(
        e.render(src),
        concat!(
            "error: unknown relation `nosuch`\n",
            " --> line 1, column 15\n",
            "  | SELECT * FROM nosuch\n",
            "  |               ^^^^^^\n"
        )
    );
}

#[test]
fn unknown_column_in_select_list() {
    let src = "SELECT salary FROM census";
    let e = err(src);
    assert_eq!(e.span, span_of(src, "salary"));
    assert_eq!(e.message, "unknown column `salary`; in scope: name, ssn, w");
}

#[test]
fn unknown_column_in_where() {
    let src = "SELECT ssn FROM census WHERE salary = 3";
    let e = err(src);
    assert_eq!(e.span, span_of(src, "salary"));
    assert_eq!(e.message, "unknown column `salary`; in scope: name, ssn, w");
    assert_eq!(
        e.render(src),
        concat!(
            "error: unknown column `salary`; in scope: name, ssn, w\n",
            " --> line 1, column 30\n",
            "  | SELECT ssn FROM census WHERE salary = 3\n",
            "  |                              ^^^^^^\n"
        )
    );
}

#[test]
fn union_incompatible_schemas() {
    let src = "SELECT name FROM census UNION SELECT ssn FROM census";
    let e = err(src);
    // The error points at the whole right-hand term of the UNION.
    assert_eq!(e.span, span_of(src, "SELECT ssn FROM census"));
    assert_eq!(
        e.message,
        "UNION sides are not union-compatible: left is (name str), right is (ssn int)"
    );
}

#[test]
fn union_incompatible_across_lines() {
    let src = "SELECT a FROM r\nUNION\nSELECT b FROM r";
    let e = err(src);
    assert_eq!(e.span, span_of(src, "SELECT b FROM r"));
    assert_eq!(
        e.render(src),
        concat!(
            "error: UNION sides are not union-compatible: left is (a int), right is (b int)\n",
            " --> line 3, column 1\n",
            "  | SELECT b FROM r\n",
            "  | ^^^^^^^^^^^^^^^\n"
        )
    );
}

#[test]
fn weight_by_non_numeric_column() {
    let src = "REPAIR KEY ssn IN census WEIGHT BY name";
    let e = err(src);
    assert_eq!(e.span, span_of(src, "name"));
    assert_eq!(
        e.message,
        "WEIGHT BY column `name` has type str; expected a numeric column"
    );
    assert_eq!(
        e.render(src),
        concat!(
            "error: WEIGHT BY column `name` has type str; expected a numeric column\n",
            " --> line 1, column 36\n",
            "  | REPAIR KEY ssn IN census WEIGHT BY name\n",
            "  |                                    ^^^^\n"
        )
    );
}

#[test]
fn weight_by_unknown_column() {
    let src = "REPAIR KEY ssn IN census WEIGHT BY missing";
    let e = err(src);
    assert_eq!(e.span, span_of(src, "missing"));
    assert_eq!(
        e.message,
        "unknown column `missing`; in scope: name, ssn, w"
    );
}

#[test]
fn repair_key_unknown_key_column() {
    let src = "REPAIR KEY city IN census";
    let e = err(src);
    assert_eq!(e.span, span_of(src, "city"));
    assert_eq!(e.message, "unknown column `city`; in scope: name, ssn, w");
}

#[test]
fn ill_typed_comparison() {
    let src = "SELECT ssn FROM census WHERE ssn = 'x'";
    let e = err(src);
    assert_eq!(e.span, span_of(src, "ssn = 'x'"));
    assert_eq!(e.message, "cannot compare int to str");
}

#[test]
fn duplicate_select_output() {
    let src = "SELECT ssn, name AS ssn FROM census";
    let e = err(src);
    assert_eq!(e.span, span_of(src, "name AS ssn"));
    assert_eq!(e.message, "duplicate output column `ssn` in select list");
}

#[test]
fn conf_over_conf_is_rejected() {
    let src = "SELECT CONF * FROM (SELECT CONF ssn FROM census)";
    let e = err(src);
    // The *outer* CONF is the offending one.
    assert_eq!(e.span, Span::new(7, 11));
    assert_eq!(e.message, "CONF input already has a `conf` column");
}

#[test]
fn conf_approx_non_numeric_eps() {
    let src = "SELECT CONF(abc, 0.1) * FROM census";
    let e = parse_query(src).expect_err("non-numeric eps");
    assert_eq!(e.span, span_of(src, "abc"));
    assert_eq!(
        e.render(src),
        concat!(
            "error: expected a numeric literal for CONF eps, found `abc`\n",
            " --> line 1, column 13\n",
            "  | SELECT CONF(abc, 0.1) * FROM census\n",
            "  |             ^^^\n"
        )
    );
}

#[test]
fn conf_approx_arity_mistakes() {
    let src = "SELECT CONF(0.1) * FROM census";
    let e = parse_query(src).expect_err("one argument");
    assert_eq!(e.span, span_of(src, ")"));
    assert_eq!(
        e.render(src),
        concat!(
            "error: CONF takes two arguments: CONF(eps, delta)\n",
            " --> line 1, column 16\n",
            "  | SELECT CONF(0.1) * FROM census\n",
            "  |                ^\n"
        )
    );
    let src = "SELECT CONF(0.1, 0.2, 0.3) * FROM census";
    let e = parse_query(src).expect_err("three arguments");
    // The error points at the comma introducing the excess argument.
    let comma = src.find(", 0.3").expect("second comma");
    assert_eq!(e.span, Span::new(comma, comma + 1));
    assert_eq!(e.message, "CONF takes two arguments: CONF(eps, delta)");
}

#[test]
fn conf_approx_delta_out_of_range() {
    let src = "SELECT CONF(0.1, 1.5) * FROM census";
    let e = err(src);
    assert_eq!(e.span, span_of(src, "1.5"));
    assert_eq!(
        e.render(src),
        concat!(
            "error: CONF delta must be in (0, 1), got 1.5\n",
            " --> line 1, column 18\n",
            "  | SELECT CONF(0.1, 1.5) * FROM census\n",
            "  |                  ^^^\n"
        )
    );
    // Zero is rejected on either argument (a sampler cannot promise ε = 0),
    // and the error anchors at the offending literal.
    let src = "SELECT CONF(0.0, 0.5) * FROM census";
    let e = err(src);
    assert_eq!(e.span, span_of(src, "0.0"));
    assert_eq!(e.message, "CONF eps must be in (0, 1), got 0");
}

#[test]
fn parse_error_has_token_span() {
    let src = "SELECT FROM census";
    let e = parse_query(src).expect_err("missing select list");
    // `FROM` in select-list position is a reserved keyword.
    assert_eq!(e.span, span_of(src, "FROM"));
    assert_eq!(
        e.message,
        "expected an identifier, found reserved keyword `FROM`"
    );
}

#[test]
fn unterminated_string_spans_to_eof() {
    let src = "SELECT * FROM census WHERE name = 'Smi";
    let e = parse_query(src).expect_err("unterminated string");
    assert_eq!(e.span, Span::new(34, src.len()));
    assert_eq!(e.message, "unterminated string literal");
}
