//! The recursive-descent MayQL parser.
//!
//! Grammar (EBNF; keywords are case-insensitive and contextual):
//!
//! ```text
//! script    := [ statement ] { ";" [ statement ] } ;
//! statement := "LET" ident "=" query | "EXPLAIN" [ "ANALYZE" ] query | query ;
//! query     := term { "UNION" term } ;
//! term      := select | repair | "(" query ")" ;
//! select    := "SELECT" [ quantifier ] sel_list
//!              "FROM" from_item { "," from_item } [ "WHERE" expr ] ;
//! quantifier:= "POSSIBLE" | "CERTAIN" | "CONF" [ "(" number "," number ")" ] ;
//! sel_list  := "*" | sel_item { "," sel_item } ;
//! sel_item  := ident [ "AS" ident ] ;
//! from_item := ident | "(" query ")" | "(" from_item ")" | repair ;
//! repair    := "REPAIR" "KEY" ident { "," ident } "IN" from_item
//!              [ "WEIGHT" "BY" ident ] ;
//! expr      := and_expr { "OR" and_expr } ;
//! and_expr  := not_expr { "AND" not_expr } ;
//! not_expr  := "NOT" not_expr | atom ;
//! atom      := "(" expr ")" | scalar cmp scalar | "TRUE" | "FALSE" ;
//! cmp       := "=" | "<>" | "!=" | "<" | "<=" | ">" | ">=" ;
//! scalar    := ident | literal ;
//! literal   := int | float | string | "TRUE" | "FALSE" | "NULL" | "-" number ;
//! ```
//!
//! `POSSIBLE`/`CERTAIN`/`CONF` are recognized as quantifiers only when
//! followed by `*` or a non-reserved identifier, so a column named `conf`
//! (which the engine's `conf` operator itself produces) remains selectable.
//! `CONF (` commits to the approximate form `CONF(eps, delta)` — a select
//! list can never continue `SELECT conf (`, so the parenthesis is
//! unambiguous and arity/argument mistakes get dedicated diagnostics.

use maybms_algebra::CmpOp;
use maybms_core::Value;

use crate::ast::{
    Expr, FromItem, Ident, Quantifier, Query, Repair, Scalar, SelectItem, SelectList, SelectQuery,
    Statement,
};
use crate::lexer::{lex, Token, TokenKind};
use crate::span::{Span, SqlError};

/// Keywords that can never be used as relation or column names (the
/// quantifiers and literal keywords are contextual and stay usable).
const RESERVED: &[&str] = &[
    "SELECT", "FROM", "WHERE", "AS", "AND", "OR", "NOT", "UNION", "REPAIR", "KEY", "IN", "WEIGHT",
    "BY", "LET",
];

/// Parse one query; the whole input (up to an optional trailing `;`) must be
/// consumed.
pub fn parse_query(src: &str) -> Result<Query, SqlError> {
    let mut p = Parser::new(src)?;
    let q = p.query()?;
    p.eat(&TokenKind::Semi);
    p.expect_eof()?;
    Ok(q)
}

/// Parse one statement (a query or a `LET`); the whole input (up to an
/// optional trailing `;`) must be consumed.
pub fn parse_statement(src: &str) -> Result<Statement, SqlError> {
    let mut p = Parser::new(src)?;
    let s = p.statement()?;
    p.eat(&TokenKind::Semi);
    p.expect_eof()?;
    Ok(s)
}

/// Parse a script: statements separated by `;` (empty statements are
/// skipped, so trailing semicolons and blank lines are fine).
pub fn parse_script(src: &str) -> Result<Vec<Statement>, SqlError> {
    let mut p = Parser::new(src)?;
    let mut out = Vec::new();
    loop {
        while p.eat(&TokenKind::Semi) {}
        if p.at_eof() {
            return Ok(out);
        }
        out.push(p.statement()?);
        if !p.at_eof() {
            p.expect(&TokenKind::Semi)?;
        }
    }
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn new(src: &str) -> Result<Parser, SqlError> {
        Ok(Parser {
            tokens: lex(src)?,
            pos: 0,
        })
    }

    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn peek_at(&self, offset: usize) -> &Token {
        let i = (self.pos + offset).min(self.tokens.len() - 1);
        &self.tokens[i]
    }

    fn advance(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn prev_span(&self) -> Span {
        self.tokens[self.pos.saturating_sub(1)].span
    }

    fn at_eof(&self) -> bool {
        self.peek().kind == TokenKind::Eof
    }

    fn expect_eof(&self) -> Result<(), SqlError> {
        if self.at_eof() {
            Ok(())
        } else {
            let t = self.peek();
            Err(SqlError::new(
                t.span,
                format!("expected end of input, found {}", t.kind),
            ))
        }
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if &self.peek().kind == kind {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<Span, SqlError> {
        if &self.peek().kind == kind {
            Ok(self.advance().span)
        } else {
            let t = self.peek();
            Err(SqlError::new(
                t.span,
                format!("expected {kind}, found {}", t.kind),
            ))
        }
    }

    /// Does the token at `offset` spell the (case-insensitive) keyword?
    fn is_kw_at(&self, offset: usize, kw: &str) -> bool {
        matches!(&self.peek_at(offset).kind, TokenKind::Ident(s) if s.eq_ignore_ascii_case(kw))
    }

    fn is_kw(&self, kw: &str) -> bool {
        self.is_kw_at(0, kw)
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.is_kw(kw) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<Span, SqlError> {
        if self.is_kw(kw) {
            Ok(self.advance().span)
        } else {
            let t = self.peek();
            Err(SqlError::new(
                t.span,
                format!("expected {kw}, found {}", t.kind),
            ))
        }
    }

    /// A non-reserved identifier.
    fn ident(&mut self) -> Result<Ident, SqlError> {
        match &self.peek().kind {
            TokenKind::Ident(s) if !is_reserved(s) => {
                let name = s.clone();
                let span = self.advance().span;
                Ok(Ident { name, span })
            }
            TokenKind::Ident(s) => Err(SqlError::new(
                self.peek().span,
                format!("expected an identifier, found reserved keyword `{s}`"),
            )),
            other => Err(SqlError::new(
                self.peek().span,
                format!("expected an identifier, found {other}"),
            )),
        }
    }

    fn statement(&mut self) -> Result<Statement, SqlError> {
        if self.is_kw("LET") {
            let start = self.advance().span;
            let name = self.ident()?;
            self.expect(&TokenKind::Eq)?;
            let query = self.query()?;
            let span = start.join(query.span());
            Ok(Statement::Let { name, query, span })
        } else if self.is_kw("EXPLAIN") {
            // Contextual: a query can only start with SELECT, REPAIR, or
            // `(`, never a bare identifier, so `EXPLAIN` here is
            // unambiguous and the word stays usable as a name elsewhere.
            // The same argument covers the optional `ANALYZE` that follows.
            let start = self.advance().span;
            let analyze = self.eat_kw("ANALYZE");
            let query = self.query()?;
            let span = start.join(query.span());
            Ok(Statement::Explain {
                query,
                analyze,
                span,
            })
        } else {
            Ok(Statement::Query(self.query()?))
        }
    }

    fn query(&mut self) -> Result<Query, SqlError> {
        let mut q = self.term()?;
        while self.eat_kw("UNION") {
            let right = self.term()?;
            q = Query::Union {
                left: Box::new(q),
                right: Box::new(right),
            };
        }
        Ok(q)
    }

    fn term(&mut self) -> Result<Query, SqlError> {
        if self.is_kw("REPAIR") {
            return Ok(Query::Repair(self.repair()?));
        }
        if self.eat(&TokenKind::LParen) {
            let q = self.query()?;
            self.expect(&TokenKind::RParen)?;
            return Ok(q);
        }
        Ok(Query::Select(self.select()?))
    }

    fn select(&mut self) -> Result<SelectQuery, SqlError> {
        let start = self.expect_kw("SELECT")?;
        let quantifier = self.quantifier()?;
        let items = if let TokenKind::Star = self.peek().kind {
            SelectList::Star(self.advance().span)
        } else {
            let mut items = vec![self.select_item()?];
            while self.eat(&TokenKind::Comma) {
                items.push(self.select_item()?);
            }
            SelectList::Items(items)
        };
        self.expect_kw("FROM")?;
        let mut from = vec![self.parse_from_item()?];
        while self.eat(&TokenKind::Comma) {
            from.push(self.parse_from_item()?);
        }
        let filter = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(SelectQuery {
            quantifier,
            items,
            from,
            filter,
            span: start.join(self.prev_span()),
        })
    }

    /// A quantifier keyword is recognized only when the *next* token could
    /// start a select list (`*` or a non-reserved identifier); otherwise the
    /// word is an ordinary column name. Exception: `CONF (` always commits
    /// to the approximate form `CONF(eps, delta)` — no valid select list can
    /// follow a bare `conf` with a parenthesis.
    fn quantifier(&mut self) -> Result<Option<(Quantifier, Span)>, SqlError> {
        if self.is_kw("CONF") && self.peek_at(1).kind == TokenKind::LParen {
            let kw = self.advance().span; // CONF
            self.advance(); // (
            let (eps, eps_span) = self.conf_param("eps")?;
            if self.peek().kind == TokenKind::RParen {
                return Err(SqlError::new(
                    self.peek().span,
                    "CONF takes two arguments: CONF(eps, delta)",
                ));
            }
            self.expect(&TokenKind::Comma)?;
            let (delta, delta_span) = self.conf_param("delta")?;
            if self.peek().kind == TokenKind::Comma {
                return Err(SqlError::new(
                    self.peek().span,
                    "CONF takes two arguments: CONF(eps, delta)",
                ));
            }
            let close = self.expect(&TokenKind::RParen)?;
            return Ok(Some((
                Quantifier::ConfApprox {
                    eps,
                    delta,
                    eps_span,
                    delta_span,
                },
                kw.join(close),
            )));
        }
        let q = if self.is_kw("POSSIBLE") {
            Quantifier::Possible
        } else if self.is_kw("CERTAIN") {
            Quantifier::Certain
        } else if self.is_kw("CONF") {
            Quantifier::Conf
        } else {
            return Ok(None);
        };
        let next_starts_list = match &self.peek_at(1).kind {
            TokenKind::Star => true,
            TokenKind::Ident(s) => !is_reserved(s),
            _ => false,
        };
        if !next_starts_list {
            return Ok(None);
        }
        Ok(Some((q, self.advance().span)))
    }

    /// One numeric `CONF(…)` argument (int or float literal).
    fn conf_param(&mut self, what: &str) -> Result<(f64, Span), SqlError> {
        match self.peek().kind.clone() {
            TokenKind::Float(v) => Ok((v, self.advance().span)),
            TokenKind::Int(v) => Ok((v as f64, self.advance().span)),
            ref other => Err(SqlError::new(
                self.peek().span,
                format!("expected a numeric literal for CONF {what}, found {other}"),
            )),
        }
    }

    fn select_item(&mut self) -> Result<SelectItem, SqlError> {
        let column = self.ident()?;
        let alias = if self.eat_kw("AS") {
            Some(self.ident()?)
        } else {
            None
        };
        Ok(SelectItem { column, alias })
    }

    fn parse_from_item(&mut self) -> Result<FromItem, SqlError> {
        if self.is_kw("REPAIR") {
            return Ok(FromItem::Repair(self.repair()?));
        }
        if let TokenKind::LParen = self.peek().kind {
            // Disambiguate `(query)` from a parenthesized from-item like
            // `(r)` or `((r))`: skip nested `(`s and check whether the
            // first real token can start a query (only SELECT and REPAIR
            // can — queries never start with a bare identifier).
            let mut off = 1;
            while matches!(self.peek_at(off).kind, TokenKind::LParen) {
                off += 1;
            }
            if !self.is_kw_at(off, "SELECT") && !self.is_kw_at(off, "REPAIR") {
                self.advance(); // the `(`
                let item = self.parse_from_item()?;
                self.expect(&TokenKind::RParen)?;
                return Ok(item);
            }
            let l = self.advance().span;
            let query = self.query()?;
            let r = self.expect(&TokenKind::RParen)?;
            return Ok(FromItem::Subquery {
                query: Box::new(query),
                span: l.join(r),
            });
        }
        Ok(FromItem::Relation(self.ident()?))
    }

    fn repair(&mut self) -> Result<Repair, SqlError> {
        let start = self.expect_kw("REPAIR")?;
        self.expect_kw("KEY")?;
        let mut key = vec![self.ident()?];
        while self.eat(&TokenKind::Comma) {
            key.push(self.ident()?);
        }
        self.expect_kw("IN")?;
        let input = Box::new(self.parse_from_item()?);
        let weight = if self.eat_kw("WEIGHT") {
            self.expect_kw("BY")?;
            Some(self.ident()?)
        } else {
            None
        };
        Ok(Repair {
            key,
            input,
            weight,
            span: start.join(self.prev_span()),
        })
    }

    fn expr(&mut self) -> Result<Expr, SqlError> {
        let mut es = vec![self.and_expr()?];
        while self.eat_kw("OR") {
            es.push(self.and_expr()?);
        }
        Ok(if es.len() == 1 {
            es.pop().expect("one element")
        } else {
            Expr::Or(es)
        })
    }

    fn and_expr(&mut self) -> Result<Expr, SqlError> {
        let mut es = vec![self.not_expr()?];
        while self.eat_kw("AND") {
            es.push(self.not_expr()?);
        }
        Ok(if es.len() == 1 {
            es.pop().expect("one element")
        } else {
            Expr::And(es)
        })
    }

    fn not_expr(&mut self) -> Result<Expr, SqlError> {
        if self.eat_kw("NOT") {
            Ok(Expr::Not(Box::new(self.not_expr()?)))
        } else {
            self.atom()
        }
    }

    fn atom(&mut self) -> Result<Expr, SqlError> {
        if self.eat(&TokenKind::LParen) {
            let e = self.expr()?;
            self.expect(&TokenKind::RParen)?;
            return Ok(e);
        }
        let lhs = self.scalar()?;
        let op = match self.peek().kind {
            TokenKind::Eq => Some(CmpOp::Eq),
            TokenKind::Ne => Some(CmpOp::Ne),
            TokenKind::Lt => Some(CmpOp::Lt),
            TokenKind::Le => Some(CmpOp::Le),
            TokenKind::Gt => Some(CmpOp::Gt),
            TokenKind::Ge => Some(CmpOp::Ge),
            _ => None,
        };
        match op {
            Some(op) => {
                self.advance();
                let rhs = self.scalar()?;
                let span = lhs.span().join(rhs.span());
                Ok(Expr::Compare { op, lhs, rhs, span })
            }
            None => match lhs {
                // A bare boolean literal is a valid atom (`WHERE TRUE`).
                Scalar::Literal {
                    value: Value::Bool(value),
                    span,
                } => Ok(Expr::Bool { value, span }),
                _ => {
                    let t = self.peek();
                    Err(SqlError::new(
                        t.span,
                        format!("expected a comparison operator, found {}", t.kind),
                    ))
                }
            },
        }
    }

    fn scalar(&mut self) -> Result<Scalar, SqlError> {
        match self.peek().kind.clone() {
            TokenKind::Minus => {
                let minus = self.advance().span;
                match self.peek().kind.clone() {
                    TokenKind::Int(v) => {
                        let span = minus.join(self.advance().span);
                        Ok(Scalar::Literal {
                            value: Value::Int(-v),
                            span,
                        })
                    }
                    TokenKind::Float(v) => {
                        let span = minus.join(self.advance().span);
                        Ok(Scalar::Literal {
                            value: Value::float(-v),
                            span,
                        })
                    }
                    ref other => Err(SqlError::new(
                        self.peek().span,
                        format!("expected a numeric literal after `-`, found {other}"),
                    )),
                }
            }
            TokenKind::Int(v) => Ok(Scalar::Literal {
                value: Value::Int(v),
                span: self.advance().span,
            }),
            TokenKind::Float(v) => Ok(Scalar::Literal {
                value: Value::float(v),
                span: self.advance().span,
            }),
            TokenKind::Str(s) => Ok(Scalar::Literal {
                value: Value::Str(s),
                span: self.advance().span,
            }),
            TokenKind::Ident(s) if s.eq_ignore_ascii_case("TRUE") => Ok(Scalar::Literal {
                value: Value::Bool(true),
                span: self.advance().span,
            }),
            TokenKind::Ident(s) if s.eq_ignore_ascii_case("FALSE") => Ok(Scalar::Literal {
                value: Value::Bool(false),
                span: self.advance().span,
            }),
            TokenKind::Ident(s) if s.eq_ignore_ascii_case("NULL") => Ok(Scalar::Literal {
                value: Value::Null,
                span: self.advance().span,
            }),
            TokenKind::Ident(_) => Ok(Scalar::Column(self.ident()?)),
            ref other => Err(SqlError::new(
                self.peek().span,
                format!("expected a column or literal, found {other}"),
            )),
        }
    }
}

fn is_reserved(name: &str) -> bool {
    RESERVED.iter().any(|kw| name.eq_ignore_ascii_case(kw))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_census_select() {
        let q = parse_query("SELECT POSSIBLE ssn FROM census WHERE name = 'Smith'").unwrap();
        let Query::Select(s) = q else {
            panic!("expected a select")
        };
        assert_eq!(s.quantifier.map(|(q, _)| q), Some(Quantifier::Possible));
        let SelectList::Items(items) = s.items else {
            panic!("expected explicit items")
        };
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].column.name, "ssn");
        assert_eq!(s.from.len(), 1);
        assert!(s.filter.is_some());
    }

    #[test]
    fn conf_is_contextual() {
        // `conf` before FROM is a column, not a quantifier.
        let q = parse_query("SELECT conf FROM r").unwrap();
        let Query::Select(s) = q else {
            panic!("expected a select")
        };
        assert!(s.quantifier.is_none());
        let SelectList::Items(items) = s.items else {
            panic!("expected explicit items")
        };
        assert_eq!(items[0].column.name, "conf");
    }

    #[test]
    fn parses_approximate_conf() {
        let q = parse_query("SELECT CONF(0.05, 0.01) * FROM r").unwrap();
        let Query::Select(s) = q else {
            panic!("expected a select")
        };
        let Some((Quantifier::ConfApprox { eps, delta, .. }, span)) = s.quantifier else {
            panic!("expected an approximate conf quantifier")
        };
        assert_eq!((eps, delta), (0.05, 0.01));
        // The quantifier span covers `CONF(0.05, 0.01)`.
        assert_eq!(span, Span::new(7, 23));
        // Integer literals are accepted (range checking is lowering's job).
        assert!(parse_query("SELECT conf(1, 0.5) a FROM r").is_ok());
    }

    #[test]
    fn approximate_conf_reports_argument_mistakes() {
        let e = parse_query("SELECT CONF(abc, 0.1) * FROM r").unwrap_err();
        assert_eq!(
            e.message,
            "expected a numeric literal for CONF eps, found `abc`"
        );
        assert_eq!(e.span, Span::new(12, 15));
        let e = parse_query("SELECT CONF(0.1) * FROM r").unwrap_err();
        assert_eq!(e.message, "CONF takes two arguments: CONF(eps, delta)");
        let e = parse_query("SELECT CONF(0.1, 0.2, 0.3) * FROM r").unwrap_err();
        assert_eq!(e.message, "CONF takes two arguments: CONF(eps, delta)");
        let e = parse_query("SELECT CONF(0.1, x) * FROM r").unwrap_err();
        assert_eq!(
            e.message,
            "expected a numeric literal for CONF delta, found `x`"
        );
    }

    #[test]
    fn parses_repair_key_in_from() {
        let q = parse_query("SELECT * FROM REPAIR KEY a, b IN r WEIGHT BY w, s").unwrap();
        let Query::Select(sel) = q else {
            panic!("expected a select")
        };
        assert_eq!(sel.from.len(), 2);
        let FromItem::Repair(rep) = &sel.from[0] else {
            panic!("expected repair")
        };
        assert_eq!(rep.key.len(), 2);
        assert_eq!(rep.weight.as_ref().map(|w| w.name.as_str()), Some("w"));
        assert!(matches!(&sel.from[1], FromItem::Relation(id) if id.name == "s"));
    }

    #[test]
    fn union_is_left_associative() {
        let q = parse_query("SELECT * FROM a UNION SELECT * FROM b UNION SELECT * FROM c").unwrap();
        let Query::Union { left, .. } = q else {
            panic!("expected a union")
        };
        assert!(matches!(*left, Query::Union { .. }));
    }

    #[test]
    fn keywords_are_case_insensitive() {
        assert!(parse_query("select * from r where a = 1 and b <> 2").is_ok());
    }

    #[test]
    fn parses_let_statements() {
        let s = parse_statement("LET census = REPAIR KEY name IN censusform WEIGHT BY w;").unwrap();
        let Statement::Let { name, query, .. } = s else {
            panic!("expected a let")
        };
        assert_eq!(name.name, "census");
        assert!(matches!(query, Query::Repair(_)));
    }

    #[test]
    fn scripts_split_on_semicolons() {
        let stmts =
            parse_script("-- demo\nLET x = SELECT * FROM r;\nSELECT a FROM x;\n;\n").unwrap();
        assert_eq!(stmts.len(), 2);
    }

    #[test]
    fn parses_parenthesized_queries_at_top_level() {
        // Parentheses group a right-nested union against the default left
        // associativity.
        let q =
            parse_query("(SELECT * FROM a) UNION (SELECT * FROM b UNION SELECT * FROM c)").unwrap();
        let Query::Union { left, right } = q else {
            panic!("expected a union")
        };
        assert!(matches!(*left, Query::Select(_)));
        assert!(matches!(*right, Query::Union { .. }));
        // A whole statement may be a parenthesized query.
        let s = parse_statement("((SELECT * FROM r));").unwrap();
        assert!(matches!(s, Statement::Query(Query::Select(_))));
    }

    #[test]
    fn parses_parenthesized_from_items() {
        let q = parse_query("SELECT * FROM (r), ((s)), (SELECT a FROM t)").unwrap();
        let Query::Select(sel) = q else {
            panic!("expected a select")
        };
        assert!(matches!(&sel.from[0], FromItem::Relation(id) if id.name == "r"));
        assert!(matches!(&sel.from[1], FromItem::Relation(id) if id.name == "s"));
        assert!(matches!(&sel.from[2], FromItem::Subquery { .. }));
        // A parenthesized union subquery still parses as one from-item.
        let q = parse_query("SELECT * FROM ((SELECT a FROM t) UNION (SELECT a FROM u))").unwrap();
        let Query::Select(sel) = q else {
            panic!("expected a select")
        };
        assert!(matches!(&sel.from[0], FromItem::Subquery { query, .. }
            if matches!(&**query, Query::Union { .. })));
    }

    #[test]
    fn parses_explain_analyze_statements() {
        let s = parse_statement("EXPLAIN ANALYZE SELECT a FROM r;").unwrap();
        assert!(matches!(s, Statement::Explain { analyze: true, .. }));
        let s = parse_statement("explain analyze REPAIR KEY a IN r;").unwrap();
        assert!(matches!(s, Statement::Explain { analyze: true, .. }));
        // `analyze` is contextual too: without EXPLAIN it is an ordinary
        // identifier, and `EXPLAIN SELECT analyze FROM r` still parses.
        let q = parse_query("SELECT analyze FROM r").unwrap();
        let Query::Select(sel) = q else {
            panic!("expected a select")
        };
        let SelectList::Items(items) = sel.items else {
            panic!("expected explicit items")
        };
        assert_eq!(items[0].column.name, "analyze");
        let s = parse_statement("EXPLAIN SELECT analyze FROM r;").unwrap();
        assert!(matches!(s, Statement::Explain { analyze: false, .. }));
    }

    #[test]
    fn parses_explain_statements() {
        let s = parse_statement("EXPLAIN SELECT a FROM r;").unwrap();
        assert!(matches!(s, Statement::Explain { analyze: false, .. }));
        let s = parse_statement("explain REPAIR KEY a IN r;").unwrap();
        let Statement::Explain { query, .. } = s else {
            panic!("expected an explain")
        };
        assert!(matches!(query, Query::Repair(_)));
        // `explain` stays usable as an ordinary identifier.
        let q = parse_query("SELECT explain FROM r").unwrap();
        let Query::Select(sel) = q else {
            panic!("expected a select")
        };
        let SelectList::Items(items) = sel.items else {
            panic!("expected explicit items")
        };
        assert_eq!(items[0].column.name, "explain");
    }

    #[test]
    fn reports_missing_from() {
        let e = parse_query("SELECT a b FROM r").unwrap_err();
        assert_eq!(e.message, "expected FROM, found `b`");
        assert_eq!(e.span, Span::new(9, 10));
    }
}
