//! A catalog-keyed LRU cache of optimized plans.
//!
//! Compiling a MayQL statement — parse, semantic analysis, logical rewrite
//! fixpoint, cost-based join reordering — costs far more than a hash
//! lookup, and interactive sessions re-issue the same statements (often
//! verbatim, or differing only in whitespace). [`PlanCache`] memoizes the
//! *optimized* plan keyed on three things, any of which invalidates the
//! entry by missing instead of matching:
//!
//! * the **normalized query text** ([`normalize_query`]: whitespace
//!   collapsed outside string literals — no case folding, so identifier
//!   case is respected);
//! * the **knob fingerprint** — the planner-relevant environment knobs
//!   (`MAYBMS_COST_OPT`, `MAYBMS_SIP`, `MAYBMS_LATE_MAT`,
//!   `MAYBMS_CONF_EXACT_LIMIT`), because a knob flip can change what the
//!   optimizer emits or pins into the plan;
//! * the **catalog fingerprint** ([`crate::Catalog::fingerprint`]) — names,
//!   schemas, and statistics, because statistics drive the cost-based
//!   phase.
//!
//! Entries also carry the plan's pre-order cardinality estimates, and the
//! cache accepts *observed* per-node row counts back
//! ([`PlanCache::note_observed`], fed from `EXPLAIN ANALYZE`): the next hit
//! on that entry serves estimates scaled by the observed q-error, **once**
//! — a one-shot correction, cleared on use, so a genuinely changed workload
//! re-grades itself instead of compounding stale factors.

use std::hash::{BuildHasher, Hasher};

use maybms_algebra::{Plan, LATE_MAT_ENV, SIP_ENV};
use maybms_core::FxBuildHasher;
use maybms_ql::CONF_EXACT_LIMIT_ENV;

use crate::catalog::Catalog;
use crate::planner::COST_OPT_ENV;

/// Default number of cached plans (evicting least-recently-used beyond it).
pub const DEFAULT_PLAN_CACHE_CAP: usize = 64;

/// Normalize query text for cache keying: collapse every run of whitespace
/// outside single-quoted string literals to one space and trim the ends.
/// Case is preserved — keywords are case-insensitive in MayQL, but folding
/// would also fold identifiers and string contents, trading correctness for
/// a few extra hits.
pub fn normalize_query(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut in_str = false;
    let mut pending_space = false;
    for ch in text.chars() {
        if in_str {
            out.push(ch);
            if ch == '\'' {
                in_str = false;
            }
            continue;
        }
        if ch.is_whitespace() {
            pending_space = true;
            continue;
        }
        if pending_space && !out.is_empty() {
            out.push(' ');
        }
        pending_space = false;
        out.push(ch);
        if ch == '\'' {
            in_str = true;
        }
    }
    out
}

/// Fingerprint of the environment knobs that influence compilation. Read
/// per lookup — flipping a knob mid-session must miss the cache.
fn knob_fingerprint() -> u64 {
    let mut h = FxBuildHasher::default().build_hasher();
    for key in [COST_OPT_ENV, SIP_ENV, LATE_MAT_ENV, CONF_EXACT_LIMIT_ENV] {
        h.write(key.as_bytes());
        h.write(std::env::var(key).unwrap_or_default().as_bytes());
        h.write_u8(0);
    }
    h.finish()
}

/// The full cache key: normalized text plus the two fingerprints.
#[derive(Clone, Debug, PartialEq, Eq)]
struct CacheKey {
    text: String,
    knobs: u64,
    catalog: u64,
}

impl CacheKey {
    fn new(catalog: &Catalog, text: &str) -> CacheKey {
        CacheKey {
            text: normalize_query(text),
            knobs: knob_fingerprint(),
            catalog: catalog.fingerprint(),
        }
    }
}

/// One cached compilation.
struct Entry {
    key: CacheKey,
    plan: Plan,
    /// Pre-order cardinality estimates of `plan` (when the catalog had
    /// statistics at compile time).
    estimates: Option<Vec<f64>>,
    /// One-shot per-node correction factors (`observed / estimated`) from
    /// the latest [`PlanCache::note_observed`]; consumed by the next hit.
    corrections: Option<Vec<f64>>,
    /// LRU clock value of the last touch.
    last_used: u64,
}

/// A cache hit: the plan (cloned — plans are cheap trees of `Arc`'d
/// extension operators) plus its estimates, with any pending one-shot
/// q-error correction already applied.
#[derive(Clone, Debug)]
pub struct CachedPlan {
    /// The optimized plan.
    pub plan: Plan,
    /// Pre-order estimates, corrected by the latest observation when one
    /// was pending.
    pub estimates: Option<Vec<f64>>,
}

/// The LRU plan cache. See the module docs for the keying discipline.
pub struct PlanCache {
    entries: Vec<Entry>,
    cap: usize,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl Default for PlanCache {
    fn default() -> Self {
        PlanCache::new(DEFAULT_PLAN_CACHE_CAP)
    }
}

impl PlanCache {
    /// A cache holding at most `cap` plans (minimum one).
    pub fn new(cap: usize) -> PlanCache {
        PlanCache {
            entries: Vec::new(),
            cap: cap.max(1),
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Look up a compilation of `text` against `catalog` under the current
    /// knobs. A hit refreshes the entry's LRU position and consumes any
    /// pending one-shot estimate correction.
    pub fn lookup(&mut self, catalog: &Catalog, text: &str) -> Option<CachedPlan> {
        let key = CacheKey::new(catalog, text);
        self.tick += 1;
        let tick = self.tick;
        match self.entries.iter_mut().find(|e| e.key == key) {
            Some(e) => {
                self.hits += 1;
                e.last_used = tick;
                let estimates = match (e.estimates.clone(), e.corrections.take()) {
                    (Some(ests), Some(corr)) if ests.len() == corr.len() => {
                        Some(ests.iter().zip(&corr).map(|(&e, &c)| e * c).collect())
                    }
                    (ests, _) => ests,
                };
                Some(CachedPlan {
                    plan: e.plan.clone(),
                    estimates,
                })
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Store a fresh compilation, evicting the least-recently-used entry
    /// when the cache is full. An existing entry for the same key is
    /// replaced (its correction state reset).
    pub fn insert(
        &mut self,
        catalog: &Catalog,
        text: &str,
        plan: Plan,
        estimates: Option<Vec<f64>>,
    ) {
        let key = CacheKey::new(catalog, text);
        self.tick += 1;
        self.entries.retain(|e| e.key != key);
        if self.entries.len() >= self.cap {
            if let Some(lru) = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(i, _)| i)
            {
                self.entries.swap_remove(lru);
            }
        }
        self.entries.push(Entry {
            key,
            plan,
            estimates,
            corrections: None,
            last_used: self.tick,
        });
    }

    /// Feed observed per-node row counts (plan pre-order, as
    /// `(estimate, observed)` pairs — the shape `ExplainAnalyze::node_observations`
    /// produces) back into the entry for `text`: the next hit serves
    /// estimates scaled by `observed / estimated`, once. No-op when the
    /// entry is gone or the shape does not match its estimate vector.
    pub fn note_observed(&mut self, catalog: &Catalog, text: &str, observed: &[(f64, u64)]) {
        let key = CacheKey::new(catalog, text);
        let Some(e) = self.entries.iter_mut().find(|e| e.key == key) else {
            return;
        };
        let Some(ests) = &e.estimates else {
            return;
        };
        if ests.len() != observed.len() || observed.is_empty() {
            return;
        }
        e.corrections = Some(
            observed
                .iter()
                .map(|&(est, actual)| (actual as f64).max(1.0) / est.max(1.0))
                .collect(),
        );
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use maybms_core::{Schema, ValueType};

    use super::*;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.insert(
            "r",
            Schema::of(&[("a", ValueType::Int), ("b", ValueType::Int)]).unwrap(),
        );
        c
    }

    #[test]
    fn normalization_collapses_whitespace_outside_strings() {
        assert_eq!(
            normalize_query("  SELECT  a\n FROM\tr  "),
            "SELECT a FROM r"
        );
        // Whitespace inside string literals is content, not formatting.
        assert_eq!(
            normalize_query("SELECT a FROM r WHERE b = 'two  words'"),
            "SELECT a FROM r WHERE b = 'two  words'"
        );
        // Case is preserved.
        assert_eq!(normalize_query("select A from R"), "select A from R");
    }

    #[test]
    fn hits_require_equal_text_and_catalog() {
        let cat = catalog();
        let mut cache = PlanCache::new(4);
        assert!(cache.lookup(&cat, "SELECT a FROM r").is_none());
        cache.insert(&cat, "SELECT a FROM r", Plan::scan("r"), None);
        // Whitespace variants share an entry.
        assert!(cache.lookup(&cat, "SELECT  a  FROM  r").is_some());
        // A changed catalog misses.
        let mut other = catalog();
        other.insert("s", Schema::of(&[("c", ValueType::Int)]).unwrap());
        assert!(cache.lookup(&other, "SELECT a FROM r").is_none());
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn evicts_least_recently_used_beyond_capacity() {
        let cat = catalog();
        let mut cache = PlanCache::new(2);
        cache.insert(&cat, "q1", Plan::scan("r"), None);
        cache.insert(&cat, "q2", Plan::scan("r"), None);
        // Touch q1 so q2 becomes the LRU entry.
        assert!(cache.lookup(&cat, "q1").is_some());
        cache.insert(&cat, "q3", Plan::scan("r"), None);
        assert_eq!(cache.len(), 2);
        assert!(cache.lookup(&cat, "q1").is_some());
        assert!(cache.lookup(&cat, "q2").is_none());
        assert!(cache.lookup(&cat, "q3").is_some());
    }

    #[test]
    fn observed_rows_correct_the_next_estimates_once() {
        let cat = catalog();
        let mut cache = PlanCache::new(4);
        cache.insert(&cat, "q", Plan::scan("r"), Some(vec![10.0, 100.0]));
        // Observed 20 and 50 rows: factors 2.0 and 0.5.
        cache.note_observed(&cat, "q", &[(10.0, 20), (100.0, 50)]);
        let hit = cache.lookup(&cat, "q").expect("cached");
        assert_eq!(hit.estimates, Some(vec![20.0, 50.0]));
        // One-shot: the correction is consumed.
        let hit = cache.lookup(&cat, "q").expect("cached");
        assert_eq!(hit.estimates, Some(vec![10.0, 100.0]));
    }
}
