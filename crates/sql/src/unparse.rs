//! The MayQL pretty-printer: render a [`Plan`] back to query text such that
//! `compile(catalog, to_mayql(catalog, plan)?)` reproduces the plan.
//!
//! The printer emits the *canonical* textual form of each operator — bare
//! scans become from-items, a `Rename` over a `Project` collapses into one
//! aliased select list, and left-nested join spines flatten into one
//! comma-separated `FROM` list — precisely mirroring what the planner's
//! minimal lowering produces, so printing is a fixpoint: re-parsing and
//! re-printing yields the same text. Extension operators print themselves
//! via [`ExtOperator::unparse_mayql`].
//!
//! [`ExtOperator::unparse_mayql`]: maybms_algebra::ExtOperator::unparse_mayql

use maybms_algebra::Plan;
use maybms_core::{MayError, Schema};

use crate::catalog::Catalog;

/// Render a plan as MayQL text. Fails when the plan references a relation
/// missing from the catalog, is internally ill-typed, contains an extension
/// operator without a textual form, or has no compilable MayQL spelling at
/// all — e.g. a comparison between differently-typed columns (the executor
/// tolerates those through `Value`'s total order, but the planner rejects
/// them as ill-typed queries), or names that fall outside the identifier
/// grammar (there is no quoting). The rendered text is re-compiled against
/// the catalog before being returned, so `Ok` text always parses and
/// lowers.
pub fn to_mayql(catalog: &Catalog, plan: &Plan) -> Result<String, MayError> {
    let text = term(catalog, plan)?;
    // Validate against the *raw* lowering: the fixpoint property is about
    // plan shapes as lowered, before the optimizer rewrites them.
    if let Err(e) = crate::planner::compile_unoptimized(catalog, &text) {
        return Err(MayError::Unsupported(format!(
            "plan has no roundtrippable MayQL form (rendered text `{text}` fails to compile: {})",
            e.message
        )));
    }
    Ok(text)
}

/// Infer the output schema of a plan against a catalog — the catalog is a
/// [`maybms_algebra::SchemaProvider`], so this is [`Plan::schema_with`].
pub fn schema_of(catalog: &Catalog, plan: &Plan) -> Result<Schema, MayError> {
    plan.schema_with(catalog)
}

/// Render a plan as a standalone query term.
fn term(catalog: &Catalog, plan: &Plan) -> Result<String, MayError> {
    Ok(match plan {
        Plan::Scan(name) => format!("SELECT * FROM {name}"),
        Plan::Select { input, predicate } => {
            format!(
                "SELECT * FROM {} WHERE {predicate}",
                from_list(catalog, input)?
            )
        }
        Plan::Project { input, columns } => {
            format!(
                "SELECT {} FROM {}",
                columns.join(", "),
                from_list(catalog, input)?
            )
        }
        Plan::Rename { input, renames } => {
            // A rename over a projection collapses into one aliased select
            // list — the shape the planner lowers `SELECT a AS x, b` to.
            // Any other rename synthesizes the full column list of its
            // input, which requires the input schema.
            let (columns, inner): (Vec<String>, &Plan) = match &**input {
                Plan::Project { input: i2, columns } => (columns.clone(), i2),
                other => (
                    schema_of(catalog, other)?
                        .names()
                        .iter()
                        .map(|n| n.to_string())
                        .collect(),
                    other,
                ),
            };
            // Every rename source must actually be present, or the aliased
            // select list would silently denote a *different* plan (the
            // executor rejects such a rename as ill-typed, and so must we).
            for (old, _) in renames {
                if !columns.contains(old) {
                    return Err(MayError::UnknownColumn(format!(
                        "rename source `{old}` is not a column of the renamed input"
                    )));
                }
            }
            let list: Vec<String> = columns
                .iter()
                .map(|c| match renames.iter().find(|(old, _)| old == c) {
                    Some((_, new)) => format!("{c} AS {new}"),
                    None => c.clone(),
                })
                .collect();
            format!(
                "SELECT {} FROM {}",
                list.join(", "),
                from_list(catalog, inner)?
            )
        }
        Plan::NaturalJoin { .. } => {
            format!("SELECT * FROM {}", from_list(catalog, plan)?)
        }
        Plan::Union { left, right } => {
            let l = term(catalog, left)?;
            let r = term(catalog, right)?;
            // Left-nested unions reassociate for free; a right-nested union
            // needs parentheses to survive the left-associative parse.
            if matches!(**right, Plan::Union { .. }) {
                format!("{l} UNION ({r})")
            } else {
                format!("{l} UNION {r}")
            }
        }
        Plan::Ext(op) => {
            let inputs = op
                .inputs()
                .into_iter()
                .map(|p| from_item(catalog, p))
                .collect::<Result<Vec<_>, _>>()?;
            op.unparse_mayql(&inputs).ok_or_else(|| {
                MayError::Unsupported(format!("operator {} has no MayQL form", op.name()))
            })?
        }
    })
}

/// Render a plan as a `FROM`-list item: a bare relation name for scans,
/// otherwise a parenthesized subquery.
fn from_item(catalog: &Catalog, plan: &Plan) -> Result<String, MayError> {
    Ok(match plan {
        Plan::Scan(name) => name.clone(),
        other => format!("({})", term(catalog, other)?),
    })
}

/// Render a plan as a comma-separated `FROM` list, flattening the left
/// spine of natural joins: `Join(Join(a, b), c)` prints as `a, b, c`, which
/// the planner folds back to the identical left-associated join.
fn from_list(catalog: &Catalog, plan: &Plan) -> Result<String, MayError> {
    fn flatten(catalog: &Catalog, plan: &Plan, out: &mut Vec<String>) -> Result<(), MayError> {
        match plan {
            Plan::NaturalJoin { left, right } => {
                flatten(catalog, left, out)?;
                out.push(from_item(catalog, right)?);
                Ok(())
            }
            other => {
                out.push(from_item(catalog, other)?);
                Ok(())
            }
        }
    }
    let mut items = Vec::new();
    flatten(catalog, plan, &mut items)?;
    Ok(items.join(", "))
}
