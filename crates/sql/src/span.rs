//! Byte spans into MayQL source text and the spanned front-end error type.

use std::fmt;

/// A half-open byte range `start..end` into the query source. Every token,
/// AST node, and front-end error carries one, so diagnostics can point at
/// the exact offending text.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
}

impl Span {
    /// A span covering `start..end`.
    pub fn new(start: usize, end: usize) -> Span {
        Span { start, end }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn join(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// A lexing, parsing, or semantic-analysis error: a human-readable message
/// anchored to a [`Span`] of the source text. [`SqlError::render`] produces
/// the full diagnostic with the offending line and a caret underline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SqlError {
    /// Where in the source the error is.
    pub span: Span,
    /// What went wrong.
    pub message: String,
}

impl SqlError {
    /// Build an error.
    pub fn new(span: Span, message: impl Into<String>) -> SqlError {
        SqlError {
            span,
            message: message.into(),
        }
    }

    /// Render the error against its source text: the message, the source
    /// line containing the span, and a caret underline. Multi-line spans are
    /// underlined on their first line only.
    pub fn render(&self, src: &str) -> String {
        let start = self.span.start.min(src.len());
        let line_start = src[..start].rfind('\n').map_or(0, |i| i + 1);
        let line_end = src[line_start..]
            .find('\n')
            .map_or(src.len(), |i| line_start + i);
        let line_no = src[..line_start].matches('\n').count() + 1;
        let column = src[line_start..start].chars().count() + 1;
        let line = &src[line_start..line_end];
        let underline_end = self.span.end.clamp(start + 1, line_end.max(start + 1));
        let carets = "^".repeat(
            src[start..underline_end.min(src.len())]
                .chars()
                .count()
                .max(1),
        );
        let pad = " ".repeat(src[line_start..start].chars().count());
        format!(
            "error: {}\n --> line {line_no}, column {column}\n  | {line}\n  | {pad}{carets}\n",
            self.message
        )
    }
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for SqlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_covers_both() {
        assert_eq!(Span::new(3, 5).join(Span::new(7, 9)), Span::new(3, 9));
    }

    #[test]
    fn render_points_at_the_span() {
        let src = "SELECT *\nFROM nosuch";
        let e = SqlError::new(Span::new(14, 20), "unknown relation `nosuch`");
        let rendered = e.render(src);
        assert_eq!(
            rendered,
            "error: unknown relation `nosuch`\n --> line 2, column 6\n  | FROM nosuch\n  |      ^^^^^^\n"
        );
    }
}
