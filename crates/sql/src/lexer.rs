//! The hand-written MayQL lexer: source text to spanned tokens.

use std::fmt;

use crate::span::{Span, SqlError};

/// What a token is. Keywords are *not* distinguished here: MayQL keywords
/// are contextual (the parser matches identifier text case-insensitively in
/// keyword positions), so that relation and column names like `conf` — which
/// the engine itself produces — stay usable in every other position.
#[derive(Clone, Debug, PartialEq)]
pub enum TokenKind {
    /// An identifier (or contextual keyword): `[A-Za-z_][A-Za-z0-9_]*`.
    Ident(String),
    /// An integer literal.
    Int(i64),
    /// A float literal (`1.5`, `0.25`, `2e-3`).
    Float(f64),
    /// A single-quoted string literal (`''` escapes a quote).
    Str(String),
    /// `,`
    Comma,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `*`
    Star,
    /// `;`
    Semi,
    /// `-` (only valid before a numeric literal).
    Minus,
    /// `=`
    Eq,
    /// `<>` or `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// End of input (always the last token).
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "`{s}`"),
            TokenKind::Int(v) => write!(f, "`{v}`"),
            TokenKind::Float(v) => write!(f, "`{v}`"),
            TokenKind::Str(s) => write!(f, "'{s}'"),
            TokenKind::Comma => f.write_str("`,`"),
            TokenKind::LParen => f.write_str("`(`"),
            TokenKind::RParen => f.write_str("`)`"),
            TokenKind::Star => f.write_str("`*`"),
            TokenKind::Semi => f.write_str("`;`"),
            TokenKind::Minus => f.write_str("`-`"),
            TokenKind::Eq => f.write_str("`=`"),
            TokenKind::Ne => f.write_str("`<>`"),
            TokenKind::Lt => f.write_str("`<`"),
            TokenKind::Le => f.write_str("`<=`"),
            TokenKind::Gt => f.write_str("`>`"),
            TokenKind::Ge => f.write_str("`>=`"),
            TokenKind::Eof => f.write_str("end of input"),
        }
    }
}

/// A token with its source span.
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    /// The token itself.
    pub kind: TokenKind,
    /// Where it sits in the source.
    pub span: Span,
}

/// Tokenize MayQL source. `--` starts a comment running to the end of the
/// line. The returned vector always ends with an [`TokenKind::Eof`] token
/// spanning the end of the input.
pub fn lex(src: &str) -> Result<Vec<Token>, SqlError> {
    let bytes = src.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b'-' if bytes.get(i + 1) == Some(&b'-') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'-' => {
                tokens.push(Token {
                    kind: TokenKind::Minus,
                    span: Span::new(i, i + 1),
                });
                i += 1;
            }
            b',' | b'(' | b')' | b'*' | b';' | b'=' => {
                let kind = match b {
                    b',' => TokenKind::Comma,
                    b'(' => TokenKind::LParen,
                    b')' => TokenKind::RParen,
                    b'*' => TokenKind::Star,
                    b';' => TokenKind::Semi,
                    _ => TokenKind::Eq,
                };
                tokens.push(Token {
                    kind,
                    span: Span::new(i, i + 1),
                });
                i += 1;
            }
            b'<' => {
                let (kind, len) = match bytes.get(i + 1) {
                    Some(b'=') => (TokenKind::Le, 2),
                    Some(b'>') => (TokenKind::Ne, 2),
                    _ => (TokenKind::Lt, 1),
                };
                tokens.push(Token {
                    kind,
                    span: Span::new(i, i + len),
                });
                i += len;
            }
            b'>' => {
                let (kind, len) = match bytes.get(i + 1) {
                    Some(b'=') => (TokenKind::Ge, 2),
                    _ => (TokenKind::Gt, 1),
                };
                tokens.push(Token {
                    kind,
                    span: Span::new(i, i + len),
                });
                i += len;
            }
            b'!' if bytes.get(i + 1) == Some(&b'=') => {
                tokens.push(Token {
                    kind: TokenKind::Ne,
                    span: Span::new(i, i + 2),
                });
                i += 2;
            }
            b'\'' => {
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(i) {
                        None => {
                            return Err(SqlError::new(
                                Span::new(start, src.len()),
                                "unterminated string literal",
                            ))
                        }
                        Some(b'\'') if bytes.get(i + 1) == Some(&b'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some(b'\'') => {
                            i += 1;
                            break;
                        }
                        Some(_) => {
                            // Strings are copied bytewise; the source is
                            // valid UTF-8, so char boundaries survive.
                            let ch_len = utf8_len(bytes[i]);
                            s.push_str(&src[i..i + ch_len]);
                            i += ch_len;
                        }
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Str(s),
                    span: Span::new(start, i),
                });
            }
            b'0'..=b'9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i < bytes.len()
                    && bytes[i] == b'.'
                    && bytes.get(i + 1).is_some_and(u8::is_ascii_digit)
                {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                    let mut j = i + 1;
                    if matches!(bytes.get(j), Some(b'+') | Some(b'-')) {
                        j += 1;
                    }
                    if bytes.get(j).is_some_and(u8::is_ascii_digit) {
                        is_float = true;
                        i = j;
                        while i < bytes.len() && bytes[i].is_ascii_digit() {
                            i += 1;
                        }
                    }
                }
                let text = &src[start..i];
                let span = Span::new(start, i);
                let kind = if is_float {
                    TokenKind::Float(text.parse().map_err(|_| {
                        SqlError::new(span, format!("invalid float literal `{text}`"))
                    })?)
                } else {
                    TokenKind::Int(text.parse().map_err(|_| {
                        SqlError::new(span, format!("integer literal `{text}` out of range"))
                    })?)
                };
                tokens.push(Token { kind, span });
            }
            b'A'..=b'Z' | b'a'..=b'z' | b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Ident(src[start..i].to_string()),
                    span: Span::new(start, i),
                });
            }
            _ => {
                let ch_len = utf8_len(b);
                return Err(SqlError::new(
                    Span::new(i, i + ch_len),
                    format!("unexpected character `{}`", &src[i..i + ch_len]),
                ));
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        span: Span::new(src.len(), src.len()),
    });
    Ok(tokens)
}

/// Length in bytes of the UTF-8 character starting with `b`.
fn utf8_len(b: u8) -> usize {
    match b {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_the_census_query() {
        let ts = kinds("SELECT POSSIBLE ssn FROM census WHERE name = 'Smith'");
        assert_eq!(
            ts,
            vec![
                TokenKind::Ident("SELECT".into()),
                TokenKind::Ident("POSSIBLE".into()),
                TokenKind::Ident("ssn".into()),
                TokenKind::Ident("FROM".into()),
                TokenKind::Ident("census".into()),
                TokenKind::Ident("WHERE".into()),
                TokenKind::Ident("name".into()),
                TokenKind::Eq,
                TokenKind::Str("Smith".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_numbers_and_operators() {
        assert_eq!(
            kinds("1 1.5 2e-3 <= <> != -7"),
            vec![
                TokenKind::Int(1),
                TokenKind::Float(1.5),
                TokenKind::Float(2e-3),
                TokenKind::Le,
                TokenKind::Ne,
                TokenKind::Ne,
                TokenKind::Minus,
                TokenKind::Int(7),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn skips_comments_and_escapes_quotes() {
        assert_eq!(
            kinds("'O''Hara' -- trailing comment\n42"),
            vec![
                TokenKind::Str("O'Hara".into()),
                TokenKind::Int(42),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn spans_are_byte_accurate() {
        let ts = lex("ab  cd").unwrap();
        assert_eq!(ts[0].span, Span::new(0, 2));
        assert_eq!(ts[1].span, Span::new(4, 6));
        assert_eq!(ts[2].span, Span::new(6, 6));
    }

    #[test]
    fn rejects_garbage() {
        let e = lex("a ? b").unwrap_err();
        assert_eq!(e.span, Span::new(2, 3));
        assert_eq!(e.message, "unexpected character `?`");
    }
}
