//! The catalog: relation schemas (and statistics) that MayQL names resolve
//! against.

use std::collections::BTreeMap;
use std::hash::{BuildHasher, Hasher};

use maybms_algebra::{SchemaProvider, StatsProvider};
use maybms_core::{collect_stats, FxBuildHasher, RelationStats, Schema, WorldSet};

/// A name → [`Schema`] map, optionally carrying per-relation statistics
/// ([`RelationStats`]) for the cost-based optimizer phase. Semantic analysis
/// resolves relation references against it; it is typically derived from a
/// [`WorldSet`] with [`Catalog::from_world_set`] — which collects statistics
/// in the same pass — and refreshed whenever a relation is added (e.g. after
/// a REPL `LET`).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Catalog {
    schemas: BTreeMap<String, Schema>,
    stats: BTreeMap<String, RelationStats>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Register (or replace) a relation schema. Schema-only registration
    /// carries no statistics: the relation plans with defaults until
    /// [`Catalog::insert_stats`] (or a catalog refresh) supplies them.
    pub fn insert(&mut self, name: impl Into<String>, schema: Schema) {
        let name = name.into();
        self.stats.remove(&name);
        self.schemas.insert(name, schema);
    }

    /// Register (or replace) a relation's statistics.
    pub fn insert_stats(&mut self, name: impl Into<String>, stats: RelationStats) {
        self.stats.insert(name.into(), stats);
    }

    /// The schemas *and statistics* of every relation in a world set, in
    /// one pass per relation.
    pub fn from_world_set(ws: &WorldSet) -> Catalog {
        Catalog {
            schemas: ws
                .relations
                .iter()
                .map(|(n, r)| (n.clone(), r.schema().clone()))
                .collect(),
            stats: ws
                .relations
                .iter()
                .map(|(n, r)| (n.clone(), collect_stats(r, &ws.components)))
                .collect(),
        }
    }

    /// The schema of the named relation, if registered.
    pub fn schema(&self, name: &str) -> Option<&Schema> {
        self.schemas.get(name)
    }

    /// The statistics of the named relation, if collected.
    pub fn stats(&self, name: &str) -> Option<&RelationStats> {
        self.stats.get(name)
    }

    /// The registered relation names, in order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.schemas.keys().map(String::as_str)
    }

    /// A fingerprint of everything the planner sees: relation names,
    /// schemas, and collected statistics. The plan cache keys entries on it,
    /// so any catalog refresh that could change a compiled plan (a new
    /// relation, a schema change, statistics drift after a `LET`) misses the
    /// cache instead of serving a stale plan. `BTreeMap` iteration makes the
    /// hash order deterministic.
    pub fn fingerprint(&self) -> u64 {
        let mut h = FxBuildHasher::default().build_hasher();
        for (name, schema) in &self.schemas {
            h.write(name.as_bytes());
            h.write(format!("{schema:?}").as_bytes());
            if let Some(stats) = self.stats.get(name) {
                h.write(format!("{stats:?}").as_bytes());
            }
            h.write_u8(0);
        }
        h.finish()
    }
}

/// The catalog is a [`SchemaProvider`], so the logical optimizer (and plan
/// schema inference) can run against it without materialized relations.
impl SchemaProvider for Catalog {
    fn base_schema(&self, name: &str) -> Option<&Schema> {
        self.schema(name)
    }
}

/// The catalog is also a [`StatsProvider`]: the cost-based phase plans
/// against the statistics collected at catalog-refresh time.
impl StatsProvider for Catalog {
    fn relation_stats(&self, name: &str) -> Option<&RelationStats> {
        self.stats.get(name)
    }
    fn has_stats(&self) -> bool {
        !self.stats.is_empty()
    }
}
