//! The catalog: relation schemas that MayQL names resolve against.

use std::collections::BTreeMap;

use maybms_algebra::SchemaProvider;
use maybms_core::{Schema, WorldSet};

/// A name → [`Schema`] map. Semantic analysis resolves relation references
/// against it; it is typically derived from a [`WorldSet`] with
/// [`Catalog::from_world_set`] and refreshed whenever a relation is added
/// (e.g. after a REPL `LET`).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Catalog {
    schemas: BTreeMap<String, Schema>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Register (or replace) a relation schema.
    pub fn insert(&mut self, name: impl Into<String>, schema: Schema) {
        self.schemas.insert(name.into(), schema);
    }

    /// The schemas of every relation in a world set.
    pub fn from_world_set(ws: &WorldSet) -> Catalog {
        Catalog {
            schemas: ws
                .relations
                .iter()
                .map(|(n, r)| (n.clone(), r.schema().clone()))
                .collect(),
        }
    }

    /// The schema of the named relation, if registered.
    pub fn schema(&self, name: &str) -> Option<&Schema> {
        self.schemas.get(name)
    }

    /// The registered relation names, in order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.schemas.keys().map(String::as_str)
    }
}

/// The catalog is a [`SchemaProvider`], so the logical optimizer (and plan
/// schema inference) can run against it without materialized relations.
impl SchemaProvider for Catalog {
    fn base_schema(&self, name: &str) -> Option<&Schema> {
        self.schema(name)
    }
}
