//! Semantic analysis and lowering: resolve a parsed [`Query`] against a
//! [`Catalog`] and produce an executable [`Plan`].
//!
//! Analysis and lowering run in one bottom-up pass: every subquery's output
//! schema is computed while its plan is built, so name resolution, type
//! checks, and union-compatibility checks all fire with the exact source
//! span of the offending construct. The lowering is *minimal* — no `Select`
//! node without a `WHERE`, no `Project` for `*`, no `Rename` without `AS` —
//! which is what makes `parse(print(plan))` reproduce the plan exactly.
//!
//! AST → plan mapping:
//!
//! | MayQL construct                  | plan shape                          |
//! |----------------------------------|-------------------------------------|
//! | `FROM r`                         | `Scan(r)`                           |
//! | `FROM a, b, c`                   | `Join(Join(a, b), c)`               |
//! | `WHERE p`                        | `Select{p}` above the joined froms  |
//! | `SELECT c₁, …, cₙ`               | `Project[c₁…cₙ]`                    |
//! | `SELECT … AS x …`                | `Rename` above the `Project`        |
//! | `SELECT POSSIBLE/CERTAIN/CONF …` | `possible`/`certain`/`conf` on top  |
//! | `q₁ UNION q₂`                    | `Union`                             |
//! | `REPAIR KEY k IN q WEIGHT BY w`  | `repair-key{k; w}`                  |

use maybms_algebra::{Operand, Plan, Predicate};
use maybms_core::{Column, Schema, Value, ValueType};
use maybms_ql::{certain, conf, conf_approx, possible, repair_key, CONF_COLUMN};

use crate::ast::{Expr, FromItem, Quantifier, Query, Repair, Scalar, SelectList, SelectQuery};
use crate::catalog::Catalog;
use crate::span::{Span, SqlError};

/// Parse, lower, and **optimize** in one step: the executable plan for a
/// MayQL query string. This is the planner's default path — the logical
/// optimizer ([`fn@maybms_algebra::optimize`]) runs on every compiled query;
/// use [`compile_unoptimized`] to see (or pin in tests) the raw lowering.
pub fn compile(catalog: &Catalog, src: &str) -> Result<Plan, SqlError> {
    let query = crate::parser::parse_query(src)?;
    let (plan, _) = lower(catalog, &query)?;
    optimize_plan(catalog, &plan, query.span())
}

/// Parse and lower without optimizing: exactly the plan the minimal
/// lowering produces. The MayQL pretty-printer's fixpoint property
/// (`print ∘ lower ∘ parse` is the identity on printed text) holds for
/// *this* path; the optimizer deliberately rewrites plan shapes.
pub fn compile_unoptimized(catalog: &Catalog, src: &str) -> Result<Plan, SqlError> {
    let query = crate::parser::parse_query(src)?;
    lower(catalog, &query).map(|(plan, _)| plan)
}

/// Environment knob for the cost-based optimizer phase: set to `0` to run
/// the rule fixpoint only (anything else — including unset — keeps the
/// cost phase on). The REPL's `\set cost_opt on|off` round-trips through
/// this variable so child evaluations agree with the session setting.
pub const COST_OPT_ENV: &str = "MAYBMS_COST_OPT";

/// Whether the cost-based phase is enabled: [`COST_OPT_ENV`] is anything
/// but `0` (default on). The phase is additionally skipped per query when
/// the catalog carries no statistics, in which case the rule-only and
/// cost-based paths are the same function.
pub fn cost_opt_enabled() -> bool {
    std::env::var(COST_OPT_ENV).map_or(true, |v| v.trim() != "0")
}

/// Run the logical optimizer against the catalog — the rule fixpoint plus,
/// when [`cost_opt_enabled`] and the catalog has statistics, the cost-based
/// phase ([`maybms_algebra::optimize_with_stats`]) — converting optimizer
/// errors (which should not occur on plans the lowering just type-checked)
/// into spanned diagnostics.
pub fn optimize_plan(catalog: &Catalog, plan: &Plan, span: Span) -> Result<Plan, SqlError> {
    let optimized = if cost_opt_enabled() {
        maybms_algebra::optimize_with_stats(plan, catalog, catalog)
    } else {
        maybms_algebra::optimize(plan, catalog)
    };
    optimized.map_err(|e| SqlError::new(span, format!("optimizer: {e}")))
}

/// Semantic analysis only: the output schema of a query, or a spanned error
/// for unresolved names, ill-typed comparisons, or incompatible unions.
pub fn analyze(catalog: &Catalog, query: &Query) -> Result<Schema, SqlError> {
    lower(catalog, query).map(|(_, schema)| schema)
}

/// Lower a parsed query to a plan plus its output schema.
pub fn lower(catalog: &Catalog, query: &Query) -> Result<(Plan, Schema), SqlError> {
    match query {
        Query::Select(s) => lower_select(catalog, s),
        Query::Union { left, right } => {
            let (lp, ls) = lower(catalog, left)?;
            let (rp, rs) = lower(catalog, right)?;
            if ls != rs {
                return Err(SqlError::new(
                    right.span(),
                    format!(
                        "UNION sides are not union-compatible: left is {}, right is {}",
                        fmt_schema(&ls),
                        fmt_schema(&rs)
                    ),
                ));
            }
            Ok((lp.union(rp), ls))
        }
        Query::Repair(r) => lower_repair(catalog, r),
    }
}

fn lower_from_item(catalog: &Catalog, item: &FromItem) -> Result<(Plan, Schema), SqlError> {
    match item {
        FromItem::Relation(id) => match catalog.schema(&id.name) {
            Some(schema) => Ok((Plan::scan(&id.name), schema.clone())),
            None => Err(SqlError::new(
                id.span,
                format!("unknown relation `{}`", id.name),
            )),
        },
        FromItem::Subquery { query, .. } => lower(catalog, query),
        FromItem::Repair(r) => lower_repair(catalog, r),
    }
}

fn lower_repair(catalog: &Catalog, repair: &Repair) -> Result<(Plan, Schema), SqlError> {
    let (plan, schema) = lower_from_item(catalog, &repair.input)?;
    for k in &repair.key {
        resolve_column(&schema, k.span, &k.name)?;
    }
    if let Some(w) = &repair.weight {
        let i = resolve_column(&schema, w.span, &w.name)?;
        let ty = schema.columns()[i].ty;
        if !matches!(ty, ValueType::Int | ValueType::Float) {
            return Err(SqlError::new(
                w.span,
                format!(
                    "WEIGHT BY column `{}` has type {ty}; expected a numeric column",
                    w.name
                ),
            ));
        }
    }
    let key: Vec<&str> = repair.key.iter().map(|k| k.name.as_str()).collect();
    let weight = repair.weight.as_ref().map(|w| w.name.as_str());
    Ok((repair_key(plan, &key, weight), schema))
}

fn lower_select(catalog: &Catalog, select: &SelectQuery) -> Result<(Plan, Schema), SqlError> {
    // FROM: natural-join the items left to right.
    let mut items = select.from.iter();
    let first = items.next().expect("the parser requires one from-item");
    let (mut plan, mut schema) = lower_from_item(catalog, first)?;
    for item in items {
        let (p, s) = lower_from_item(catalog, item)?;
        let joined = schema
            .natural_join(&s)
            .map_err(|e| SqlError::new(item.span(), e.to_string()))?;
        plan = plan.join(p);
        schema = joined.schema;
    }

    // WHERE runs before projection, so it sees every from-item column.
    if let Some(filter) = &select.filter {
        let predicate = lower_expr(&schema, filter)?;
        plan = plan.select(predicate);
    }

    // SELECT list: project, then rename the aliased columns.
    if let SelectList::Items(items) = &select.items {
        let mut sources: Vec<&str> = Vec::with_capacity(items.len());
        let mut outputs: Vec<&str> = Vec::with_capacity(items.len());
        for item in items {
            let name = item.column.name.as_str();
            if sources.contains(&name) {
                return Err(SqlError::new(
                    item.span(),
                    format!("duplicate column `{name}` in select list"),
                ));
            }
            let out = item.alias.as_ref().map_or(name, |a| a.name.as_str());
            if outputs.contains(&out) {
                return Err(SqlError::new(
                    item.span(),
                    format!("duplicate output column `{out}` in select list"),
                ));
            }
            resolve_column(&schema, item.column.span, name)?;
            sources.push(name);
            outputs.push(out);
        }
        let (projected, _) = schema
            .project(&sources.iter().map(|s| s.to_string()).collect::<Vec<_>>())
            .expect("select-list columns were just resolved");
        plan = plan.project(sources.clone());
        schema = projected;
        let renames: Vec<(String, String)> = items
            .iter()
            .filter_map(|it| {
                it.alias
                    .as_ref()
                    .map(|a| (it.column.name.clone(), a.name.clone()))
            })
            .collect();
        if !renames.is_empty() {
            schema = schema
                .rename(&renames)
                .expect("alias collisions were just rejected");
            plan = plan.rename(renames);
        }
    }

    // The uncertainty quantifier wraps the finished block.
    if let Some((q, span)) = &select.quantifier {
        (plan, schema) = apply_quantifier(plan, schema, *q, *span)?;
    }
    Ok((plan, schema))
}

fn apply_quantifier(
    plan: Plan,
    schema: Schema,
    q: Quantifier,
    span: Span,
) -> Result<(Plan, Schema), SqlError> {
    match q {
        Quantifier::Possible => Ok((possible(plan), schema)),
        Quantifier::Certain => Ok((certain(plan), schema)),
        Quantifier::Conf => {
            let schema = conf_schema(schema, span)?;
            Ok((conf(plan), schema))
        }
        Quantifier::ConfApprox {
            eps,
            delta,
            eps_span,
            delta_span,
        } => {
            check_unit_interval(eps, eps_span, "eps")?;
            check_unit_interval(delta, delta_span, "delta")?;
            let schema = conf_schema(schema, span)?;
            Ok((conf_approx(plan, eps, delta), schema))
        }
    }
}

/// The schema of a `conf` result: the input columns plus the appended
/// `conf` float column (rejecting inputs that already carry one).
fn conf_schema(schema: Schema, span: Span) -> Result<Schema, SqlError> {
    let mut cols = schema.columns().to_vec();
    cols.push(Column::new(CONF_COLUMN, ValueType::Float));
    Schema::new(cols).map_err(|_| {
        SqlError::new(
            span,
            format!("CONF input already has a `{CONF_COLUMN}` column"),
        )
    })
}

/// `CONF(eps, delta)` arguments must be probabilities strictly inside
/// `(0, 1)`: 0 would demand an exact answer from a sampler, 1 makes the
/// guarantee vacuous.
fn check_unit_interval(v: f64, span: Span, what: &str) -> Result<(), SqlError> {
    if v.is_finite() && v > 0.0 && v < 1.0 {
        Ok(())
    } else {
        Err(SqlError::new(
            span,
            format!("CONF {what} must be in (0, 1), got {v}"),
        ))
    }
}

fn lower_expr(schema: &Schema, expr: &Expr) -> Result<Predicate, SqlError> {
    Ok(match expr {
        Expr::Compare { op, lhs, rhs, span } => {
            let (l, lt) = lower_scalar(schema, lhs)?;
            let (r, rt) = lower_scalar(schema, rhs)?;
            if let (Some(lt), Some(rt)) = (lt, rt) {
                if lt != rt {
                    return Err(SqlError::new(*span, format!("cannot compare {lt} to {rt}")));
                }
            }
            Predicate::cmp(*op, l, r)
        }
        Expr::And(es) => Predicate::And(
            es.iter()
                .map(|e| lower_expr(schema, e))
                .collect::<Result<_, _>>()?,
        ),
        Expr::Or(es) => Predicate::Or(
            es.iter()
                .map(|e| lower_expr(schema, e))
                .collect::<Result<_, _>>()?,
        ),
        Expr::Not(e) => Predicate::Not(Box::new(lower_expr(schema, e)?)),
        Expr::Bool { value: true, .. } => Predicate::True,
        Expr::Bool { value: false, .. } => Predicate::Not(Box::new(Predicate::True)),
    })
}

/// Lower one comparison operand, returning its type when statically known
/// (`NULL` compares with anything).
fn lower_scalar(
    schema: &Schema,
    scalar: &Scalar,
) -> Result<(Operand, Option<ValueType>), SqlError> {
    match scalar {
        Scalar::Column(id) => {
            let i = resolve_column(schema, id.span, &id.name)?;
            Ok((
                Operand::Column(id.name.clone()),
                Some(schema.columns()[i].ty),
            ))
        }
        Scalar::Literal { value, .. } => {
            let ty = match value {
                Value::Null => None,
                v => Some(v.type_of()),
            };
            Ok((Operand::Literal(value.clone()), ty))
        }
    }
}

fn resolve_column(schema: &Schema, span: Span, name: &str) -> Result<usize, SqlError> {
    schema.col_index(name).map_err(|_| {
        SqlError::new(
            span,
            format!(
                "unknown column `{name}`; in scope: {}",
                schema.names().join(", ")
            ),
        )
    })
}

/// `(a int, b str)` — schemas as they appear in error messages.
fn fmt_schema(schema: &Schema) -> String {
    let cols: Vec<String> = schema
        .columns()
        .iter()
        .map(|c| format!("{} {}", c.name, c.ty))
        .collect();
    format!("({})", cols.join(", "))
}
