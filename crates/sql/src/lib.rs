//! # maybms-sql — the MayQL front-end
//!
//! A textual query language for the MayBMS reproduction: the paper's
//! SQL extension for incomplete information, covering the positive
//! relational algebra (`SELECT` projection with `AS` renaming, natural
//! joins over comma-separated `FROM` items, conjunctive/disjunctive
//! `WHERE` predicates, `UNION`) plus the uncertainty constructs —
//! `REPAIR KEY … IN … [WEIGHT BY …]` and the `POSSIBLE` / `CERTAIN` /
//! `CONF` quantifiers.
//!
//! The pipeline is classic and fully hand-written (the build environment is
//! offline, and a front-end this small doesn't need a parser generator):
//!
//! 1. **[`lexer`]** — source text to spanned tokens; keywords are
//!    case-insensitive and *contextual*, so names the engine itself produces
//!    (like the `conf` column) stay usable as identifiers.
//! 2. **[`parser`]** — recursive descent into the typed [`ast`] (the module
//!    docs give the full EBNF grammar).
//! 3. **[`planner`]** — semantic analysis against a [`Catalog`] of relation
//!    schemas fused with lowering to the [`maybms_algebra::Plan`] IR;
//!    unresolved names, ill-typed comparisons, non-compatible unions, and
//!    non-numeric `WEIGHT BY` columns are rejected with [`SqlError`]s
//!    carrying the exact source [`Span`]. [`compile`] then runs the logical
//!    optimizer ([`fn@maybms_algebra::optimize`]) by default;
//!    [`compile_unoptimized`] exposes the raw lowering, and [`fn@explain`]
//!    (the `EXPLAIN <query>` statement) renders both plans.
//! 4. **[`unparse`]** — the pretty-printer back from plans to MayQL text;
//!    `compile_unoptimized(catalog, to_mayql(catalog, plan)?)` reproduces
//!    the plan, a property the testkit checks on randomized plans together
//!    with execution equivalence.
//!
//! ```
//! use maybms_core::{Relation, Schema, Tuple, URelation, Value, ValueType, WorldSet};
//! use maybms_sql::{compile, Catalog};
//!
//! let schema = Schema::of(&[("name", ValueType::Str), ("ssn", ValueType::Int)]).unwrap();
//! let rel = Relation::from_rows(
//!     schema,
//!     vec![Tuple::new(vec![Value::str("Smith"), Value::Int(185)])],
//! )
//! .unwrap();
//! let mut ws = WorldSet::new();
//! ws.insert("census", URelation::from_certain(&rel)).unwrap();
//!
//! let catalog = Catalog::from_world_set(&ws);
//! let plan = compile(&catalog, "SELECT POSSIBLE ssn FROM census WHERE name = 'Smith'").unwrap();
//! let result = maybms_algebra::run(&mut ws, &plan).unwrap();
//! assert_eq!(result.len(), 1);
//! ```

pub mod ast;
pub mod cache;
pub mod catalog;
pub mod explain;
pub mod lexer;
pub mod parser;
pub mod planner;
pub mod span;
pub mod unparse;

pub use ast::{Query, Statement};
pub use cache::{normalize_query, CachedPlan, PlanCache, DEFAULT_PLAN_CACHE_CAP};
pub use catalog::Catalog;
pub use explain::{explain, explain_analyze, explain_analyze_plan, Explain, ExplainAnalyze};
pub use parser::{parse_query, parse_script, parse_statement};
pub use planner::{
    analyze, compile, compile_unoptimized, cost_opt_enabled, lower, optimize_plan, COST_OPT_ENV,
};
pub use span::{Span, SqlError};
pub use unparse::{schema_of, to_mayql};

#[cfg(test)]
mod tests {
    use maybms_algebra::{col, lit, run, Plan, Predicate};
    use maybms_core::{Relation, Schema, Tuple, URelation, Value, ValueType, WorldSet};
    use maybms_ql::{conf, possible, repair_key};

    use super::*;

    fn census_world() -> WorldSet {
        let schema = Schema::of(&[
            ("name", ValueType::Str),
            ("ssn", ValueType::Int),
            ("w", ValueType::Int),
        ])
        .unwrap();
        let rows = [
            ("Smith", 185, 3),
            ("Smith", 785, 1),
            ("Brown", 185, 1),
            ("Brown", 186, 1),
        ];
        let rel = Relation::from_rows(
            schema,
            rows.iter()
                .map(|&(n, s, w)| Tuple::new(vec![Value::str(n), s.into(), Value::Int(w)]))
                .collect(),
        )
        .unwrap();
        let mut ws = WorldSet::new();
        ws.insert("censusform", URelation::from_certain(&rel))
            .unwrap();
        ws
    }

    #[test]
    fn lowers_the_paper_repair_query() {
        let ws = census_world();
        let catalog = Catalog::from_world_set(&ws);
        let parsed =
            compile_unoptimized(&catalog, "REPAIR KEY name IN censusform WEIGHT BY w").unwrap();
        let hand = repair_key(Plan::scan("censusform"), &["name"], Some("w"));
        assert_eq!(
            to_mayql(&catalog, &parsed).unwrap(),
            to_mayql(&catalog, &hand).unwrap()
        );
        // Both evaluate to the same u-relation (components minted in the
        // same deterministic order on separate world-set clones).
        let a = run(&mut ws.clone(), &parsed).unwrap();
        let b = run(&mut ws.clone(), &hand).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn lowers_select_where_project_possible() {
        let ws = census_world();
        let catalog = Catalog::from_world_set(&ws);
        let parsed = compile_unoptimized(
            &catalog,
            "SELECT POSSIBLE ssn FROM censusform WHERE name = 'Smith'",
        )
        .unwrap();
        let hand = possible(
            Plan::scan("censusform")
                .select(Predicate::eq(col("name"), lit("Smith")))
                .project(["ssn"]),
        );
        assert_eq!(
            to_mayql(&catalog, &parsed).unwrap(),
            to_mayql(&catalog, &hand).unwrap()
        );
    }

    #[test]
    fn conf_appends_a_float_column() {
        let ws = census_world();
        let catalog = Catalog::from_world_set(&ws);
        let q = parse_query("SELECT CONF name, ssn FROM censusform").unwrap();
        let schema = analyze(&catalog, &q).unwrap();
        assert_eq!(schema.names(), vec!["name", "ssn", "conf"]);
        assert_eq!(schema.columns()[2].ty, ValueType::Float);
    }

    #[test]
    fn aliases_lower_to_project_then_rename() {
        let ws = census_world();
        let catalog = Catalog::from_world_set(&ws);
        let parsed =
            compile_unoptimized(&catalog, "SELECT name AS n1, ssn FROM censusform").unwrap();
        let hand = Plan::scan("censusform")
            .project(["name", "ssn"])
            .rename([("name", "n1")]);
        assert_eq!(
            to_mayql(&catalog, &parsed).unwrap(),
            to_mayql(&catalog, &hand).unwrap()
        );
    }

    #[test]
    fn unparse_is_a_fixpoint_on_the_census_queries() {
        let ws = census_world();
        let catalog = Catalog::from_world_set(&ws);
        let plans = [
            repair_key(Plan::scan("censusform"), &["name"], Some("w")),
            possible(
                Plan::scan("censusform")
                    .select(Predicate::eq(col("name"), lit("Smith")))
                    .project(["ssn"]),
            ),
            conf(Plan::scan("censusform").project(["name", "ssn"])),
            Plan::scan("censusform")
                .project(["name", "ssn"])
                .rename([("name", "n1")])
                .join(
                    Plan::scan("censusform")
                        .project(["name", "ssn"])
                        .rename([("name", "n2")]),
                )
                .select(Predicate::lt(col("n1"), col("n2"))),
        ];
        for plan in &plans {
            let text = to_mayql(&catalog, plan).unwrap();
            let reparsed = compile_unoptimized(&catalog, &text).unwrap();
            assert_eq!(to_mayql(&catalog, &reparsed).unwrap(), text);
            let a = run(&mut ws.clone(), plan).unwrap();
            let b = run(&mut ws.clone(), &reparsed).unwrap();
            assert_eq!(a, b, "execution differs for {text}");
        }
    }

    /// `compile` (the default path) optimizes: the census filter query
    /// comes back with the selection pushed to the scan and the projection
    /// pruned, and still evaluates to the same result as the raw lowering.
    #[test]
    fn compile_optimizes_by_default() {
        let ws = census_world();
        let catalog = Catalog::from_world_set(&ws);
        let text =
            "SELECT ssn FROM censusform, (SELECT name AS n2, ssn FROM censusform) WHERE w = 1";
        let optimized = compile(&catalog, text).unwrap();
        let raw = compile_unoptimized(&catalog, text).unwrap();
        assert_ne!(
            optimized.to_string(),
            raw.to_string(),
            "expected the optimizer to rewrite the plan"
        );
        let mut a = run(&mut ws.clone(), &optimized).unwrap();
        let mut b = run(&mut ws.clone(), &raw).unwrap();
        a.dedup();
        b.dedup();
        assert_eq!(a, b);
    }

    #[test]
    fn unparse_rejects_plans_without_a_compilable_form() {
        let ws = census_world();
        let catalog = Catalog::from_world_set(&ws);
        // The executor tolerates mixed-type comparisons through `Value`'s
        // total order, but MayQL rejects them as ill-typed — so this plan
        // has no roundtrippable text and `to_mayql` must say so rather
        // than emit text that fails to compile.
        let plan = Plan::scan("censusform").select(Predicate::lt(col("name"), col("ssn")));
        assert!(to_mayql(&catalog, &plan).is_err());
        // A rename whose source is not among the projected columns is
        // ill-typed (the executor rejects it); the aliased-select-list
        // collapse must not silently drop the pair and print a *different*
        // valid plan.
        let plan = Plan::scan("censusform")
            .project(["ssn"])
            .rename([("name", "n")]);
        assert!(to_mayql(&catalog, &plan).is_err());
    }

    #[test]
    fn union_requires_compatible_schemas() {
        let ws = census_world();
        let catalog = Catalog::from_world_set(&ws);
        let err = compile(
            &catalog,
            "SELECT name FROM censusform UNION SELECT ssn FROM censusform",
        )
        .unwrap_err();
        assert!(err.message.contains("union-compatible"), "{}", err.message);
    }
}
