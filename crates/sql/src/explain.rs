//! `EXPLAIN`: show a query's lowered and optimized plans side by side —
//! and `EXPLAIN ANALYZE`: execute with tracing on and annotate the
//! optimized plan with per-node observations.
//!
//! The REPL's `EXPLAIN [ANALYZE] <query>` statements and the golden plan
//! tests share this module, so what the tests pin is exactly what users
//! see.

use std::fmt;

use maybms_algebra::{run_traced, ExecStats, Plan};
use maybms_core::{ParCfg, QueryTrace, WorldSet};

use crate::ast::Query;
use crate::catalog::Catalog;
use crate::planner::{lower, optimize_plan};
use crate::span::SqlError;

/// The two plans `EXPLAIN` shows: the planner's minimal lowering and the
/// result of the logical optimizer (the plan the executor actually runs).
#[derive(Clone, Debug)]
pub struct Explain {
    /// The plan as lowered from the AST, before any rewrite.
    pub lowered: Plan,
    /// The plan after the algebraic rewrite passes.
    pub optimized: Plan,
}

/// Analyze a parsed query and produce both plans.
pub fn explain(catalog: &Catalog, query: &Query) -> Result<Explain, SqlError> {
    let (lowered, _) = lower(catalog, query)?;
    let optimized = optimize_plan(catalog, &lowered, query.span())?;
    Ok(Explain { lowered, optimized })
}

/// The REPL rendering: both operator trees, indented under their headers.
impl fmt::Display for Explain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let tree = |f: &mut fmt::Formatter<'_>, plan: &Plan| -> fmt::Result {
            for line in plan.to_string().lines() {
                writeln!(f, "  {line}")?;
            }
            Ok(())
        };
        writeln!(f, "lowered plan:")?;
        tree(f, &self.lowered)?;
        writeln!(f, "optimized plan:")?;
        tree(f, &self.optimized)
    }
}

/// The result of `EXPLAIN ANALYZE`: the optimized plan, the trace of one
/// traced execution of it, and the run's summary stats. The result
/// *relation* is intentionally not part of the rendering (like SQL
/// `EXPLAIN ANALYZE`, the statement reports how the query ran, not its
/// rows) but the trace is kept whole, so callers can also export it with
/// [`QueryTrace::to_json`].
#[derive(Clone, Debug)]
pub struct ExplainAnalyze {
    /// The plan the executor ran (after optimization).
    pub optimized: Plan,
    /// Per-node spans of the traced run.
    pub trace: QueryTrace,
    /// The run's flat summary counters.
    pub stats: ExecStats,
}

/// Compile `query`, execute it on `ws` with tracing enabled, and collect
/// the annotated plan. Side effects are real: a `REPAIR KEY` inside the
/// query mints components into `ws` exactly like a normal run — callers
/// that must not disturb a session world set should pass a clone (the REPL
/// does).
pub fn explain_analyze(
    catalog: &Catalog,
    ws: &mut WorldSet,
    query: &Query,
    par: &ParCfg,
) -> Result<ExplainAnalyze, SqlError> {
    let (lowered, _) = lower(catalog, query)?;
    let optimized = optimize_plan(catalog, &lowered, query.span())?;
    let (_result, stats, trace) = run_traced(ws, &optimized, par)
        .map_err(|e| SqlError::new(query.span(), format!("execution failed: {e}")))?;
    Ok(ExplainAnalyze {
        optimized,
        trace,
        stats,
    })
}

/// The REPL rendering: the executed span tree (which mirrors the optimized
/// plan tree, plus `·`-marked operator sub-phases), each node annotated
/// with wall time, row counts, and the counters it incurred, followed by a
/// one-line execution summary.
impl fmt::Display for ExplainAnalyze {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "analyzed plan:")?;
        for line in self.trace.render_tree().lines() {
            writeln!(f, "  {line}")?;
        }
        writeln!(
            f,
            "execution: total={:.3}ms rows={} threads={}",
            self.trace.total_nanos as f64 / 1e6,
            self.stats.output_rows,
            self.trace.threads
        )
    }
}
