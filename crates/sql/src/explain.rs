//! `EXPLAIN`: show a query's lowered and optimized plans side by side.
//!
//! The REPL's `EXPLAIN <query>` statement and the golden plan tests share
//! this module, so what the tests pin is exactly what users see.

use std::fmt;

use maybms_algebra::Plan;

use crate::ast::Query;
use crate::catalog::Catalog;
use crate::planner::{lower, optimize_plan};
use crate::span::SqlError;

/// The two plans `EXPLAIN` shows: the planner's minimal lowering and the
/// result of the logical optimizer (the plan the executor actually runs).
#[derive(Clone, Debug)]
pub struct Explain {
    /// The plan as lowered from the AST, before any rewrite.
    pub lowered: Plan,
    /// The plan after the algebraic rewrite passes.
    pub optimized: Plan,
}

/// Analyze a parsed query and produce both plans.
pub fn explain(catalog: &Catalog, query: &Query) -> Result<Explain, SqlError> {
    let (lowered, _) = lower(catalog, query)?;
    let optimized = optimize_plan(catalog, &lowered, query.span())?;
    Ok(Explain { lowered, optimized })
}

/// The REPL rendering: both operator trees, indented under their headers.
impl fmt::Display for Explain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let tree = |f: &mut fmt::Formatter<'_>, plan: &Plan| -> fmt::Result {
            for line in plan.to_string().lines() {
                writeln!(f, "  {line}")?;
            }
            Ok(())
        };
        writeln!(f, "lowered plan:")?;
        tree(f, &self.lowered)?;
        writeln!(f, "optimized plan:")?;
        tree(f, &self.optimized)
    }
}
