//! `EXPLAIN`: show a query's lowered and optimized plans side by side —
//! and `EXPLAIN ANALYZE`: execute with tracing on and annotate the
//! optimized plan with per-node observations.
//!
//! When the catalog carries relation statistics, both statements also show
//! the cost model's per-node cardinality estimates (`est_rows=`), and
//! `EXPLAIN ANALYZE` closes with a q-error summary comparing them against
//! the observed row counts — the planner grading its own homework. Each
//! analyzed node's q-error also feeds the process-wide
//! `maybms_plan_q_error_milli` histogram in [`maybms_core::metrics`].
//!
//! The REPL's `EXPLAIN [ANALYZE] <query>` statements and the golden plan
//! tests share this module, so what the tests pin is exactly what users
//! see.

use std::fmt;

use maybms_algebra::{
    estimate_preorder, exec_order, run_traced, sip_decisions, ExecCfg, ExecStats, Plan,
    StatsProvider,
};
use maybms_core::{metrics, ParCfg, QueryTrace, Span, SpanKind, WorldSet};

use crate::ast::Query;
use crate::catalog::Catalog;
use crate::planner::{lower, optimize_plan};
use crate::span::SqlError;

/// The two plans `EXPLAIN` shows: the planner's minimal lowering and the
/// result of the logical optimizer (the plan the executor actually runs).
#[derive(Clone, Debug)]
pub struct Explain {
    /// The plan as lowered from the AST, before any rewrite.
    pub lowered: Plan,
    /// The plan after the algebraic rewrite passes.
    pub optimized: Plan,
    /// Estimated output rows per node of `optimized`, in pre-order (the
    /// plan tree's printed line order); `None` when the catalog has no
    /// statistics to estimate from.
    pub estimates: Option<Vec<f64>>,
    /// Plan-time sideways-information-passing decisions per node of
    /// `optimized`, in pre-order: `sip=bloom(keys, …)` on joins whose
    /// estimated build side qualifies, `""` elsewhere. Empty when
    /// `MAYBMS_SIP=0` (the runtime gate additionally checks the *actual*
    /// build-side row count, so a rendered decision is the plan's intent,
    /// not a promise).
    pub sip: Vec<String>,
}

/// Analyze a parsed query and produce both plans.
pub fn explain(catalog: &Catalog, query: &Query) -> Result<Explain, SqlError> {
    let (lowered, _) = lower(catalog, query)?;
    let optimized = optimize_plan(catalog, &lowered, query.span())?;
    let estimates = catalog
        .has_stats()
        .then(|| estimate_preorder(&optimized, catalog, catalog));
    let sip = if ExecCfg::from_env().sip {
        sip_decisions(&optimized, catalog, catalog)
    } else {
        Vec::new()
    };
    Ok(Explain {
        lowered,
        optimized,
        estimates,
        sip,
    })
}

/// The REPL rendering: both operator trees, indented under their headers;
/// the optimized tree's lines carry `est_rows=` when estimates exist.
impl fmt::Display for Explain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let tree = |f: &mut fmt::Formatter<'_>, plan: &Plan| -> fmt::Result {
            for line in plan.to_string().lines() {
                writeln!(f, "  {line}")?;
            }
            Ok(())
        };
        writeln!(f, "lowered plan:")?;
        tree(f, &self.lowered)?;
        writeln!(f, "optimized plan:")?;
        if self.estimates.is_none() && self.sip.iter().all(String::is_empty) {
            return tree(f, &self.optimized);
        }
        // One printed line per plan node, in the same pre-order the
        // estimator and the SIP decision walk; each line carries whichever
        // annotations exist.
        for (i, line) in self.optimized.to_string().lines().enumerate() {
            let mut ann: Vec<String> = Vec::new();
            if let Some(ests) = &self.estimates {
                ann.push(format!("est_rows={}", fmt_est(ests[i])));
            }
            if let Some(s) = self.sip.get(i).filter(|s| !s.is_empty()) {
                ann.push(s.clone());
            }
            if ann.is_empty() {
                writeln!(f, "  {line}")?;
            } else {
                writeln!(f, "  {line}  ({})", ann.join(" "))?;
            }
        }
        Ok(())
    }
}

/// The result of `EXPLAIN ANALYZE`: the optimized plan, the trace of one
/// traced execution of it, and the run's summary stats. The result
/// *relation* is intentionally not part of the rendering (like SQL
/// `EXPLAIN ANALYZE`, the statement reports how the query ran, not its
/// rows) but the trace is kept whole, so callers can also export it with
/// [`QueryTrace::to_json`].
#[derive(Clone, Debug)]
pub struct ExplainAnalyze {
    /// The plan the executor ran (after optimization).
    pub optimized: Plan,
    /// Per-node spans of the traced run.
    pub trace: QueryTrace,
    /// The run's flat summary counters.
    pub stats: ExecStats,
    /// Estimated output rows per node of `optimized`, in pre-order;
    /// `None` when the catalog has no statistics.
    pub estimates: Option<Vec<f64>>,
    /// Whether sideways information passing was enabled for the traced run.
    /// SIP evaluates join build sides before probe sides, so it changes the
    /// *order* node spans appear in the trace — estimate alignment has to
    /// replay that order ([`exec_order`]).
    pub sip_enabled: bool,
}

/// Compile `query`, execute it on `ws` with tracing enabled, and collect
/// the annotated plan. Side effects are real: a `REPAIR KEY` inside the
/// query mints components into `ws` exactly like a normal run — callers
/// that must not disturb a session world set should pass a clone (the REPL
/// does).
pub fn explain_analyze(
    catalog: &Catalog,
    ws: &mut WorldSet,
    query: &Query,
    par: &ParCfg,
) -> Result<ExplainAnalyze, SqlError> {
    let (lowered, _) = lower(catalog, query)?;
    let optimized = optimize_plan(catalog, &lowered, query.span())?;
    let estimates = catalog
        .has_stats()
        .then(|| estimate_preorder(&optimized, catalog, catalog));
    explain_analyze_plan(ws, optimized, estimates, query.span(), par)
}

/// The execution half of `EXPLAIN ANALYZE`, for callers that already hold a
/// compiled plan — notably the REPL's plan cache, which passes the *cached*
/// estimates (with any pending one-shot q-error correction applied) so the
/// rendered `est_rows=` reflect what the planner would use next time.
pub fn explain_analyze_plan(
    ws: &mut WorldSet,
    optimized: Plan,
    estimates: Option<Vec<f64>>,
    span: crate::Span,
    par: &ParCfg,
) -> Result<ExplainAnalyze, SqlError> {
    let sip_enabled = ExecCfg::from_env().sip;
    let (_result, stats, trace) = run_traced(ws, &optimized, par)
        .map_err(|e| SqlError::new(span, format!("execution failed: {e}")))?;
    let analyzed = ExplainAnalyze {
        optimized,
        trace,
        stats,
        estimates,
        sip_enabled,
    };
    // Grade the estimates against the observed row counts while we have
    // both in hand: one q-error histogram sample per analyzed plan node.
    for (est, actual) in analyzed.node_estimates() {
        let q = q_error(est, actual);
        metrics().plan_q_error_milli.observe((q * 1000.0) as u64);
    }
    Ok(analyzed)
}

/// The q-error of one estimate: `max(est/actual, actual/est)` with both
/// sides floored at one row, so empty outputs grade against 1 instead of
/// dividing by zero. 1.0 is a perfect estimate.
fn q_error(est: f64, actual: u64) -> f64 {
    let est = est.max(1.0);
    let actual = (actual as f64).max(1.0);
    (est / actual).max(actual / est)
}

/// `est_rows=` values print as integers: sub-row precision is estimation
/// noise, not information.
fn fmt_est(est: f64) -> String {
    format!("{:.0}", est.max(0.0))
}

impl ExplainAnalyze {
    /// The *node* spans of the trace, in execution order, but only when the
    /// span tree matches the plan tree node-for-node (a shared extension
    /// subtree executed once diverges — annotation then degrades to none
    /// rather than mislabeling nodes).
    fn node_spans(&self) -> Option<Vec<&Span>> {
        let nodes: Vec<&Span> = self
            .trace
            .spans
            .iter()
            .filter(|s| s.kind == SpanKind::Node)
            .collect();
        (nodes.len() == self.optimized.node_count()).then_some(nodes)
    }

    /// Pair each node span with its estimate, in *execution* order (the
    /// order the rendered span tree prints). Under SIP, execution order
    /// differs from plan pre-order — [`exec_order`] maps between them.
    /// Empty when estimates are absent or the span tree diverges.
    fn node_estimates(&self) -> Vec<(f64, u64)> {
        let Some(ests) = &self.estimates else {
            return Vec::new();
        };
        let Some(nodes) = self.node_spans() else {
            return Vec::new();
        };
        if nodes.len() != ests.len() {
            return Vec::new();
        }
        let order = exec_order(&self.optimized, self.sip_enabled);
        order
            .iter()
            .zip(nodes)
            .map(|(&pre, s)| (ests[pre], s.rows_out))
            .collect()
    }

    /// Pair each plan node's estimate with its observed output rows, in
    /// *plan pre-order* — the alignment the plan cache's q-error feedback
    /// consumes. Empty when estimates are absent or the span tree diverges
    /// from the plan tree.
    pub fn node_observations(&self) -> Vec<(f64, u64)> {
        let Some(ests) = &self.estimates else {
            return Vec::new();
        };
        let Some(nodes) = self.node_spans() else {
            return Vec::new();
        };
        if nodes.len() != ests.len() {
            return Vec::new();
        }
        let order = exec_order(&self.optimized, self.sip_enabled);
        let mut out = vec![(0.0, 0u64); nodes.len()];
        for (&pre, s) in order.iter().zip(nodes) {
            out[pre] = (ests[pre], s.rows_out);
        }
        out
    }
}

/// The REPL rendering: the executed span tree (which mirrors the optimized
/// plan tree, plus `·`-marked operator sub-phases), each node annotated
/// with wall time, row counts, estimated rows (when the catalog has
/// statistics), and the counters it incurred, followed by a one-line
/// execution summary and — with estimates — a q-error summary.
impl fmt::Display for ExplainAnalyze {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let node_ests = self.node_estimates();
        let mut next = node_ests.iter();
        writeln!(f, "analyzed plan:")?;
        for line in self.trace.render_tree().lines() {
            // Node lines carry `rows=`; phase lines are `·`-marked and
            // estimate nothing.
            if !line.trim_start().starts_with('·') {
                if let Some((est, _)) = next.next() {
                    let annotated = line
                        .strip_suffix(')')
                        .map(|l| format!("{l} est_rows={})", fmt_est(*est)));
                    if let Some(a) = annotated {
                        writeln!(f, "  {a}")?;
                        continue;
                    }
                }
            }
            writeln!(f, "  {line}")?;
        }
        writeln!(
            f,
            "execution: total={:.3}ms rows={} threads={}",
            self.trace.total_nanos as f64 / 1e6,
            self.stats.output_rows,
            self.trace.threads
        )?;
        if self.stats.sip.filters_built > 0 {
            writeln!(
                f,
                "sip: filters={} tested={} pruned={}",
                self.stats.sip.filters_built,
                self.stats.sip.probe_rows_tested,
                self.stats.sip.probe_rows_pruned
            )?;
        }
        if !node_ests.is_empty() {
            let mut qs: Vec<f64> = node_ests.iter().map(|&(e, a)| q_error(e, a)).collect();
            qs.sort_by(|a, b| a.partial_cmp(b).expect("q-errors are finite"));
            let median = qs[qs.len() / 2];
            let max = qs[qs.len() - 1];
            writeln!(
                f,
                "estimation: nodes={} q_error median={median:.2} max={max:.2}",
                qs.len()
            )?;
        }
        Ok(())
    }
}
