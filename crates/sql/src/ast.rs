//! The typed MayQL abstract syntax tree. Every name-carrying node keeps the
//! [`Span`] it was parsed from, so semantic analysis can anchor its errors.

use maybms_algebra::CmpOp;
use maybms_core::Value;

use crate::span::Span;

/// An identifier with its source span.
#[derive(Clone, Debug, PartialEq)]
pub struct Ident {
    /// The name as written (identifiers are case-sensitive).
    pub name: String,
    /// Where it was written.
    pub span: Span,
}

/// A full query: `UNION` chains of select terms, `REPAIR KEY` expressions,
/// or parenthesized combinations thereof.
#[derive(Clone, Debug, PartialEq)]
pub enum Query {
    /// A `SELECT … FROM … [WHERE …]` block.
    Select(SelectQuery),
    /// `left UNION right` (left-associative).
    Union {
        /// Left term.
        left: Box<Query>,
        /// Right term.
        right: Box<Query>,
    },
    /// A bare `REPAIR KEY … IN … [WEIGHT BY …]` expression.
    Repair(Repair),
}

impl Query {
    /// The source span covered by the query.
    pub fn span(&self) -> Span {
        match self {
            Query::Select(s) => s.span,
            Query::Union { left, right } => left.span().join(right.span()),
            Query::Repair(r) => r.span,
        }
    }
}

/// The paper's uncertainty quantifiers, written directly after `SELECT`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Quantifier {
    /// Tuples occurring in at least one world.
    Possible,
    /// Tuples occurring in every world.
    Certain,
    /// Exact tuple confidence, appended as a `conf` column.
    Conf,
    /// `CONF(eps, delta)` — (ε, δ)-approximate tuple confidence. The
    /// argument spans let lowering anchor range errors at the offending
    /// literal.
    ConfApprox {
        /// Absolute error bound ε.
        eps: f64,
        /// Failure probability δ.
        delta: f64,
        /// Span of the ε argument.
        eps_span: Span,
        /// Span of the δ argument.
        delta_span: Span,
    },
}

/// One `SELECT` block.
#[derive(Clone, Debug, PartialEq)]
pub struct SelectQuery {
    /// Optional uncertainty quantifier (with the keyword's span).
    pub quantifier: Option<(Quantifier, Span)>,
    /// The select list.
    pub items: SelectList,
    /// Comma-separated from-items, natural-joined left to right.
    pub from: Vec<FromItem>,
    /// The `WHERE` predicate, if any.
    pub filter: Option<Expr>,
    /// Span of the whole block.
    pub span: Span,
}

/// The select list: `*` or explicit columns.
#[derive(Clone, Debug, PartialEq)]
pub enum SelectList {
    /// `*` — keep all columns of the joined from-items.
    Star(Span),
    /// Explicit columns, optionally renamed via `AS`.
    Items(Vec<SelectItem>),
}

/// One item of an explicit select list: `column [AS alias]`.
#[derive(Clone, Debug, PartialEq)]
pub struct SelectItem {
    /// The source column.
    pub column: Ident,
    /// The output name, when renamed.
    pub alias: Option<Ident>,
}

impl SelectItem {
    /// Span of the item (column plus alias).
    pub fn span(&self) -> Span {
        match &self.alias {
            Some(a) => self.column.span.join(a.span),
            None => self.column.span,
        }
    }
}

/// One entry of the `FROM` list.
#[derive(Clone, Debug, PartialEq)]
pub enum FromItem {
    /// A named base relation.
    Relation(Ident),
    /// A parenthesized subquery.
    Subquery {
        /// The inner query.
        query: Box<Query>,
        /// Span including the parentheses.
        span: Span,
    },
    /// An inline `REPAIR KEY` expression.
    Repair(Repair),
}

impl FromItem {
    /// The source span covered by the item.
    pub fn span(&self) -> Span {
        match self {
            FromItem::Relation(id) => id.span,
            FromItem::Subquery { span, .. } => *span,
            FromItem::Repair(r) => r.span,
        }
    }
}

/// `REPAIR KEY k₁, …, kₙ IN input [WEIGHT BY w]`.
#[derive(Clone, Debug, PartialEq)]
pub struct Repair {
    /// The key columns.
    pub key: Vec<Ident>,
    /// The relation being repaired.
    pub input: Box<FromItem>,
    /// Optional numeric weight column.
    pub weight: Option<Ident>,
    /// Span of the whole expression.
    pub span: Span,
}

/// A boolean predicate expression (the `WHERE` clause).
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// `lhs op rhs`.
    Compare {
        /// Comparison operator.
        op: CmpOp,
        /// Left operand.
        lhs: Scalar,
        /// Right operand.
        rhs: Scalar,
        /// Span of the whole comparison.
        span: Span,
    },
    /// Conjunction (two or more conjuncts).
    And(Vec<Expr>),
    /// Disjunction (two or more disjuncts).
    Or(Vec<Expr>),
    /// Negation.
    Not(Box<Expr>),
    /// A bare `TRUE` / `FALSE`.
    Bool {
        /// The literal truth value.
        value: bool,
        /// Where it was written.
        span: Span,
    },
}

impl Expr {
    /// The source span covered by the expression.
    pub fn span(&self) -> Span {
        match self {
            Expr::Compare { span, .. } | Expr::Bool { span, .. } => *span,
            Expr::And(es) | Expr::Or(es) => es
                .first()
                .map(|f| {
                    es.iter()
                        .skip(1)
                        .fold(f.span(), |acc, e| acc.join(e.span()))
                })
                .unwrap_or(Span::new(0, 0)),
            Expr::Not(e) => e.span(),
        }
    }
}

/// One side of a comparison.
#[derive(Clone, Debug, PartialEq)]
pub enum Scalar {
    /// A column reference.
    Column(Ident),
    /// A constant.
    Literal {
        /// The constant value.
        value: Value,
        /// Where it was written.
        span: Span,
    },
}

impl Scalar {
    /// The source span covered by the operand.
    pub fn span(&self) -> Span {
        match self {
            Scalar::Column(id) => id.span,
            Scalar::Literal { span, .. } => *span,
        }
    }
}

/// A top-level statement: a query, or a `LET name = query` materialization
/// (evaluate the query once and register the result as a new relation —
/// the textual analogue of `WorldSet::insert`, and the way repaired
/// relations are shared across later queries without re-minting components).
#[derive(Clone, Debug, PartialEq)]
pub enum Statement {
    /// Evaluate and show a query.
    Query(Query),
    /// Materialize a query's result under a new relation name.
    Let {
        /// The relation name to bind.
        name: Ident,
        /// The query to evaluate.
        query: Query,
        /// Span of the whole statement, from the `LET` keyword on.
        span: Span,
    },
    /// `EXPLAIN query` — show the lowered and the optimized plan instead of
    /// evaluating. With `ANALYZE`, the query *is* executed (with tracing
    /// on) and the optimized plan is annotated with per-node observations.
    Explain {
        /// The query to explain.
        query: Query,
        /// Whether `ANALYZE` followed `EXPLAIN`: execute and annotate.
        analyze: bool,
        /// Span of the whole statement, from the `EXPLAIN` keyword on.
        span: Span,
    },
}

impl Statement {
    /// The source span covered by the statement, so scripts can echo the
    /// original text.
    pub fn span(&self) -> Span {
        match self {
            Statement::Query(q) => q.span(),
            Statement::Let { span, .. } | Statement::Explain { span, .. } => *span,
        }
    }
}
