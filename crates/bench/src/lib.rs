//! # maybms-bench — perf-trajectory baseline
//!
//! Std-only benchmark data generators. The build environment has no registry
//! access, so instead of `criterion` the bench target (`benches/wsd.rs`,
//! `harness = false`) times operations with `std::time::Instant` and emits
//! one JSON object per line, giving future PRs a machine-readable perf
//! baseline. Run with `cargo bench` (set `MAYBMS_BENCH_QUICK=1` for a smoke
//! run).

use maybms_core::rng::Rng;
use maybms_core::{
    Component, ComponentId, Schema, Tuple, URelation, Value, ValueType, WorldSet, WsDescriptor,
};

/// Build a world set with one relation `r` of `n` rows engineered to
/// exercise normalization: duplicate rows, absorbable descriptor pairs, and
/// full-coverage groups that merge.
pub fn normalization_workload(rng: &mut Rng, n: usize) -> WorldSet {
    let mut ws = WorldSet::new();
    let n_comps = (n / 10).max(1);
    let mut comp_ids = Vec::with_capacity(n_comps);
    for _ in 0..n_comps {
        comp_ids.push(ws.components.add(Component::uniform(2).expect("2 > 0")));
    }
    let schema = Schema::of(&[("a", ValueType::Int), ("b", ValueType::Int)]).expect("distinct");
    let mut rel = URelation::new(schema);
    for i in 0..n {
        let t = Tuple::new(vec![Value::Int((i / 4) as i64), Value::Int((i % 7) as i64)]);
        let c = comp_ids[rng.below(comp_ids.len())];
        match i % 4 {
            // A full-coverage pair: (t, c=0) and (t, c=1) merge to (t, ⊤).
            0 => {
                rel.push(t.clone(), WsDescriptor::single(c, 0))
                    .expect("schema ok");
                rel.push(t, WsDescriptor::single(c, 1)).expect("schema ok");
            }
            // An absorbable pair: ⊤ absorbs c=0.
            1 => {
                rel.push(t.clone(), WsDescriptor::tautology())
                    .expect("schema ok");
                rel.push(t, WsDescriptor::single(c, 0)).expect("schema ok");
            }
            // Exact duplicates.
            2 => {
                let d = WsDescriptor::single(c, 0);
                rel.push(t.clone(), d.clone()).expect("schema ok");
                rel.push(t, d).expect("schema ok");
            }
            // Plain uncertain rows.
            _ => {
                rel.push(t, WsDescriptor::single(c, rng.below(2) as u16))
                    .expect("schema ok");
            }
        }
    }
    ws.insert("r", rel)
        .expect("descriptors reference fresh components");
    ws
}

/// Build a world set exercising exact `conf` with *disjoint* descriptor
/// groups: one relation `r(id)` of `tuples` rows, where every tuple carries
/// a DNF of 1–6-term descriptors drawn from `groups_per_tuple` mutually
/// disjoint groups of `comps_per_group` fresh components (each with
/// `alternatives` alternatives).
///
/// Within a group the descriptors are overlapping sliding windows over the
/// group's components, so each group is one *connected* block of
/// `comps_per_group` variables. Across groups no component is shared. A
/// factorized `conf` therefore pays per-group cost only (inclusion–exclusion
/// over a handful of descriptors, or at worst `alternatives^comps_per_group`
/// enumeration), while an unfactorized evaluator would enumerate
/// `alternatives^(groups_per_tuple · comps_per_group)` assignments per tuple
/// — with the default bench shape (2 groups × 10 components × 4
/// alternatives) that is `4^20` versus two `4^10`-bounded solves.
pub fn conf_disjoint_workload(
    rng: &mut Rng,
    tuples: usize,
    groups_per_tuple: usize,
    comps_per_group: usize,
    alternatives: usize,
) -> WorldSet {
    let mut ws = WorldSet::new();
    let schema = Schema::of(&[("id", ValueType::Int)]).expect("single column");
    let mut rel = URelation::new(schema);
    for i in 0..tuples {
        let t = Tuple::new(vec![Value::Int(i as i64)]);
        for _ in 0..groups_per_tuple {
            let comps: Vec<ComponentId> = (0..comps_per_group)
                .map(|_| {
                    ws.components
                        .add(Component::uniform(alternatives).expect("alternatives > 0"))
                })
                .collect();
            // Overlapping windows: each shares its first component with the
            // previous window, keeping the group connected and every
            // descriptor within the 1–6-term band.
            let width = rng.range(2.min(comps_per_group), 3.min(comps_per_group));
            let mut start = 0;
            loop {
                let end = (start + width).min(comps_per_group);
                let terms: Vec<(ComponentId, u16)> = comps[start..end]
                    .iter()
                    .map(|&c| (c, rng.below(alternatives) as u16))
                    .collect();
                rel.push(
                    t.clone(),
                    WsDescriptor::from_terms(terms).expect("distinct components"),
                )
                .expect("schema ok");
                if end == comps_per_group {
                    break;
                }
                start = end - 1;
            }
        }
    }
    ws.insert("r", rel)
        .expect("descriptors reference fresh components");
    ws
}

/// Build a world set exercising exact `conf` on one *connected* descriptor
/// group per tuple: a chain of `chain_len + 1` components per tuple, with a
/// 2-term descriptor per adjacent pair (`{cᵢ, cᵢ₊₁}`). Every descriptor
/// shares a variable with the next, so the whole chain is a single
/// connected group — the adversarial case where factorization cannot split
/// anything and per-group exact solving (inclusion–exclusion vs.
/// enumeration) carries the load alone.
pub fn conf_chain_workload(
    rng: &mut Rng,
    tuples: usize,
    chain_len: usize,
    alternatives: usize,
) -> WorldSet {
    let mut ws = WorldSet::new();
    let schema = Schema::of(&[("id", ValueType::Int)]).expect("single column");
    let mut rel = URelation::new(schema);
    for i in 0..tuples {
        let t = Tuple::new(vec![Value::Int(i as i64)]);
        let comps: Vec<ComponentId> = (0..chain_len + 1)
            .map(|_| {
                ws.components
                    .add(Component::uniform(alternatives).expect("alternatives > 0"))
            })
            .collect();
        for pair in comps.windows(2) {
            let terms = vec![
                (pair[0], rng.below(alternatives) as u16),
                (pair[1], rng.below(alternatives) as u16),
            ];
            rel.push(
                t.clone(),
                WsDescriptor::from_terms(terms).expect("distinct components"),
            )
            .expect("schema ok");
        }
    }
    ws.insert("r", rel)
        .expect("descriptors reference fresh components");
    ws
}

/// Build a world set exercising the *sampling* path of `conf(eps, delta)`:
/// one dense connected descriptor group per tuple, too expensive for the
/// exact solver at any sane cutover.
///
/// Each tuple gets `comps_per_tuple` fresh components (`alternatives`
/// alternatives each) and `descs_per_tuple` three-term descriptors. The
/// first two terms of descriptor `i` cover the adjacent component pair
/// `(i mod (comps−1), i mod (comps−1) + 1)` — walking every pair once
/// `descs ≥ comps − 1`, which welds the whole tuple into a single
/// connected group — and the third term lands on a random other
/// component, thickening the group beyond a plain chain. The exact cost
/// bound is therefore `min(2^descs, alternatives^comps)`: with the bench
/// shape (26 binary components, 30 descriptors) that is `2²⁶ ≈ 6.7·10⁷`
/// operations *per tuple*, so exact `conf` is infeasible while the
/// sampler pays a few hundred draws.
pub fn conf_dense_workload(
    rng: &mut Rng,
    tuples: usize,
    comps_per_tuple: usize,
    descs_per_tuple: usize,
    alternatives: usize,
) -> WorldSet {
    assert!(comps_per_tuple >= 3, "need room for three distinct terms");
    let mut ws = WorldSet::new();
    let schema = Schema::of(&[("id", ValueType::Int)]).expect("single column");
    let mut rel = URelation::new(schema);
    for i in 0..tuples {
        let t = Tuple::new(vec![Value::Int(i as i64)]);
        let comps: Vec<ComponentId> = (0..comps_per_tuple)
            .map(|_| {
                ws.components
                    .add(Component::uniform(alternatives).expect("alternatives > 0"))
            })
            .collect();
        for d in 0..descs_per_tuple {
            let a = d % (comps_per_tuple - 1);
            let third = loop {
                let j = rng.below(comps_per_tuple);
                if j != a && j != a + 1 {
                    break j;
                }
            };
            let terms: Vec<(ComponentId, u16)> = [a, a + 1, third]
                .iter()
                .map(|&j| (comps[j], rng.below(alternatives) as u16))
                .collect();
            rel.push(
                t.clone(),
                WsDescriptor::from_terms(terms).expect("distinct components"),
            )
            .expect("schema ok");
        }
    }
    ws.insert("r", rel)
        .expect("descriptors reference fresh components");
    ws
}

/// Build a certain relation `r(k, v, w)` of `n` rows whose key column `k`
/// collides in groups of ~4, with a positive integer weight column `w` —
/// the `repair-key ... weight by w` workload (grouping, per-group component
/// minting, weighted alternatives).
pub fn repair_workload(rng: &mut Rng, n: usize) -> WorldSet {
    let mut ws = WorldSet::new();
    let schema = Schema::of(&[
        ("k", ValueType::Int),
        ("v", ValueType::Int),
        ("w", ValueType::Int),
    ])
    .expect("distinct columns");
    let mut rel = URelation::new(schema);
    let key_domain = (n / 4).max(1);
    for i in 0..n {
        rel.push(
            Tuple::new(vec![
                Value::Int(rng.below(key_domain) as i64),
                Value::Int(i as i64),
                Value::Int(rng.range(1, 5) as i64),
            ]),
            WsDescriptor::tautology(),
        )
        .expect("schema ok");
    }
    ws.insert("r", rel).expect("certain relation is valid");
    ws
}

/// Build a world set exercising the columnar executor's string dictionary
/// and selection sweep: three chained relations `r1(a, b)`, `r2(b, c)`,
/// `r3(c, d)` of `n` uncertain rows each, where the `b` and `d` columns are
/// *strings* (drawn from a domain of `n` distinct values, so one join hop
/// matches on dictionary codes) and `a`/`c` are ints. The intended plan
/// filters `r1` on `a` before joining, so the workload covers: predicate
/// sweep → selection vector, string-keyed hash join, int-keyed hash join,
/// and selection-vector dedup — the paths `join3` (all-int, no filter)
/// leaves cold.
pub fn join_columnar_workload(rng: &mut Rng, n: usize) -> WorldSet {
    let mut ws = WorldSet::new();
    let n_comps = (n / 10).max(1);
    let mut comp_ids = Vec::with_capacity(n_comps);
    for _ in 0..n_comps {
        comp_ids.push(ws.components.add(Component::uniform(2).expect("2 > 0")));
    }
    let specs: [(&str, [(&str, ValueType); 2]); 3] = [
        ("r1", [("a", ValueType::Int), ("b", ValueType::Str)]),
        ("r2", [("b", ValueType::Str), ("c", ValueType::Int)]),
        ("r3", [("c", ValueType::Int), ("d", ValueType::Str)]),
    ];
    for (name, cols) in specs {
        let schema = Schema::of(&cols).expect("distinct");
        let mut rel = URelation::new(schema);
        for _ in 0..n {
            let mk = |rng: &mut Rng, ty: ValueType| match ty {
                ValueType::Int => Value::Int(rng.below(n) as i64),
                _ => Value::str(format!("k{}", rng.below(n))),
            };
            let t = Tuple::new(vec![mk(rng, cols[0].1), mk(rng, cols[1].1)]);
            let c = comp_ids[rng.below(comp_ids.len())];
            rel.push(t, WsDescriptor::single(c, rng.below(2) as u16))
                .expect("schema ok");
        }
        ws.insert(name, rel)
            .expect("descriptors reference fresh components");
    }
    ws
}

/// Build a world set whose *textual* join order is pathological: three
/// chained relations `r1(a, b)`, `r2(b, c)`, `r3(c, d)` where the `b`
/// domain is small (2000 keys, zipf-skewed in `r1`) and the `c` domain is
/// huge (`10n` keys, with `r3` only `n/10` rows). Joining in text order
/// `(r1 ⋈ r2) ⋈ r3` materializes the ~`n²/2000`-row `b` hop first; the
/// cost-based order `(r2 ⋈ r3) ⋈ r1` starts from the selective `c` hop
/// (~`n/100` rows) and never builds the blowup. Catalog statistics see
/// exactly this asymmetry through the per-column distinct counts.
pub fn join3_skewed_workload(rng: &mut Rng, n: usize) -> WorldSet {
    const B_KEYS: usize = 2000;
    let mut ws = WorldSet::new();
    let n_comps = (n / 10).max(1);
    let mut comp_ids = Vec::with_capacity(n_comps);
    for _ in 0..n_comps {
        comp_ids.push(ws.components.add(Component::uniform(2).expect("2 > 0")));
    }
    let c_domain = 10 * n;
    // Log-uniform ranks approximate a zipf(1) key distribution: most of
    // `r1` lands on a handful of hot `b` keys, but all 2000 stay possible.
    fn zipf(rng: &mut Rng) -> usize {
        ((B_KEYS as f64).powf(rng.unit_f64()) as usize).min(B_KEYS - 1)
    }
    fn push_rows(
        ws: &mut WorldSet,
        rng: &mut Rng,
        comp_ids: &[ComponentId],
        name: &str,
        cols: [&str; 2],
        rows: usize,
        mk: &mut dyn FnMut(&mut Rng) -> (i64, i64),
    ) {
        let schema = Schema::of(
            &cols
                .iter()
                .map(|c| (*c, ValueType::Int))
                .collect::<Vec<_>>(),
        )
        .expect("distinct");
        let mut rel = URelation::new(schema);
        for _ in 0..rows {
            let (x, y) = mk(rng);
            let t = Tuple::new(vec![Value::Int(x), Value::Int(y)]);
            let c = comp_ids[rng.below(comp_ids.len())];
            rel.push(t, WsDescriptor::single(c, rng.below(2) as u16))
                .expect("schema ok");
        }
        ws.insert(name, rel)
            .expect("descriptors reference fresh components");
    }
    push_rows(&mut ws, rng, &comp_ids, "r1", ["a", "b"], n, &mut |rng| {
        (rng.below(n) as i64, zipf(rng) as i64)
    });
    push_rows(&mut ws, rng, &comp_ids, "r2", ["b", "c"], n, &mut |rng| {
        (rng.below(B_KEYS) as i64, rng.below(c_domain) as i64)
    });
    push_rows(
        &mut ws,
        rng,
        &comp_ids,
        "r3",
        ["c", "d"],
        (n / 10).max(1),
        &mut |rng| (rng.below(c_domain) as i64, rng.below(n) as i64),
    );
    ws
}

/// Build the sideways-information-passing showcase: a certain 5-way chain
/// `r1(a,b) ⋈ r2(b,c) ⋈ r3(c,d) ⋈ r4(d,e) ⋈ r5(e,f)` where `r1`–`r4`
/// cover the full `0..n` key space one row per key, and the tail `r5`
/// keeps only one key in a hundred (`n/100` rows at `key = i·100`).
///
/// Without SIP every intermediate join materializes all `n` rows before
/// the tail discards 99% of them; with SIP the Bloom filter built from
/// `r5` prunes `r4`'s scan to ~`n/100` rows, the pruned `r4` seeds the
/// next filter into `r3`, and so on down the chain — the cascading case
/// the `join5_selective` bench asserts a win on. Deterministic (no rng):
/// the key pattern *is* the workload.
pub fn join5_selective_workload(n: usize) -> WorldSet {
    let mut ws = WorldSet::new();
    let cols = [("a", "b"), ("b", "c"), ("c", "d"), ("d", "e"), ("e", "f")];
    for (i, &(k1, k2)) in cols.iter().enumerate() {
        let schema =
            Schema::of(&[(k1, ValueType::Int), (k2, ValueType::Int)]).expect("distinct columns");
        let mut rel = URelation::new(schema);
        let rows = if i == 4 { (n / 100).max(1) } else { n };
        for r in 0..rows {
            let key = if i == 4 { r * 100 } else { r };
            rel.push(
                Tuple::new(vec![Value::Int(key as i64), Value::Int(key as i64)]),
                WsDescriptor::tautology(),
            )
            .expect("schema ok");
        }
        ws.insert(format!("r{}", i + 1), rel)
            .expect("certain relation is valid");
    }
    ws
}

/// Build a world set with three chained relations `r1(a,b)`, `r2(b,c)`,
/// `r3(c,d)` of `n` uncertain rows each, with join keys drawn from a domain
/// of size `n` so a 3-way natural join stays roughly linear in output size.
pub fn join_workload(rng: &mut Rng, n: usize) -> WorldSet {
    let mut ws = WorldSet::new();
    let n_comps = (n / 10).max(1);
    let mut comp_ids = Vec::with_capacity(n_comps);
    for _ in 0..n_comps {
        comp_ids.push(ws.components.add(Component::uniform(2).expect("2 > 0")));
    }
    let specs = [("r1", ["a", "b"]), ("r2", ["b", "c"]), ("r3", ["c", "d"])];
    for (name, cols) in specs {
        let schema = Schema::of(
            &cols
                .iter()
                .map(|c| (*c, ValueType::Int))
                .collect::<Vec<_>>(),
        )
        .expect("distinct");
        let mut rel = URelation::new(schema);
        for _ in 0..n {
            let t = Tuple::new(vec![
                Value::Int(rng.below(n) as i64),
                Value::Int(rng.below(n) as i64),
            ]);
            let c = comp_ids[rng.below(comp_ids.len())];
            rel.push(t, WsDescriptor::single(c, rng.below(2) as u16))
                .expect("schema ok");
        }
        ws.insert(name, rel)
            .expect("descriptors reference fresh components");
    }
    ws
}
