//! # maybms-bench — perf-trajectory baseline
//!
//! Std-only benchmark data generators. The build environment has no registry
//! access, so instead of `criterion` the bench target (`benches/wsd.rs`,
//! `harness = false`) times operations with `std::time::Instant` and emits
//! one JSON object per line, giving future PRs a machine-readable perf
//! baseline. Run with `cargo bench` (set `MAYBMS_BENCH_QUICK=1` for a smoke
//! run).

use maybms_core::rng::Rng;
use maybms_core::{Component, Schema, Tuple, URelation, Value, ValueType, WorldSet, WsDescriptor};

/// Build a world set with one relation `r` of `n` rows engineered to
/// exercise normalization: duplicate rows, absorbable descriptor pairs, and
/// full-coverage groups that merge.
pub fn normalization_workload(rng: &mut Rng, n: usize) -> WorldSet {
    let mut ws = WorldSet::new();
    let n_comps = (n / 10).max(1);
    let mut comp_ids = Vec::with_capacity(n_comps);
    for _ in 0..n_comps {
        comp_ids.push(ws.components.add(Component::uniform(2).expect("2 > 0")));
    }
    let schema = Schema::of(&[("a", ValueType::Int), ("b", ValueType::Int)]).expect("distinct");
    let mut rel = URelation::new(schema);
    for i in 0..n {
        let t = Tuple::new(vec![Value::Int((i / 4) as i64), Value::Int((i % 7) as i64)]);
        let c = comp_ids[rng.below(comp_ids.len())];
        match i % 4 {
            // A full-coverage pair: (t, c=0) and (t, c=1) merge to (t, ⊤).
            0 => {
                rel.push(t.clone(), WsDescriptor::single(c, 0))
                    .expect("schema ok");
                rel.push(t, WsDescriptor::single(c, 1)).expect("schema ok");
            }
            // An absorbable pair: ⊤ absorbs c=0.
            1 => {
                rel.push(t.clone(), WsDescriptor::tautology())
                    .expect("schema ok");
                rel.push(t, WsDescriptor::single(c, 0)).expect("schema ok");
            }
            // Exact duplicates.
            2 => {
                let d = WsDescriptor::single(c, 0);
                rel.push(t.clone(), d.clone()).expect("schema ok");
                rel.push(t, d).expect("schema ok");
            }
            // Plain uncertain rows.
            _ => {
                rel.push(t, WsDescriptor::single(c, rng.below(2) as u16))
                    .expect("schema ok");
            }
        }
    }
    ws.insert("r", rel)
        .expect("descriptors reference fresh components");
    ws
}

/// Build a world set with three chained relations `r1(a,b)`, `r2(b,c)`,
/// `r3(c,d)` of `n` uncertain rows each, with join keys drawn from a domain
/// of size `n` so a 3-way natural join stays roughly linear in output size.
pub fn join_workload(rng: &mut Rng, n: usize) -> WorldSet {
    let mut ws = WorldSet::new();
    let n_comps = (n / 10).max(1);
    let mut comp_ids = Vec::with_capacity(n_comps);
    for _ in 0..n_comps {
        comp_ids.push(ws.components.add(Component::uniform(2).expect("2 > 0")));
    }
    let specs = [("r1", ["a", "b"]), ("r2", ["b", "c"]), ("r3", ["c", "d"])];
    for (name, cols) in specs {
        let schema = Schema::of(
            &cols
                .iter()
                .map(|c| (*c, ValueType::Int))
                .collect::<Vec<_>>(),
        )
        .expect("distinct");
        let mut rel = URelation::new(schema);
        for _ in 0..n {
            let t = Tuple::new(vec![
                Value::Int(rng.below(n) as i64),
                Value::Int(rng.below(n) as i64),
            ]);
            let c = comp_ids[rng.below(comp_ids.len())];
            rel.push(t, WsDescriptor::single(c, rng.below(2) as u16))
                .expect("schema ok");
        }
        ws.insert(name, rel)
            .expect("descriptors reference fresh components");
    }
    ws
}
