//! Bench-regression gate: compare a fresh bench run against the committed
//! baseline and fail when any workload regressed beyond the tolerance.
//!
//! ```text
//! bench_check <baseline.json> <current.json>
//! ```
//!
//! Both files hold one JSON object per line as emitted by `benches/wsd.rs`
//! (`{"bench":..., "n":..., "rows_out":..., "millis":...}`). The baseline
//! may carry several rows per `(bench, n)` key — e.g. a historical
//! `"phase":"pre-intern"` row followed by the current one — and the *last*
//! row per key wins. Workloads present on only one side are reported but
//! never fail the gate (new benches need a first baseline).
//!
//! Environment:
//! * `MAYBMS_BENCH_TOLERANCE` — allowed regression in percent (default 25).
//! * `MAYBMS_BENCH_MIN_DELTA_MS` — absolute slack in milliseconds (default
//!   2.0): sub-tolerance *and* sub-slack differences never fail, so
//!   micro-benchmarks in the quick CI mode don't flap on scheduler noise.
//!
//! Current rows additionally carry `"rows_per_sec"`, the derived throughput
//! the bench emits for downstream dashboards; the gate cross-validates it
//! against `rows_out`/`millis` (within 1%) and fails when the current run
//! omits it or lets it drift — derived fields must never silently
//! contradict their inputs. Baseline rows predating the field are accepted.
//!
//! A baseline row may additionally carry `"tol":<percent>`, a per-workload
//! override of the global tolerance. The parallel-phase rows use it: their
//! timings are entirely a function of the host's core count (a `_t4` row
//! measured on a single-core box runs oversubscribed), so they need wider
//! slack than the single-threaded micro-benchmarks.
//!
//! The JSON subset involved is flat and fully under our control, so the
//! parser below is a few string splits rather than a dependency (the build
//! environment has no registry access).

use std::collections::BTreeMap;
use std::process::ExitCode;

/// One bench row keyed by `(bench, n)`: `(rows_out, millis, tol)`, where
/// `tol` is the optional per-row tolerance-percent override (baseline only).
type Rows = BTreeMap<(String, u64), (u64, f64, Option<f64>)>;

/// Extract the value of `"key":` in a flat JSON object line, as a raw token.
fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest
        .find([',', '}'])
        .expect("flat JSON object lines end every field with , or }");
    Some(rest[..end].trim().trim_matches('"'))
}

/// Validate the derived `"rows_per_sec"` on one row: it must be present
/// and reproduce `rows_out / millis · 10³` (both fields as printed) to
/// within 1% — the bench derives it from the same two numbers, so any
/// larger drift means the emitter and its inputs disagree.
fn check_rows_per_sec(path: &str, line: &str, rows_out: u64, millis: f64) -> Result<(), String> {
    let rps: f64 = field(line, "rows_per_sec")
        .ok_or_else(|| format!("{path}: line missing \"rows_per_sec\": {line}"))?
        .parse()
        .map_err(|e| format!("{path}: bad \"rows_per_sec\" in {line}: {e}"))?;
    let expect = if millis > 0.0 {
        rows_out as f64 / millis * 1e3
    } else {
        0.0
    };
    if (rps - expect).abs() <= expect.abs() * 0.01 + 0.1 {
        Ok(())
    } else {
        Err(format!(
            "{path}: \"rows_per_sec\" {rps} contradicts rows_out/millis \
             (expected {expect:.1}): {line}"
        ))
    }
}

/// Parse a bench JSONL file; later rows overwrite earlier rows per key.
/// With `require_rps`, every row must carry a consistent `"rows_per_sec"`
/// (the current run; baseline rows may predate the field).
fn parse(path: &str, require_rps: bool) -> Result<Rows, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut out = Rows::new();
    for line in text.lines() {
        let line = line.trim();
        if !line.starts_with('{') {
            continue;
        }
        let bench = match field(line, "bench") {
            Some(b) => b.to_string(),
            None => continue,
        };
        let parse_num = |k: &str| -> Result<f64, String> {
            field(line, k)
                .ok_or_else(|| format!("{path}: line missing \"{k}\": {line}"))?
                .parse::<f64>()
                .map_err(|e| format!("{path}: bad \"{k}\" in {line}: {e}"))
        };
        let n = parse_num("n")? as u64;
        let rows_out = parse_num("rows_out")? as u64;
        let millis = parse_num("millis")?;
        if require_rps {
            check_rows_per_sec(path, line, rows_out, millis)?;
        }
        let tol = field(line, "tol").and_then(|t| t.parse::<f64>().ok());
        out.insert((bench, n), (rows_out, millis, tol));
    }
    Ok(out)
}

fn env_f64(key: &str, default: f64) -> f64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    if args.len() != 3 {
        eprintln!("usage: bench_check <baseline.json> <current.json>");
        return ExitCode::from(2);
    }
    let (baseline, current) = match (parse(&args[1], false), parse(&args[2], true)) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("bench_check: {e}");
            return ExitCode::from(2);
        }
    };

    let tolerance = env_f64("MAYBMS_BENCH_TOLERANCE", 25.0) / 100.0;
    let min_delta_ms = env_f64("MAYBMS_BENCH_MIN_DELTA_MS", 2.0);
    let mut failed = false;

    println!(
        "{:<16} {:>9} {:>12} {:>12} {:>9}  verdict",
        "bench", "n", "base ms", "now ms", "delta"
    );
    for ((bench, n), &(rows_now, now_ms, _)) in &current {
        let key = (bench.clone(), *n);
        let Some(&(rows_base, base_ms, tol_override)) = baseline.get(&key) else {
            println!(
                "{bench:<16} {n:>9} {:>12} {now_ms:>12.3} {:>9}  new (no baseline)",
                "-", "-"
            );
            continue;
        };
        if rows_base != rows_now {
            // Output cardinality is part of the contract: a row-count drift
            // means the workload changed, not just its speed.
            println!(
                "{bench:<16} {n:>9} rows_out changed: baseline {rows_base} vs current {rows_now}  FAIL"
            );
            failed = true;
            continue;
        }
        let delta = now_ms - base_ms;
        let tol = tol_override.map_or(tolerance, |t| t / 100.0);
        let regressed = delta > base_ms * tol && delta > min_delta_ms;
        let pct = if base_ms > 0.0 {
            delta / base_ms * 100.0
        } else {
            0.0
        };
        println!(
            "{bench:<16} {n:>9} {base_ms:>12.3} {now_ms:>12.3} {pct:>8.1}%  {}",
            if regressed { "FAIL" } else { "ok" }
        );
        failed |= regressed;
    }
    for key in baseline.keys() {
        if !current.contains_key(key) {
            println!(
                "{:<16} {:>9} present in baseline only (skipped)",
                key.0, key.1
            );
        }
    }

    if failed {
        eprintln!(
            "bench_check: regression beyond {:.0}% (+{min_delta_ms}ms slack; \
             per-row \"tol\" overrides apply) detected",
            tolerance * 100.0
        );
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_extracts_tokens() {
        let line = r#"{"bench":"join3","n":1000,"rows_out":1051,"millis":1.186}"#;
        assert_eq!(field(line, "bench"), Some("join3"));
        assert_eq!(field(line, "n"), Some("1000"));
        assert_eq!(field(line, "millis"), Some("1.186"));
        assert_eq!(field(line, "absent"), None);
    }

    #[test]
    fn rows_per_sec_must_be_present_and_consistent() {
        let good =
            r#"{"bench":"join3","n":1000,"rows_out":1051,"millis":1.186,"rows_per_sec":886172.0}"#;
        assert!(check_rows_per_sec("t", good, 1051, 1.186).is_ok());
        let missing = r#"{"bench":"join3","n":1000,"rows_out":1051,"millis":1.186}"#;
        assert!(check_rows_per_sec("t", missing, 1051, 1.186)
            .unwrap_err()
            .contains("missing \"rows_per_sec\""));
        let drifted =
            r#"{"bench":"join3","n":1000,"rows_out":1051,"millis":1.186,"rows_per_sec":12345.0}"#;
        assert!(check_rows_per_sec("t", drifted, 1051, 1.186)
            .unwrap_err()
            .contains("contradicts"));
        // Instantaneous rows print 0.000 ms with a zero throughput.
        let instant = r#"{"bench":"x","n":1,"rows_out":5,"millis":0.000,"rows_per_sec":0.0}"#;
        assert!(check_rows_per_sec("t", instant, 5, 0.0).is_ok());
    }

    #[test]
    fn tol_override_is_optional() {
        let with = r#"{"bench":"join3_t4","n":1000000,"rows_out":5,"millis":9.0,"tol":75}"#;
        let without = r#"{"bench":"join3","n":1000,"rows_out":5,"millis":9.0}"#;
        assert_eq!(
            field(with, "tol").and_then(|t| t.parse::<f64>().ok()),
            Some(75.0)
        );
        assert_eq!(field(without, "tol"), None);
    }
}
