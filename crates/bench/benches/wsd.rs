//! Timings for WSD normalization, a 3-way natural join, `repair-key`,
//! exact and (ε, δ)-approximate `conf`, the end-to-end MayQL pipeline
//! (parse + analyze/lower + execute), and the logical optimizer (`join3_filtered` and
//! `possible_pushdown`, each timed raw and optimized), printed as one JSON
//! object per line (see crate docs for why this is not criterion).
//!
//! Each workload is timed as the minimum of [`RUNS`] repetitions on a fresh
//! clone of the generated world set, which keeps single-core timing noise
//! out of the committed baseline. `MAYBMS_BENCH_QUICK=1` selects the small
//! sizes only (the CI regression gate runs in that mode; see
//! `src/bin/bench_check.rs`). `MAYBMS_BENCH_TRACE=<dir>` additionally
//! re-executes each plan-driven workload once with span tracing on and
//! dumps a Chrome trace-event JSON per workload into `<dir>` — the timed
//! runs themselves always execute with tracing disabled.

use std::time::Instant;

use maybms_algebra::{
    col, lit, optimize, optimize_with_stats, run, run_traced, run_with_exec, run_with_opts,
    ExecCfg, Plan, Predicate,
};
use maybms_bench::{
    conf_chain_workload, conf_dense_workload, conf_disjoint_workload, join3_skewed_workload,
    join5_selective_workload, join_columnar_workload, join_workload, normalization_workload,
    repair_workload,
};
use maybms_core::rng::Rng;
use maybms_core::{world_set_stats, ParCfg, WorldSet};
use maybms_ql::{conf, conf_approx, possible, repair_key};
use maybms_sql::{compile, Catalog};

/// Repetitions per workload; the minimum is reported.
const RUNS: usize = 3;

fn emit(bench: &str, n: usize, rows_out: usize, millis: f64) {
    // Throughput is derived, but emitting it keeps the JSONL self-contained
    // for downstream dashboards; `bench_check` cross-validates it against
    // `rows_out`/`millis` so the two can never drift apart silently. It is
    // computed from `millis` *as printed* (3 decimals) so the recomputation
    // on the consumer side reproduces it exactly.
    let printed = (millis * 1e3).round() / 1e3;
    let rows_per_sec = if printed > 0.0 {
        rows_out as f64 / printed * 1e3
    } else {
        0.0
    };
    println!(
        "{{\"bench\":\"{bench}\",\"n\":{n},\"rows_out\":{rows_out},\"millis\":{millis:.3},\
         \"rows_per_sec\":{rows_per_sec:.1}}}"
    );
}

/// Time `f` on a fresh clone of `ws` per run; report the fastest run.
fn bench_min(ws: &WorldSet, f: impl FnMut(&mut WorldSet) -> usize) -> (usize, f64) {
    bench_min_runs(ws, RUNS, f)
}

/// [`bench_min`] with an explicit repetition count — the deterministic
/// ~minute-scale approximate-`conf` rows at 10⁶ time a single run.
fn bench_min_runs(
    ws: &WorldSet,
    runs: usize,
    mut f: impl FnMut(&mut WorldSet) -> usize,
) -> (usize, f64) {
    let mut best = f64::INFINITY;
    let mut rows = 0;
    for _ in 0..runs {
        let mut ws = ws.clone();
        let start = Instant::now();
        rows = f(&mut ws);
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    (rows, best)
}

/// With `MAYBMS_BENCH_TRACE=<dir>` set, execute `plan` once more on a
/// fresh clone with tracing enabled and write the span tree as Chrome
/// trace-event JSON to `<dir>/<bench>_<n>.json` (loadable in
/// `chrome://tracing` or Perfetto). A separate untimed run, so tracing
/// never contaminates the reported numbers.
fn dump_trace(ws: &WorldSet, plan: &Plan, bench: &str, n: usize) {
    let Ok(dir) = std::env::var("MAYBMS_BENCH_TRACE") else {
        return;
    };
    if dir.is_empty() {
        return;
    }
    let mut ws = ws.clone();
    let (_, _, trace) =
        run_traced(&mut ws, plan, &ParCfg::from_env()).expect("bench workload is well-typed");
    let path = std::path::Path::new(&dir).join(format!("{bench}_{n}.json"));
    let written =
        std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, trace.to_json()));
    if let Err(e) = written {
        eprintln!("warning: cannot write trace {}: {e}", path.display());
    }
}

fn main() {
    // `cargo bench` passes flags like `--bench`; this harness ignores them.
    let quick = std::env::var("MAYBMS_BENCH_QUICK").is_ok();
    let sizes: &[usize] = if quick {
        &[1_000, 10_000]
    } else {
        &[1_000, 10_000, 100_000]
    };
    // `conf` sizes count *tuples*; each tuple gets its own component groups.
    let conf_sizes: &[usize] = if quick { &[1_000] } else { &[1_000, 10_000] };
    // Normalization additionally runs at 10⁶ — in quick mode too, so the CI
    // regression gate covers the columnar path at the scale where the
    // columnar sort and the memoized stripping actually carry the load.
    let norm_sizes: &[usize] = if quick {
        &[1_000, 10_000, 1_000_000]
    } else {
        &[1_000, 10_000, 100_000, 1_000_000]
    };

    for &n in norm_sizes {
        let ws = normalization_workload(&mut Rng::new(0xBE7C), n);
        let (rows, ms) = bench_min(&ws, |ws| {
            ws.normalize();
            ws.relations["r"].len()
        });
        emit("normalize", n, rows, ms);
    }

    for &n in sizes {
        let ws = join_workload(&mut Rng::new(0x10A0), n);
        let plan = Plan::scan("r1")
            .join(Plan::scan("r2"))
            .join(Plan::scan("r3"));
        let (rows, ms) = bench_min(&ws, |ws| {
            run(ws, &plan).expect("join workload is well-typed").len()
        });
        emit("join3", n, rows, ms);
        dump_trace(&ws, &plan, "join3", n);
    }

    // The columnar-specific join shape: a selection sweep on `r1` feeding a
    // string-keyed hop (`b`) and an int-keyed hop (`c`) — dictionary-coded
    // string equality and the selection-vector machinery under load.
    for &n in sizes {
        let ws = join_columnar_workload(&mut Rng::new(0xC01A), n);
        let plan = Plan::scan("r1")
            .select(Predicate::lt(col("a"), lit((n / 2) as i64)))
            .join(Plan::scan("r2"))
            .join(Plan::scan("r3"));
        let (rows, ms) = bench_min(&ws, |ws| {
            run(ws, &plan).expect("join workload is well-typed").len()
        });
        emit("join3_columnar", n, rows, ms);
        dump_trace(&ws, &plan, "join3_columnar", n);
    }

    // The same 3-way join driven through the MayQL front-end: parse,
    // analyze/lower, then execute, per run. The delta against `join3` is
    // the full front-end overhead (it should be noise: parsing is linear
    // in the query text, execution dominates).
    for &n in sizes {
        let ws = join_workload(&mut Rng::new(0x10A0), n);
        let text = "SELECT * FROM r1, r2, r3";
        let catalog = Catalog::from_world_set(&ws);
        let (rows, ms) = bench_min(&ws, |ws| {
            let plan = compile(&catalog, text).expect("bench query is valid MayQL");
            run(ws, &plan).expect("bench query is well-typed").len()
        });
        emit("mayql_e2e", n, rows, ms);
    }

    // A selective predicate (10% of `r1`) written *above* the 3-way join —
    // the optimizer's bread and butter. `join3_filtered_raw` executes the
    // plan as written; `join3_filtered` runs it through the logical
    // optimizer first, which pushes the filter to `r1`'s scan so both join
    // hops probe, gather, and dedup a tenth of the rows.
    for &n in sizes {
        let ws = join_workload(&mut Rng::new(0x10A0), n);
        let plan = Plan::scan("r1")
            .join(Plan::scan("r2"))
            .join(Plan::scan("r3"))
            .select(Predicate::lt(col("a"), lit((n / 10) as i64)));
        let (rows, ms) = bench_min(&ws, |ws| {
            run(ws, &plan).expect("join workload is well-typed").len()
        });
        emit("join3_filtered_raw", n, rows, ms);
        let optimized = optimize(&plan, &ws.relations).expect("plan optimizes");
        let (rows_opt, ms) = bench_min(&ws, |ws| {
            run(ws, &optimized)
                .expect("optimized plan is well-typed")
                .len()
        });
        assert_eq!(rows, rows_opt, "optimization changed the result size");
        emit("join3_filtered", n, rows_opt, ms);
        dump_trace(&ws, &optimized, "join3_filtered", n);
    }

    // The cost-based phase's headline case: the textual join order
    // `(r1 ⋈ r2) ⋈ r3` materializes a ~n²/2000-row zipf-keyed blowup
    // before the selective `c` hop shrinks it; with catalog statistics the
    // DP reorder starts from `r2 ⋈ r3` (~n/100 rows) instead. The rule
    // optimizer alone cannot fix this (there is no filter to push — the
    // asymmetry lives entirely in the data), so `join3_skewed_raw` times
    // the rule-optimized text order and `join3_skewed` the cost-optimized
    // plan, asserting identical output as always. At 10⁴+ rows the
    // reorder must win outright — that assertion is the CI bench smoke
    // for the cost phase.
    for &n in sizes {
        let ws = join3_skewed_workload(&mut Rng::new(0x5E3D), n);
        let plan = Plan::scan("r1")
            .join(Plan::scan("r2"))
            .join(Plan::scan("r3"));
        let rules_only = optimize(&plan, &ws.relations).expect("plan optimizes");
        let (rows, ms_raw) = bench_min(&ws, |ws| {
            run(ws, &rules_only)
                .expect("join workload is well-typed")
                .len()
        });
        emit("join3_skewed_raw", n, rows, ms_raw);
        let stats = world_set_stats(&ws);
        let optimized = optimize_with_stats(&plan, &ws.relations, &stats).expect("plan optimizes");
        assert_ne!(
            rules_only.to_string(),
            optimized.to_string(),
            "the cost phase should reorder the skewed join"
        );
        let (rows_opt, ms_opt) = bench_min(&ws, |ws| {
            run(ws, &optimized)
                .expect("optimized plan is well-typed")
                .len()
        });
        assert_eq!(rows, rows_opt, "cost optimization changed the result size");
        // Late-materialized joins no longer pay to copy the ~n²/2000-row
        // intermediate the text order produces, so at n = 10⁴ the two
        // orders race within noise of each other. The reorder win is
        // structural again at 10⁵ (tens of ms apart), so the speedup
        // assert — a full-bench gate only, quick mode stops at 10⁴ —
        // moved up a decade rather than flap on scheduler jitter.
        if n >= 100_000 {
            assert!(
                ms_opt < ms_raw,
                "cost-optimized join3_skewed ({ms_opt:.3} ms) should beat text order ({ms_raw:.3} ms) at n={n}"
            );
        }
        emit("join3_skewed", n, rows_opt, ms_opt);
        dump_trace(&ws, &optimized, "join3_skewed", n);
    }

    // Sideways information passing: a 5-way chain whose tail keeps one key
    // in a hundred. Without SIP every hop materializes the full n rows
    // before `r5` discards 99%; with SIP the Bloom filter built from `r5`
    // prunes `r4`'s scan, the pruned `r4` seeds the next filter into `r3`,
    // and so on down the chain. Both runs use the same late-materialized
    // pipeline, so the delta isolates the filter cascade. At 10⁴+ rows SIP
    // must win outright with identical output — that assertion is the CI
    // bench smoke for sideways information passing.
    for &n in sizes {
        let ws = join5_selective_workload(n);
        let plan = Plan::scan("r1")
            .join(Plan::scan("r2"))
            .join(Plan::scan("r3"))
            .join(Plan::scan("r4"))
            .join(Plan::scan("r5"));
        let nosip = ExecCfg {
            par: ParCfg::from_env(),
            sip: false,
            late_mat: true,
        };
        let sip = ExecCfg { sip: true, ..nosip };
        let (rows, ms_nosip) = bench_min(&ws, |ws| {
            run_with_exec(ws, &plan, &nosip)
                .expect("chain workload is well-typed")
                .len()
        });
        emit("join5_selective_nosip", n, rows, ms_nosip);
        let (rows_sip, ms_sip) = bench_min(&ws, |ws| {
            run_with_exec(ws, &plan, &sip)
                .expect("chain workload is well-typed")
                .len()
        });
        assert_eq!(rows, rows_sip, "SIP changed the result size");
        if n >= 10_000 {
            assert!(
                ms_sip < ms_nosip,
                "SIP join5_selective ({ms_sip:.3} ms) should beat the unfiltered \
                 pipeline ({ms_nosip:.3} ms) at n={n}"
            );
        }
        emit("join5_selective", n, rows_sip, ms_sip);
        dump_trace(&ws, &plan, "join5_selective", n);
    }

    // A selective filter on the *last* relation of the chain: the rules
    // push it into `r3`'s scan, but only the cost phase knows the filtered
    // side is now tiny and reorders the join so it participates first.
    for &n in sizes {
        let ws = join_workload(&mut Rng::new(0x10A0), n);
        let plan = Plan::scan("r1")
            .join(Plan::scan("r2"))
            .join(Plan::scan("r3"))
            .select(Predicate::lt(col("d"), lit((n / 10) as i64)));
        let (rows, ms) = bench_min(&ws, |ws| {
            run(ws, &plan).expect("join workload is well-typed").len()
        });
        emit("selective_right_raw", n, rows, ms);
        let stats = world_set_stats(&ws);
        let optimized = optimize_with_stats(&plan, &ws.relations, &stats).expect("plan optimizes");
        let (rows_opt, ms) = bench_min(&ws, |ws| {
            run(ws, &optimized)
                .expect("optimized plan is well-typed")
                .len()
        });
        assert_eq!(rows, rows_opt, "cost optimization changed the result size");
        emit("selective_right", n, rows_opt, ms);
        dump_trace(&ws, &optimized, "selective_right", n);
    }

    // A filter above `POSSIBLE` over a join: raw, the executor joins
    // everything, world-collapses (sorts) everything, then filters;
    // optimized, the selection commutes through `possible` and into the
    // join's left input, so the collapse sorts a tenth of the rows.
    for &n in sizes {
        let ws = join_workload(&mut Rng::new(0x9055), n);
        let plan = possible(Plan::scan("r1").join(Plan::scan("r2")))
            .select(Predicate::lt(col("a"), lit((n / 10) as i64)));
        let (rows, ms) = bench_min(&ws, |ws| {
            run(ws, &plan)
                .expect("possible workload is well-typed")
                .len()
        });
        emit("possible_pushdown_raw", n, rows, ms);
        let optimized = optimize(&plan, &ws.relations).expect("plan optimizes");
        let (rows_opt, ms) = bench_min(&ws, |ws| {
            run(ws, &optimized)
                .expect("optimized plan is well-typed")
                .len()
        });
        assert_eq!(rows, rows_opt, "optimization changed the result size");
        emit("possible_pushdown", n, rows_opt, ms);
        dump_trace(&ws, &optimized, "possible_pushdown", n);
    }

    for &n in sizes {
        let ws = repair_workload(&mut Rng::new(0x4E9A), n);
        let plan = repair_key(Plan::scan("r"), &["k"], Some("w"));
        let (rows, ms) = bench_min(&ws, |ws| {
            run(ws, &plan).expect("repair workload is well-typed").len()
        });
        emit("repair_key", n, rows, ms);
        dump_trace(&ws, &plan, "repair_key", n);
    }

    // Two disjoint 10-component groups (4 alternatives each) per tuple:
    // factorized `conf` solves two 10-component groups instead of
    // enumerating 4^20 cross-group assignments per tuple.
    for &n in conf_sizes {
        let ws = conf_disjoint_workload(&mut Rng::new(0xC0FF), n, 2, 10, 4);
        let plan = conf(Plan::scan("r"));
        let (rows, ms) = bench_min(&ws, |ws| {
            run(ws, &plan).expect("conf workload is well-typed").len()
        });
        emit("conf_disjoint", n, rows, ms);
        dump_trace(&ws, &plan, "conf_disjoint", n);
    }

    // One connected 11-component chain per tuple: the case factorization
    // cannot split, carried by per-group inclusion–exclusion/enumeration.
    for &n in conf_sizes {
        let ws = conf_chain_workload(&mut Rng::new(0xC4A1), n, 10, 2);
        let plan = conf(Plan::scan("r"));
        let (rows, ms) = bench_min(&ws, |ws| {
            run(ws, &plan).expect("conf workload is well-typed").len()
        });
        emit("conf_chain", n, rows, ms);
        dump_trace(&ws, &plan, "conf_chain", n);
    }

    // (ε, δ)-approximate confidence at scales the exact solver cannot
    // reach. `conf_chain` here doubles the chain to 20 links (group cost
    // 2²⁰ ≈ 10⁶, tens of milliseconds per tuple exactly); `conf_dense` is
    // a 26-component / 30-descriptor connected tangle (cost 2²⁶). Both
    // blow past the default cutover, so every group is sampled at
    // (ε, δ) = (0.1, 0.05) — 185 draws per group — and a tuple costs
    // microseconds instead. The sampler is deterministic (content-keyed
    // counter streams), so the minute-scale 10⁶ rows time a single run.
    let dense_shape = |rng: &mut Rng, n: usize| conf_dense_workload(rng, n, 26, 30, 2);
    let approx_chain_sizes: &[usize] = if quick { &[] } else { &[100_000, 1_000_000] };
    let approx_dense_sizes: &[usize] = if quick {
        &[1_000]
    } else {
        &[1_000, 100_000, 1_000_000]
    };
    let approx_runs = |n: usize| if n >= 1_000_000 { 1 } else { RUNS };

    for &n in approx_chain_sizes {
        let ws = conf_chain_workload(&mut Rng::new(0xC4A1), n, 20, 2);
        let plan = conf_approx(Plan::scan("r"), 0.1, 0.05);
        let (rows, ms) = bench_min_runs(&ws, approx_runs(n), |ws| {
            run(ws, &plan).expect("conf workload is well-typed").len()
        });
        emit("conf_chain", n, rows, ms);
    }

    for &n in approx_dense_sizes {
        let ws = dense_shape(&mut Rng::new(0xDE45), n);
        let plan = conf_approx(Plan::scan("r"), 0.1, 0.05);
        let (rows, ms) = bench_min_runs(&ws, approx_runs(n), |ws| {
            run(ws, &plan).expect("conf workload is well-typed").len()
        });
        emit("conf_dense", n, rows, ms);
    }

    // Morsel-driven parallelism: the three heaviest workloads at 10⁶ rows,
    // each timed single-threaded (`_t1`) and at `MAYBMS_BENCH_THREADS`
    // workers (`_tN`, default 4), with the output cardinality asserted
    // equal — the parallel paths promise byte-identical results, so a row
    // drift here is a correctness bug, not a perf delta. 10⁷ rows ride
    // behind `MAYBMS_BENCH_HUGE=1`. This phase runs in quick mode too: the
    // committed baseline carries per-row `"tol"` overrides because the
    // speedup (or, on a single-core runner, the oversubscription overhead)
    // is entirely a function of the host's core count.
    let par_threads: usize = std::env::var("MAYBMS_BENCH_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&t| t >= 1)
        .unwrap_or(4);
    let par_sizes: &[usize] = if std::env::var("MAYBMS_BENCH_HUGE").is_ok() {
        &[1_000_000, 10_000_000]
    } else {
        &[1_000_000]
    };
    let t1 = ParCfg::with_threads(1);
    let tn = ParCfg::with_threads(par_threads);

    for &n in par_sizes {
        let ws = normalization_workload(&mut Rng::new(0xBE7C), n);
        let (rows1, ms1) = bench_min(&ws, |ws| {
            ws.normalize_with(&t1);
            ws.relations["r"].len()
        });
        emit("normalize_t1", n, rows1, ms1);
        let (rows_n, ms_n) = bench_min(&ws, |ws| {
            ws.normalize_with(&tn);
            ws.relations["r"].len()
        });
        assert_eq!(rows1, rows_n, "parallel normalize changed the result size");
        emit(&format!("normalize_t{par_threads}"), n, rows_n, ms_n);
    }

    for &n in par_sizes {
        let ws = join_workload(&mut Rng::new(0x10A0), n);
        let plan = Plan::scan("r1")
            .join(Plan::scan("r2"))
            .join(Plan::scan("r3"));
        let (rows1, ms1) = bench_min(&ws, |ws| {
            run_with_opts(ws, &plan, &t1)
                .expect("join workload is well-typed")
                .len()
        });
        emit("join3_t1", n, rows1, ms1);
        let (rows_n, ms_n) = bench_min(&ws, |ws| {
            run_with_opts(ws, &plan, &tn)
                .expect("join workload is well-typed")
                .len()
        });
        assert_eq!(rows1, rows_n, "parallel join changed the result size");
        emit(&format!("join3_t{par_threads}"), n, rows_n, ms_n);
    }

    for &n in par_sizes {
        let ws = repair_workload(&mut Rng::new(0x4E9A), n);
        let plan = repair_key(Plan::scan("r"), &["k"], Some("w"));
        let (rows1, ms1) = bench_min(&ws, |ws| {
            run_with_opts(ws, &plan, &t1)
                .expect("repair workload is well-typed")
                .len()
        });
        emit("repair_key_t1", n, rows1, ms1);
        let (rows_n, ms_n) = bench_min(&ws, |ws| {
            run_with_opts(ws, &plan, &tn)
                .expect("repair workload is well-typed")
                .len()
        });
        assert_eq!(rows1, rows_n, "parallel repair-key changed the result size");
        emit(&format!("repair_key_t{par_threads}"), n, rows_n, ms_n);
    }
}
