//! Timings for WSD normalization and a 3-way natural join, printed as one
//! JSON object per line (see crate docs for why this is not criterion).

use std::time::Instant;

use maybms_algebra::{run, Plan};
use maybms_bench::{join_workload, normalization_workload};
use maybms_core::rng::Rng;

fn emit(bench: &str, n: usize, rows_out: usize, millis: f64) {
    println!("{{\"bench\":\"{bench}\",\"n\":{n},\"rows_out\":{rows_out},\"millis\":{millis:.3}}}");
}

fn main() {
    // `cargo bench` passes flags like `--bench`; this harness ignores them.
    let quick = std::env::var("MAYBMS_BENCH_QUICK").is_ok();
    let sizes: &[usize] = if quick {
        &[1_000]
    } else {
        &[1_000, 10_000, 100_000]
    };

    for &n in sizes {
        let mut rng = Rng::new(0xBE7C);
        let mut ws = normalization_workload(&mut rng, n);
        let start = Instant::now();
        ws.normalize();
        let elapsed = start.elapsed().as_secs_f64() * 1e3;
        let rows = ws.relations["r"].len();
        emit("normalize", n, rows, elapsed);
    }

    for &n in sizes {
        let mut rng = Rng::new(0x10A0);
        let mut ws = join_workload(&mut rng, n);
        let plan = Plan::scan("r1")
            .join(Plan::scan("r2"))
            .join(Plan::scan("r3"));
        let start = Instant::now();
        let out = run(&mut ws, &plan).expect("join workload is well-typed");
        let elapsed = start.elapsed().as_secs_f64() * 1e3;
        emit("join3", n, out.len(), elapsed);
    }
}
