//! Selection predicates over tuples.

use maybms_core::{MayError, Schema, Tuple, Value};

/// A comparison operator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl CmpOp {
    fn test(self, l: &Value, r: &Value) -> bool {
        match self {
            CmpOp::Eq => l == r,
            CmpOp::Ne => l != r,
            CmpOp::Lt => l < r,
            CmpOp::Le => l <= r,
            CmpOp::Gt => l > r,
            CmpOp::Ge => l >= r,
        }
    }
}

/// One side of a comparison: a column reference or a literal.
#[derive(Clone, Debug, PartialEq)]
pub enum Operand {
    /// The value of the named column of the current tuple.
    Column(String),
    /// A constant.
    Literal(Value),
}

/// Shorthand for a column operand.
pub fn col(name: impl Into<String>) -> Operand {
    Operand::Column(name.into())
}

/// Shorthand for a literal operand.
pub fn lit(v: impl Into<Value>) -> Operand {
    Operand::Literal(v.into())
}

/// A boolean selection predicate. Comparisons use the total order on
/// [`Value`]; mixed-type comparisons follow the `Value` variant order rather
/// than erroring, which keeps selection total on heterogeneous data.
#[derive(Clone, Debug, PartialEq)]
pub enum Predicate {
    /// Always true.
    True,
    /// A comparison between two operands.
    Compare {
        /// The comparison operator.
        op: CmpOp,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
    },
    /// Conjunction.
    And(Vec<Predicate>),
    /// Disjunction.
    Or(Vec<Predicate>),
    /// Negation (of the *predicate*; the algebra itself stays positive).
    Not(Box<Predicate>),
}

impl Predicate {
    /// A comparison predicate.
    pub fn cmp(op: CmpOp, lhs: Operand, rhs: Operand) -> Predicate {
        Predicate::Compare { op, lhs, rhs }
    }

    /// `lhs = rhs`.
    pub fn eq(lhs: Operand, rhs: Operand) -> Predicate {
        Predicate::cmp(CmpOp::Eq, lhs, rhs)
    }

    /// `lhs < rhs`.
    pub fn lt(lhs: Operand, rhs: Operand) -> Predicate {
        Predicate::cmp(CmpOp::Lt, lhs, rhs)
    }

    /// Resolve column names against a schema once, for repeated evaluation.
    pub fn bind(&self, schema: &Schema) -> Result<BoundPredicate, MayError> {
        Ok(match self {
            Predicate::True => BoundPredicate::True,
            Predicate::Compare { op, lhs, rhs } => BoundPredicate::Compare {
                op: *op,
                lhs: BoundOperand::bind(lhs, schema)?,
                rhs: BoundOperand::bind(rhs, schema)?,
            },
            Predicate::And(ps) => BoundPredicate::And(
                ps.iter()
                    .map(|p| p.bind(schema))
                    .collect::<Result<_, _>>()?,
            ),
            Predicate::Or(ps) => BoundPredicate::Or(
                ps.iter()
                    .map(|p| p.bind(schema))
                    .collect::<Result<_, _>>()?,
            ),
            Predicate::Not(p) => BoundPredicate::Not(Box::new(p.bind(schema)?)),
        })
    }
}

/// An operand with column names resolved to indices.
#[derive(Clone, Debug)]
pub enum BoundOperand {
    /// Value at a column index.
    Index(usize),
    /// A constant.
    Literal(Value),
}

impl BoundOperand {
    fn bind(op: &Operand, schema: &Schema) -> Result<Self, MayError> {
        Ok(match op {
            Operand::Column(n) => BoundOperand::Index(schema.col_index(n)?),
            Operand::Literal(v) => BoundOperand::Literal(v.clone()),
        })
    }

    fn value<'a>(&'a self, t: &'a Tuple) -> &'a Value {
        match self {
            BoundOperand::Index(i) => t.get(*i),
            BoundOperand::Literal(v) => v,
        }
    }
}

/// A predicate bound to a schema; cheap to evaluate per tuple.
#[derive(Clone, Debug)]
pub enum BoundPredicate {
    /// Always true.
    True,
    /// A bound comparison.
    Compare {
        /// The comparison operator.
        op: CmpOp,
        /// Left operand.
        lhs: BoundOperand,
        /// Right operand.
        rhs: BoundOperand,
    },
    /// Conjunction.
    And(Vec<BoundPredicate>),
    /// Disjunction.
    Or(Vec<BoundPredicate>),
    /// Negation.
    Not(Box<BoundPredicate>),
}

impl BoundPredicate {
    /// Evaluate against one tuple.
    pub fn matches(&self, t: &Tuple) -> bool {
        match self {
            BoundPredicate::True => true,
            BoundPredicate::Compare { op, lhs, rhs } => op.test(lhs.value(t), rhs.value(t)),
            BoundPredicate::And(ps) => ps.iter().all(|p| p.matches(t)),
            BoundPredicate::Or(ps) => ps.iter().any(|p| p.matches(t)),
            BoundPredicate::Not(p) => !p.matches(t),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maybms_core::ValueType;

    #[test]
    fn bound_predicates_evaluate() {
        let schema = Schema::of(&[("a", ValueType::Int), ("b", ValueType::Int)]).unwrap();
        let p = Predicate::And(vec![
            Predicate::lt(col("a"), col("b")),
            Predicate::Not(Box::new(Predicate::eq(col("a"), lit(0)))),
        ]);
        let bound = p.bind(&schema).unwrap();
        assert!(bound.matches(&Tuple::new(vec![1.into(), 2.into()])));
        assert!(!bound.matches(&Tuple::new(vec![0.into(), 2.into()])));
        assert!(!bound.matches(&Tuple::new(vec![3.into(), 2.into()])));
    }
}
