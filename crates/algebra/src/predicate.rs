//! Selection predicates over tuples and columnar batches.

use std::cmp::Ordering;
use std::collections::BTreeSet;
use std::fmt;

use maybms_core::columnar::{ColView, ColumnVec, StrPool};
use maybms_core::{MayError, Schema, Tuple, Value};

/// A comparison operator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

/// MayQL spelling of the operator (`=`, `<>`, `<`, `<=`, `>`, `>=`).
impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        })
    }
}

impl CmpOp {
    fn test(self, l: &Value, r: &Value) -> bool {
        match self {
            CmpOp::Eq => l == r,
            CmpOp::Ne => l != r,
            CmpOp::Lt => l < r,
            CmpOp::Le => l <= r,
            CmpOp::Gt => l > r,
            CmpOp::Ge => l >= r,
        }
    }

    /// Whether the comparison holds for operands whose three-way ordering is
    /// `ord` — the columnar counterpart of [`CmpOp::test`] ([`Value`]'s `Eq`
    /// and `Ord` agree, so one `Ordering` decides every operator).
    fn holds(self, ord: Ordering) -> bool {
        match self {
            CmpOp::Eq => ord == Ordering::Equal,
            CmpOp::Ne => ord != Ordering::Equal,
            CmpOp::Lt => ord == Ordering::Less,
            CmpOp::Le => ord != Ordering::Greater,
            CmpOp::Gt => ord == Ordering::Greater,
            CmpOp::Ge => ord != Ordering::Less,
        }
    }
}

/// One side of a comparison: a column reference or a literal.
#[derive(Clone, Debug, PartialEq)]
pub enum Operand {
    /// The value of the named column of the current tuple.
    Column(String),
    /// A constant.
    Literal(Value),
}

/// Shorthand for a column operand.
pub fn col(name: impl Into<String>) -> Operand {
    Operand::Column(name.into())
}

/// Shorthand for a literal operand.
pub fn lit(v: impl Into<Value>) -> Operand {
    Operand::Literal(v.into())
}

/// Format a literal value in MayQL syntax so the printed form lexes back to
/// the same [`Value`]: strings are single-quoted with `''` escaping, floats
/// keep a decimal point or exponent (`1.0`, not `1`), and `NULL`/`TRUE`/
/// `FALSE` use the keyword spelling.
pub fn fmt_literal(v: &Value, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    match v {
        Value::Null => f.write_str("NULL"),
        Value::Bool(true) => f.write_str("TRUE"),
        Value::Bool(false) => f.write_str("FALSE"),
        Value::Int(i) => write!(f, "{i}"),
        // `{:?}` always keeps a `.0` or exponent, unlike `{}`.
        Value::Float(x) => write!(f, "{:?}", x.get()),
        Value::Str(s) => write!(f, "'{}'", s.replace('\'', "''")),
    }
}

/// MayQL syntax: a bare column name or a literal (see [`fmt_literal`]).
impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Column(n) => f.write_str(n),
            Operand::Literal(v) => fmt_literal(v, f),
        }
    }
}

/// A boolean selection predicate. Comparisons use the total order on
/// [`Value`]; mixed-type comparisons follow the `Value` variant order rather
/// than erroring, which keeps selection total on heterogeneous data.
#[derive(Clone, Debug, PartialEq)]
pub enum Predicate {
    /// Always true.
    True,
    /// A comparison between two operands.
    Compare {
        /// The comparison operator.
        op: CmpOp,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
    },
    /// Conjunction.
    And(Vec<Predicate>),
    /// Disjunction.
    Or(Vec<Predicate>),
    /// Negation (of the *predicate*; the algebra itself stays positive).
    Not(Box<Predicate>),
}

impl Predicate {
    /// A comparison predicate.
    pub fn cmp(op: CmpOp, lhs: Operand, rhs: Operand) -> Predicate {
        Predicate::Compare { op, lhs, rhs }
    }

    /// `lhs = rhs`.
    pub fn eq(lhs: Operand, rhs: Operand) -> Predicate {
        Predicate::cmp(CmpOp::Eq, lhs, rhs)
    }

    /// `lhs < rhs`.
    pub fn lt(lhs: Operand, rhs: Operand) -> Predicate {
        Predicate::cmp(CmpOp::Lt, lhs, rhs)
    }

    /// True when the predicate is a single comparison, `TRUE`, or otherwise
    /// needs no parentheses when nested under `AND`/`OR`/`NOT`.
    fn is_atom(&self) -> bool {
        matches!(self, Predicate::True | Predicate::Compare { .. })
    }

    fn fmt_child(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_atom() {
            write!(f, "{self}")
        } else {
            write!(f, "({self})")
        }
    }

    /// Collect the names of every column the predicate reads into `out`.
    /// The optimizer uses this to decide which side of a join (or which
    /// operator boundary) a predicate may cross.
    pub fn columns(&self, out: &mut BTreeSet<String>) {
        let operand = |op: &Operand, out: &mut BTreeSet<String>| {
            if let Operand::Column(n) = op {
                out.insert(n.clone());
            }
        };
        match self {
            Predicate::True => {}
            Predicate::Compare { lhs, rhs, .. } => {
                operand(lhs, out);
                operand(rhs, out);
            }
            Predicate::And(ps) | Predicate::Or(ps) => {
                for p in ps {
                    p.columns(out);
                }
            }
            Predicate::Not(p) => p.columns(out),
        }
    }

    /// Rewrite every column reference through `f` (a *simultaneous*
    /// substitution, so swapping renames resolve correctly). Used to carry a
    /// predicate across a `Rename`: pushing `σ_p` below `rename[old → new]`
    /// maps each `new` in `p` back to its `old`.
    pub fn map_columns(&self, f: &impl Fn(&str) -> String) -> Predicate {
        let operand = |op: &Operand| match op {
            Operand::Column(n) => Operand::Column(f(n)),
            lit => lit.clone(),
        };
        match self {
            Predicate::True => Predicate::True,
            Predicate::Compare { op, lhs, rhs } => Predicate::Compare {
                op: *op,
                lhs: operand(lhs),
                rhs: operand(rhs),
            },
            Predicate::And(ps) => Predicate::And(ps.iter().map(|p| p.map_columns(f)).collect()),
            Predicate::Or(ps) => Predicate::Or(ps.iter().map(|p| p.map_columns(f)).collect()),
            Predicate::Not(p) => Predicate::Not(Box::new(p.map_columns(f))),
        }
    }

    /// Resolve column names against a schema once, for repeated evaluation.
    pub fn bind(&self, schema: &Schema) -> Result<BoundPredicate, MayError> {
        Ok(match self {
            Predicate::True => BoundPredicate::True,
            Predicate::Compare { op, lhs, rhs } => BoundPredicate::Compare {
                op: *op,
                lhs: BoundOperand::bind(lhs, schema)?,
                rhs: BoundOperand::bind(rhs, schema)?,
            },
            Predicate::And(ps) => BoundPredicate::And(
                ps.iter()
                    .map(|p| p.bind(schema))
                    .collect::<Result<_, _>>()?,
            ),
            Predicate::Or(ps) => BoundPredicate::Or(
                ps.iter()
                    .map(|p| p.bind(schema))
                    .collect::<Result<_, _>>()?,
            ),
            Predicate::Not(p) => BoundPredicate::Not(Box::new(p.bind(schema)?)),
        })
    }
}

/// MayQL syntax, parenthesizing composite children so the printed form
/// parses back to the same predicate tree: `a = 3 AND NOT (b < c)`.
impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::True => f.write_str("TRUE"),
            Predicate::Compare { op, lhs, rhs } => write!(f, "{lhs} {op} {rhs}"),
            Predicate::And(ps) if ps.is_empty() => f.write_str("TRUE"),
            Predicate::And(ps) => {
                for (i, p) in ps.iter().enumerate() {
                    if i > 0 {
                        f.write_str(" AND ")?;
                    }
                    p.fmt_child(f)?;
                }
                Ok(())
            }
            // An empty disjunction is vacuously *false* (`.any()` on no
            // disjuncts), unlike the empty conjunction above.
            Predicate::Or(ps) if ps.is_empty() => f.write_str("NOT TRUE"),
            Predicate::Or(ps) => {
                for (i, p) in ps.iter().enumerate() {
                    if i > 0 {
                        f.write_str(" OR ")?;
                    }
                    p.fmt_child(f)?;
                }
                Ok(())
            }
            Predicate::Not(p) => {
                f.write_str("NOT ")?;
                p.fmt_child(f)
            }
        }
    }
}

/// An operand with column names resolved to indices.
#[derive(Clone, Debug)]
pub enum BoundOperand {
    /// Value at a column index.
    Index(usize),
    /// A constant.
    Literal(Value),
}

impl BoundOperand {
    fn bind(op: &Operand, schema: &Schema) -> Result<Self, MayError> {
        Ok(match op {
            Operand::Column(n) => BoundOperand::Index(schema.col_index(n)?),
            Operand::Literal(v) => BoundOperand::Literal(v.clone()),
        })
    }

    fn value<'a>(&'a self, t: &'a Tuple) -> &'a Value {
        match self {
            BoundOperand::Index(i) => t.get(*i),
            BoundOperand::Literal(v) => v,
        }
    }
}

/// A predicate bound to a schema; cheap to evaluate per tuple.
#[derive(Clone, Debug)]
pub enum BoundPredicate {
    /// Always true.
    True,
    /// A bound comparison.
    Compare {
        /// The comparison operator.
        op: CmpOp,
        /// Left operand.
        lhs: BoundOperand,
        /// Right operand.
        rhs: BoundOperand,
    },
    /// Conjunction.
    And(Vec<BoundPredicate>),
    /// Disjunction.
    Or(Vec<BoundPredicate>),
    /// Negation.
    Not(Box<BoundPredicate>),
}

impl BoundPredicate {
    /// Evaluate against one tuple.
    pub fn matches(&self, t: &Tuple) -> bool {
        match self {
            BoundPredicate::True => true,
            BoundPredicate::Compare { op, lhs, rhs } => op.test(lhs.value(t), rhs.value(t)),
            BoundPredicate::And(ps) => ps.iter().all(|p| p.matches(t)),
            BoundPredicate::Or(ps) => ps.iter().any(|p| p.matches(t)),
            BoundPredicate::Not(p) => !p.matches(t),
        }
    }

    /// Evaluate against row `row` of a columnar batch (`cols` in schema
    /// order) — no tuple is materialized; each comparison reads two cells in
    /// place. Semantically identical to [`BoundPredicate::matches`] on the
    /// row's tuple: cell comparisons implement the same total [`Value`]
    /// order, including the variant-rank ordering of mixed-type operands.
    pub fn matches_cols(&self, cols: &[&ColumnVec], row: usize, strings: &StrPool) -> bool {
        match self {
            BoundPredicate::True => true,
            BoundPredicate::Compare { op, lhs, rhs } => {
                let ord = match (lhs, rhs) {
                    (BoundOperand::Index(i), BoundOperand::Index(j)) => {
                        cols[*i].cmp_cells(row, cols[*j], row, strings)
                    }
                    (BoundOperand::Index(i), BoundOperand::Literal(v)) => {
                        cols[*i].cmp_cell_value(row, v, strings)
                    }
                    (BoundOperand::Literal(v), BoundOperand::Index(j)) => {
                        cols[*j].cmp_cell_value(row, v, strings).reverse()
                    }
                    (BoundOperand::Literal(a), BoundOperand::Literal(b)) => a.cmp(b),
                };
                op.holds(ord)
            }
            BoundPredicate::And(ps) => ps.iter().all(|p| p.matches_cols(cols, row, strings)),
            BoundPredicate::Or(ps) => ps.iter().any(|p| p.matches_cols(cols, row, strings)),
            BoundPredicate::Not(p) => !p.matches_cols(cols, row, strings),
        }
    }

    /// [`BoundPredicate::matches_cols`] over rowid-indirected column views —
    /// the late-materialization sweep path, where a column may be read
    /// through a deferred join gather instead of dense storage.
    pub fn matches_views(&self, cols: &[ColView<'_>], row: usize, strings: &StrPool) -> bool {
        match self {
            BoundPredicate::True => true,
            BoundPredicate::Compare { op, lhs, rhs } => {
                let ord = match (lhs, rhs) {
                    (BoundOperand::Index(i), BoundOperand::Index(j)) => {
                        cols[*i].cmp_cells(row, &cols[*j], row, strings)
                    }
                    (BoundOperand::Index(i), BoundOperand::Literal(v)) => {
                        cols[*i].cmp_cell_value(row, v, strings)
                    }
                    (BoundOperand::Literal(v), BoundOperand::Index(j)) => {
                        cols[*j].cmp_cell_value(row, v, strings).reverse()
                    }
                    (BoundOperand::Literal(a), BoundOperand::Literal(b)) => a.cmp(b),
                };
                op.holds(ord)
            }
            BoundPredicate::And(ps) => ps.iter().all(|p| p.matches_views(cols, row, strings)),
            BoundPredicate::Or(ps) => ps.iter().any(|p| p.matches_views(cols, row, strings)),
            BoundPredicate::Not(p) => !p.matches_views(cols, row, strings),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maybms_core::ValueType;

    #[test]
    fn bound_predicates_evaluate() {
        let schema = Schema::of(&[("a", ValueType::Int), ("b", ValueType::Int)]).unwrap();
        let p = Predicate::And(vec![
            Predicate::lt(col("a"), col("b")),
            Predicate::Not(Box::new(Predicate::eq(col("a"), lit(0)))),
        ]);
        let bound = p.bind(&schema).unwrap();
        assert!(bound.matches(&Tuple::new(vec![1.into(), 2.into()])));
        assert!(!bound.matches(&Tuple::new(vec![0.into(), 2.into()])));
        assert!(!bound.matches(&Tuple::new(vec![3.into(), 2.into()])));
    }
}
