//! # maybms-algebra — the query algebra layer
//!
//! A logical plan IR ([`plan::Plan`]) for the *positive relational algebra*
//! — selection, projection, natural join, union, renaming — together with an
//! executor ([`eval`]) that evaluates plans **directly on the world-set
//! decomposition** of `maybms-core`, without ever expanding the worlds.
//!
//! The key facts making that possible (Antova, Koch & Olteanu, VLDB 2007):
//! positive relational algebra commutes with possible-world instantiation
//! when tuples carry world-set descriptors. Selection and projection keep
//! descriptors untouched; a join combines two tuples only when their
//! descriptors are *consistent* (no component assigned two different
//! alternatives) and annotates the result with the conjunction; union
//! concatenates. The per-world instantiation of the result then equals the
//! per-world result of the plain algebra — a property the test suite checks
//! differentially against the enumerate-all-worlds oracle for randomized
//! databases and plans.
//!
//! The executor is **columnar and vectorized**: plans evaluate on batches of
//! typed column vectors with selection vectors on top (see [`eval`]'s module
//! docs for the operator contract), converting to the row-oriented
//! representation only at the boundary of [`eval::run`].
//!
//! The IR is open: [`ext::ExtOperator`] lets higher layers add operators with
//! access to the component set (the extension ABI is columnar too).
//! `maybms-ql` uses it for `repair-key`, `possible`, `certain`, and `conf`.
//!
//! Between lowering and execution sits the **logical optimizer**
//! ([`mod@optimize`]): a fixpoint rewriter that pushes selections through
//! projections, renames, unions, join inputs, and commuting uncertainty
//! operators, prunes projections down to the columns consumers need, and
//! elides operators that derived plan properties (schema, distinctness,
//! descriptor-triviality) prove redundant. Extension operators opt into
//! rewrites by declaring [`ext::ExtProps`]. On top of the rule fixpoint,
//! [`optimize::optimize_with_stats`] runs a **cost-based phase** that
//! reorders join trees (dynamic programming over subsets), distributes
//! quantifiers over unions, and pins operator runtime knobs, driven by the
//! catalog statistics a [`cost::StatsProvider`] serves to the cardinality
//! estimator in [`cost`].
//!
//! [`naive`] evaluates the same plans with the textbook single-world
//! algebra, which is what the differential tests run inside each enumerated
//! world.

pub mod cost;
pub mod eval;
pub mod ext;
pub mod naive;
pub mod optimize;
pub mod plan;
pub mod predicate;
pub mod sip;

pub use cost::{estimate_preorder, plan_cost, CardEst, StatsProvider};
pub use eval::{
    infer_schema, run, run_traced, run_with_exec, run_with_opts, run_with_stats,
    run_with_stats_exec, run_with_stats_opts, EvalCtx, ExecCfg, ExecStats, LATE_MAT_ENV, SIP_ENV,
};
pub use ext::{ExtOperator, ExtProps};
pub use optimize::{optimize, optimize_with_stats, PlanProps, SchemaProvider};
pub use plan::Plan;
pub use predicate::{col, lit, CmpOp, Operand, Predicate};
pub use sip::{exec_order, sip_decisions, SipStats};
