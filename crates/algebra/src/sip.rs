//! Sideways information passing (SIP): Bloom-filter semi-join pruning.
//!
//! When a natural join's build (right) side is small, the executor builds a
//! [`BlockedBloom`] over the build side's join-key cells and pushes it down
//! into the probe (left) subtree as a *pre-filter*: probe rows whose key
//! cells cannot match any build row are pruned before they flow up through
//! the probe pipeline at all. The filter is under-approximating — false
//! positives only keep rows the join itself would drop — so results are
//! byte-identical with SIP on or off.
//!
//! This module holds the plan-level machinery shared by the executor and
//! `EXPLAIN`:
//!
//! * `plan_mints` — the *mint guard*. SIP evaluates the build side before
//!   the probe side; component minting order is the only observable effect
//!   of evaluation order, so the swap is allowed unless **both** sides mint.
//! * `sip_target` — where in the probe subtree the filter applies. The
//!   descent pushes through `select` (row filter commutes), `project`
//!   (set-semantics dedup classes agree on key cells, so pruning is
//!   class-closed), `rename` (key names remapped), and into whichever join
//!   child carries all key columns; it stops at scans, unions, and
//!   extension operators and applies to that node's output.
//! * [`sip_decisions`] — the plan-time rendering for `EXPLAIN`, driven by
//!   the cost model's cardinality estimates (the runtime gate uses the
//!   *actual* build-side row count, which is strictly better information).

use maybms_core::bloom::BlockedBloom;
use maybms_core::Schema;

use crate::cost::{estimate_preorder, StatsProvider};
use crate::optimize::SchemaProvider;
use crate::plan::Plan;

/// Largest build-side row count a SIP filter is built over. Beyond this the
/// filter itself starts costing real memory/build time while the join it
/// guards is big anyway — the classic semi-join-reduction cutoff shape.
pub(crate) const SIP_MAX_BUILD: usize = 65_536;

/// Probe bits per key (at ~16 bits/key this puts the false-positive rate
/// around 1–2%, cheap enough that pruning wins whenever selectivity does).
pub(crate) const SIP_K: u32 = 3;

/// A Bloom filter registered against one probe-subtree node: the filter
/// plus the key column indices (into that node's output schema, in build
/// hash order).
pub(crate) struct SipFilter {
    /// The filter, over FxHash'd key-cell tuples of the build side.
    pub bloom: BlockedBloom,
    /// Key columns of the target node's output schema, in the exact order
    /// the build side hashed them.
    pub key_cols: Vec<usize>,
}

/// Per-run SIP counters, surfaced through
/// [`ExecStats`](crate::eval::ExecStats), `EXPLAIN ANALYZE`, and the
/// process-wide metrics registry.
#[derive(Clone, Copy, Debug, Default)]
pub struct SipStats {
    /// Bloom filters built and registered.
    pub filters_built: u64,
    /// Probe rows tested against a filter.
    pub probe_rows_tested: u64,
    /// Probe rows pruned (definitively absent from the build side).
    pub probe_rows_pruned: u64,
}

/// Whether evaluating `plan` may mint new components into the world set.
/// Minting order is the only order-observable effect of evaluation, so this
/// is the executor's guard for evaluating a join's build side first.
pub(crate) fn plan_mints(plan: &Plan) -> bool {
    match plan {
        Plan::Scan(_) => false,
        Plan::Select { input, .. } | Plan::Project { input, .. } | Plan::Rename { input, .. } => {
            plan_mints(input)
        }
        Plan::NaturalJoin { left, right } | Plan::Union { left, right } => {
            plan_mints(left) || plan_mints(right)
        }
        Plan::Ext(op) => op.mints_components() || op.inputs().into_iter().any(plan_mints),
    }
}

/// The join-key column names shared by two schemas, in left-schema column
/// order — the order both the filter build and every probe hash use.
pub(crate) fn shared_key_names(left: &Schema, right: &Schema) -> Vec<String> {
    left.columns()
        .iter()
        .filter(|c| right.col_index(&c.name).is_ok())
        .map(|c| c.name.clone())
        .collect()
}

/// Descend the probe subtree to the node a SIP filter over `keys` applies
/// to, remapping key names across renames. Returns the target node and the
/// key names *in that node's schema*, preserving order. `None` aborts SIP
/// for this join (schema inference failed mid-descent).
pub(crate) fn sip_target<'p>(
    plan: &'p Plan,
    keys: Vec<String>,
    schemas: &dyn SchemaProvider,
) -> Option<(&'p Plan, Vec<String>)> {
    match plan {
        // A select only drops rows; pruning more rows first commutes.
        Plan::Select { input, .. } => sip_target(input, keys, schemas),
        // A project keeps the key columns (they are in its output) and its
        // set-semantics dedup is class-closed under key-determined pruning:
        // duplicate rows agree on every cell, hence on the keys.
        Plan::Project { input, .. } => sip_target(input, keys, schemas),
        Plan::Rename { input, renames } => {
            let keys = keys
                .into_iter()
                .map(|k| {
                    renames
                        .iter()
                        .find(|(_, new)| *new == k)
                        .map(|(old, _)| old.clone())
                        .unwrap_or(k)
                })
                .collect();
            sip_target(input, keys, schemas)
        }
        // Push into whichever child carries every key column: a join output
        // row inherits its key cells from that child's matched row, so
        // pruning the child prunes exactly the doomed output rows.
        Plan::NaturalJoin { left, right } => {
            let contains_all = |p: &Plan| match p.schema_with(schemas) {
                Ok(s) => Some(keys.iter().all(|k| s.col_index(k).is_ok())),
                Err(_) => None,
            };
            match (contains_all(left), contains_all(right)) {
                (Some(true), _) => sip_target(left, keys, schemas),
                (Some(_), Some(true)) => sip_target(right, keys, schemas),
                (Some(false), Some(false)) => Some((plan, keys)),
                // Schema inference failed — don't risk a misplaced filter.
                _ => None,
            }
        }
        // Barriers: apply the filter to this node's output.
        Plan::Scan(_) | Plan::Union { .. } | Plan::Ext(_) => Some((plan, keys)),
    }
}

/// The plan-time SIP decisions for `EXPLAIN`: one string per plan node in
/// pre-order (the printed line order), empty for nodes without a decision.
/// A natural-join line gets `sip=bloom(col, …)` when the cost model
/// estimates its build side at or below the build cutoff, the sides share
/// key columns, and the mint guard allows build-first evaluation.
pub fn sip_decisions(
    plan: &Plan,
    schemas: &dyn SchemaProvider,
    stats: &dyn StatsProvider,
) -> Vec<String> {
    let ests = estimate_preorder(plan, schemas, stats);
    let mut out = vec![String::new(); plan.node_count()];
    annotate(plan, 0, &ests, schemas, &mut out);
    out
}

/// The order plan nodes are *executed* in, as plan pre-order indices: under
/// SIP the executor evaluates a join's build (right) side before its probe
/// side whenever the mint guard allows, so a traced run's node spans appear
/// in this order rather than plan pre-order. `out[i]` is the plan pre-order
/// index of the `i`-th executed node — consumers (e.g. `EXPLAIN ANALYZE`)
/// use it to align execution spans with pre-order plan annotations.
pub fn exec_order(plan: &Plan, sip: bool) -> Vec<usize> {
    fn walk(plan: &Plan, pre: usize, sip: bool, out: &mut Vec<usize>) -> usize {
        out.push(pre);
        if let Plan::NaturalJoin { left, right } = plan {
            let left_count = left.node_count();
            let right_count = right.node_count();
            let swap = sip && !(plan_mints(left) && plan_mints(right));
            if swap {
                walk(right, pre + 1 + left_count, sip, out);
                walk(left, pre + 1, sip, out);
            } else {
                walk(left, pre + 1, sip, out);
                walk(right, pre + 1 + left_count, sip, out);
            }
            return 1 + left_count + right_count;
        }
        let mut count = 1;
        for child in plan.children() {
            count += walk(child, pre + count, sip, out);
        }
        count
    }
    let mut out = Vec::with_capacity(plan.node_count());
    walk(plan, 0, sip, &mut out);
    out
}

/// Recursive worker for [`sip_decisions`]: annotates the subtree rooted at
/// pre-order index `my` and returns the subtree's node count.
fn annotate(
    plan: &Plan,
    my: usize,
    ests: &[f64],
    schemas: &dyn SchemaProvider,
    out: &mut [String],
) -> usize {
    if let Plan::NaturalJoin { left, right } = plan {
        let left_count = annotate(left, my + 1, ests, schemas, out);
        let right_idx = my + 1 + left_count;
        let right_count = annotate(right, right_idx, ests, schemas, out);
        let small_build = ests
            .get(right_idx)
            .is_some_and(|&e| e <= SIP_MAX_BUILD as f64);
        if small_build && !(plan_mints(left) && plan_mints(right)) {
            if let (Ok(ls), Ok(rs)) = (left.schema_with(schemas), right.schema_with(schemas)) {
                let keys = shared_key_names(&ls, &rs);
                if !keys.is_empty() && sip_target(left, keys.clone(), schemas).is_some() {
                    out[my] = format!("sip=bloom({})", keys.join(", "));
                }
            }
        }
        return 1 + left_count + right_count;
    }
    let mut count = 1;
    for child in plan.children() {
        count += annotate(child, my + count, ests, schemas, out);
    }
    count
}
