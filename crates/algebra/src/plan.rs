//! The logical plan IR for the positive relational algebra.

use std::sync::Arc;

use crate::ext::ExtOperator;
use crate::predicate::Predicate;

/// A logical query plan over the relations of a
/// [`maybms_core::world::WorldSet`].
///
/// The core variants are exactly the positive relational algebra of the
/// paper. The [`Plan::Ext`] variant keeps the IR open for higher layers:
/// `maybms-ql` plugs `repair-key`, `possible`, `certain`, and `conf` in as
/// [`ExtOperator`]s without this crate knowing about them.
#[derive(Clone, Debug)]
pub enum Plan {
    /// Read a named base relation.
    Scan(String),
    /// Keep tuples satisfying a predicate.
    Select {
        /// Input plan.
        input: Box<Plan>,
        /// Selection predicate.
        predicate: Predicate,
    },
    /// Project onto named columns (set semantics).
    Project {
        /// Input plan.
        input: Box<Plan>,
        /// Output column names, in order.
        columns: Vec<String>,
    },
    /// Natural join on all columns shared by name.
    NaturalJoin {
        /// Left input.
        left: Box<Plan>,
        /// Right input.
        right: Box<Plan>,
    },
    /// Set union of union-compatible inputs.
    Union {
        /// Left input.
        left: Box<Plan>,
        /// Right input.
        right: Box<Plan>,
    },
    /// Rename columns via `(old, new)` pairs.
    Rename {
        /// Input plan.
        input: Box<Plan>,
        /// `(old, new)` name pairs.
        renames: Vec<(String, String)>,
    },
    /// An extension operator (see [`ExtOperator`]).
    Ext(Arc<dyn ExtOperator>),
}

impl Plan {
    /// Scan a base relation.
    pub fn scan(name: impl Into<String>) -> Plan {
        Plan::Scan(name.into())
    }

    /// Apply a selection.
    pub fn select(self, predicate: Predicate) -> Plan {
        Plan::Select {
            input: Box::new(self),
            predicate,
        }
    }

    /// Apply a projection.
    pub fn project(self, columns: &[&str]) -> Plan {
        Plan::Project {
            input: Box::new(self),
            columns: columns.iter().map(|c| c.to_string()).collect(),
        }
    }

    /// Natural-join with another plan.
    pub fn join(self, right: Plan) -> Plan {
        Plan::NaturalJoin {
            left: Box::new(self),
            right: Box::new(right),
        }
    }

    /// Union with another plan.
    pub fn union(self, right: Plan) -> Plan {
        Plan::Union {
            left: Box::new(self),
            right: Box::new(right),
        }
    }

    /// Rename columns.
    pub fn rename(self, renames: &[(&str, &str)]) -> Plan {
        Plan::Rename {
            input: Box::new(self),
            renames: renames
                .iter()
                .map(|(o, n)| (o.to_string(), n.to_string()))
                .collect(),
        }
    }
}
