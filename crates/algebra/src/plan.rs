//! The logical plan IR for the positive relational algebra.

use std::fmt;
use std::sync::Arc;

use crate::ext::ExtOperator;
use crate::predicate::Predicate;

/// A logical query plan over the relations of a
/// [`maybms_core::world::WorldSet`].
///
/// The core variants are exactly the positive relational algebra of the
/// paper. The [`Plan::Ext`] variant keeps the IR open for higher layers:
/// `maybms-ql` plugs `repair-key`, `possible`, `certain`, and `conf` in as
/// [`ExtOperator`]s without this crate knowing about them.
#[derive(Clone, Debug)]
pub enum Plan {
    /// Read a named base relation.
    Scan(String),
    /// Keep tuples satisfying a predicate.
    Select {
        /// Input plan.
        input: Box<Plan>,
        /// Selection predicate.
        predicate: Predicate,
    },
    /// Project onto named columns (set semantics).
    Project {
        /// Input plan.
        input: Box<Plan>,
        /// Output column names, in order.
        columns: Vec<String>,
    },
    /// Natural join on all columns shared by name.
    NaturalJoin {
        /// Left input.
        left: Box<Plan>,
        /// Right input.
        right: Box<Plan>,
    },
    /// Set union of union-compatible inputs.
    Union {
        /// Left input.
        left: Box<Plan>,
        /// Right input.
        right: Box<Plan>,
    },
    /// Rename columns via `(old, new)` pairs.
    Rename {
        /// Input plan.
        input: Box<Plan>,
        /// `(old, new)` name pairs.
        renames: Vec<(String, String)>,
    },
    /// An extension operator (see [`ExtOperator`]).
    Ext(Arc<dyn ExtOperator>),
}

impl Plan {
    /// Scan a base relation.
    pub fn scan(name: impl Into<String>) -> Plan {
        Plan::Scan(name.into())
    }

    /// Apply a selection.
    pub fn select(self, predicate: Predicate) -> Plan {
        Plan::Select {
            input: Box::new(self),
            predicate,
        }
    }

    /// Apply a projection. Accepts any iterable of name-like items, so call
    /// sites can pass `["a", "b"]`, a `Vec<String>`, or an iterator without
    /// building a `&[&str]` temporary.
    pub fn project<I, S>(self, columns: I) -> Plan
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Plan::Project {
            input: Box::new(self),
            columns: columns.into_iter().map(Into::into).collect(),
        }
    }

    /// Natural-join with another plan.
    pub fn join(self, right: Plan) -> Plan {
        Plan::NaturalJoin {
            left: Box::new(self),
            right: Box::new(right),
        }
    }

    /// Union with another plan.
    pub fn union(self, right: Plan) -> Plan {
        Plan::Union {
            left: Box::new(self),
            right: Box::new(right),
        }
    }

    /// Rename columns via `(old, new)` pairs; accepts any iterable of
    /// name-like pairs (same rationale as [`Plan::project`]).
    pub fn rename<I, A, B>(self, renames: I) -> Plan
    where
        I: IntoIterator<Item = (A, B)>,
        A: Into<String>,
        B: Into<String>,
    {
        Plan::Rename {
            input: Box::new(self),
            renames: renames
                .into_iter()
                .map(|(o, n)| (o.into(), n.into()))
                .collect(),
        }
    }

    /// Whether the plan's result provably never contains two equal
    /// `(tuple, descriptor)` rows. Derived structurally: the executor
    /// deduplicates after projection, join, and union; selection and
    /// renaming preserve distinctness; a base scan is unknown (u-relations
    /// may hold duplicates), so `false`. Extension operators answer through
    /// [`ExtOperator::props`]. Both the optimizer (redundant-operator
    /// elision) and the executor (dedup elision) consult this.
    pub fn is_distinct(&self) -> bool {
        match self {
            Plan::Scan(_) => false,
            Plan::Select { input, .. } | Plan::Rename { input, .. } => input.is_distinct(),
            Plan::Project { .. } | Plan::NaturalJoin { .. } | Plan::Union { .. } => true,
            Plan::Ext(op) => op.props().distinct_output,
        }
    }

    /// Whether the plan's result is provably a *certain* relation (every
    /// row carries the trivial descriptor, i.e. occurs in every world).
    /// Positive relational algebra preserves certainty — a join of trivial
    /// descriptors conjoins to the trivial descriptor — and the
    /// world-collapsing operators (`possible`/`certain`/`conf`) produce
    /// certain output by construction; a base scan is unknown.
    pub fn is_certain(&self) -> bool {
        match self {
            Plan::Scan(_) => false,
            Plan::Select { input, .. }
            | Plan::Project { input, .. }
            | Plan::Rename { input, .. } => input.is_certain(),
            Plan::NaturalJoin { left, right } | Plan::Union { left, right } => {
                left.is_certain() && right.is_certain()
            }
            Plan::Ext(op) => op.props().certain_output,
        }
    }

    /// The one-line label of this node in the rendered plan tree —
    /// `scan[name]`, `select[pred]`, … — exactly the text `Display` prints
    /// for the node (children excluded). The tracer uses the same labels
    /// for its spans so `EXPLAIN` and `EXPLAIN ANALYZE` trees line up.
    pub fn node_label(&self) -> String {
        match self {
            Plan::Scan(name) => format!("scan[{name}]"),
            Plan::Select { predicate, .. } => format!("select[{predicate}]"),
            Plan::Project { columns, .. } => format!("project[{}]", columns.join(", ")),
            Plan::NaturalJoin { .. } => "natural-join".to_owned(),
            Plan::Union { .. } => "union".to_owned(),
            Plan::Rename { renames, .. } => {
                let pairs: Vec<String> =
                    renames.iter().map(|(o, n)| format!("{o} -> {n}")).collect();
                format!("rename[{}]", pairs.join(", "))
            }
            Plan::Ext(op) => op.describe(),
        }
    }

    /// Direct children of this node (extension operators report theirs via
    /// [`ExtOperator::inputs`]).
    pub fn children(&self) -> Vec<&Plan> {
        match self {
            Plan::Scan(_) => Vec::new(),
            Plan::Select { input, .. }
            | Plan::Project { input, .. }
            | Plan::Rename { input, .. } => vec![input],
            Plan::NaturalJoin { left, right } | Plan::Union { left, right } => {
                vec![left, right]
            }
            Plan::Ext(op) => op.inputs(),
        }
    }

    /// Total number of operator nodes in the tree. A traced run produces at
    /// least one span per node (node ids are execution pre-order indices),
    /// which the trace smoke tests assert against.
    pub fn node_count(&self) -> usize {
        1 + self
            .children()
            .iter()
            .map(|c| c.node_count())
            .sum::<usize>()
    }

    fn fmt_tree(&self, f: &mut fmt::Formatter<'_>, depth: usize) -> fmt::Result {
        for _ in 0..depth {
            f.write_str("  ")?;
        }
        writeln!(f, "{}", self.node_label())?;
        for child in self.children() {
            child.fmt_tree(f, depth + 1)?;
        }
        Ok(())
    }
}

/// An indented operator tree, independent of `Debug` formatting: one
/// operator per line with its parameters, children indented below it.
/// Extension operators contribute their own line via
/// [`ExtOperator::describe`].
impl fmt::Display for Plan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_tree(f, 0)
    }
}
