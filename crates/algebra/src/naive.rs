//! Naive single-world plan evaluation, used inside each enumerated world by
//! the differential tests.

use std::collections::BTreeMap;

use maybms_core::naive as ops;
use maybms_core::{MayError, Relation};

use crate::plan::Plan;

/// Evaluate a plan against one fully instantiated world with the textbook
/// single-world algebra from `maybms_core::naive`.
///
/// Extension operators are rejected: constructs like `possible` or `conf`
/// have *world-set* semantics and cannot be computed inside a single world —
/// their oracles aggregate over the enumeration instead (see
/// `maybms-testkit`).
pub fn eval(plan: &Plan, db: &BTreeMap<String, Relation>) -> Result<Relation, MayError> {
    match plan {
        Plan::Scan(name) => db
            .get(name)
            .cloned()
            .ok_or_else(|| MayError::UnknownRelation(name.clone())),
        Plan::Select { input, predicate } => {
            let r = eval(input, db)?;
            let bound = predicate.bind(r.schema())?;
            Ok(ops::select(&r, |t| bound.matches(t)))
        }
        Plan::Project { input, columns } => ops::project(&eval(input, db)?, columns),
        Plan::NaturalJoin { left, right } => ops::natural_join(&eval(left, db)?, &eval(right, db)?),
        Plan::Union { left, right } => ops::union(&eval(left, db)?, &eval(right, db)?),
        Plan::Rename { input, renames } => ops::rename(&eval(input, db)?, renames),
        Plan::Ext(op) => Err(MayError::Unsupported(format!(
            "operator {} has world-set semantics and cannot run inside a single world",
            op.name()
        ))),
    }
}
