//! Cardinality estimation and the cost model behind the cost-based
//! optimizer phase (see [`crate::optimize::optimize_with_stats`]).
//!
//! Estimates are classical System-R style, computed bottom-up over a
//! [`Plan`] from the per-relation [`RelationStats`] a [`StatsProvider`]
//! serves (in the full system, the `sql` catalog, which collects them at
//! scan/`LET` materialization):
//!
//! * **selections** — independence-assumption selectivities: `c = lit` is
//!   `1/ndv(c)`, column-column equality `1/max(ndv)`, ranges interpolate
//!   against the column's min/max when numeric (else ⅓), conjunctions
//!   multiply, disjunctions combine as `1 − Π(1 − sᵢ)`;
//! * **joins** — distinct-count ratios: `|L ⋈ R| = |L|·|R| / Π_c max(ndv)`
//!   over the shared columns `c` (no shared column means a cross product);
//! * **quantifiers** — output bounds from descriptor density: the
//!   world-collapsing operators emit at most one row per distinct tuple,
//!   `certain` additionally keeps only the `1 − nontrivial_frac` certain
//!   slice (each [`crate::ext::ExtOperator`] refines its own bound through
//!   [`crate::ext::ExtOperator::estimate_rows`]).
//!
//! The cost model charges rows moved plus `n·log n` for the operators that
//! canonically sort (union dedup and the world-collapsing quantifiers);
//! join charges its build side double (hash-table construction) so the
//! planner prefers small build sides. Absolute values are meaningless —
//! only comparisons between candidate plans for the *same* query are.
//!
//! Everything here is estimation-only: nothing in this module rewrites
//! plans, and a missing statistic degrades to a default, never an error.

use std::collections::BTreeMap;

use maybms_core::stats::RelationStats;

use crate::optimize::SchemaProvider;
use crate::plan::Plan;
use crate::predicate::{CmpOp, Operand, Predicate};

/// Serves per-relation statistics to the cost-based phase. Implemented by
/// the `sql` catalog and by plain stats maps (tests, benches).
pub trait StatsProvider {
    /// Statistics of the named base relation, if collected.
    fn relation_stats(&self, name: &str) -> Option<&RelationStats>;

    /// Whether any relation has statistics at all — callers skip the
    /// cost-based phase entirely on a stats-less provider.
    fn has_stats(&self) -> bool;
}

impl StatsProvider for BTreeMap<String, RelationStats> {
    fn relation_stats(&self, name: &str) -> Option<&RelationStats> {
        self.get(name)
    }
    fn has_stats(&self) -> bool {
        !self.is_empty()
    }
}

/// Assumed cardinality of a base relation without statistics.
const DEFAULT_SCAN_ROWS: f64 = 1_000.0;
/// Assumed descriptor density without statistics.
const DEFAULT_DENSITY: f64 = 0.5;
/// Selectivity of a range predicate that cannot be interpolated.
const RANGE_SELECTIVITY: f64 = 1.0 / 3.0;
/// Cardinalities are clamped here so chained cross products stay finite.
const MAX_ROWS: f64 = 1e18;

/// A plan node's estimated output: row count, per-column distinct counts,
/// numeric column ranges, and descriptor density. Columns absent from
/// `ndv` (e.g. the appended `conf` column) are assumed all-distinct.
#[derive(Clone, Debug)]
pub struct CardEst {
    /// Estimated output rows.
    pub rows: f64,
    /// Estimated distinct values per column, keyed by column name.
    pub ndv: BTreeMap<String, f64>,
    /// Numeric `(min, max)` per column, where known.
    pub ranges: BTreeMap<String, (f64, f64)>,
    /// Estimated fraction of rows with a non-trivial descriptor.
    pub nontrivial_frac: f64,
}

impl CardEst {
    /// Distinct-count estimate for one column, clamped to the row count;
    /// unknown columns count as all-distinct.
    pub fn ndv_of(&self, col: &str) -> f64 {
        self.ndv
            .get(col)
            .copied()
            .unwrap_or(self.rows)
            .clamp(1.0, self.rows.max(1.0))
    }

    /// Estimated number of distinct *tuples*: the row count capped by the
    /// product of per-column distinct counts.
    pub fn distinct_tuples(&self) -> f64 {
        let mut d = 1.0f64;
        for col in self.ndv.keys() {
            d = (d * self.ndv_of(col)).min(MAX_ROWS);
        }
        if self.ndv.is_empty() {
            self.rows
        } else {
            d.min(self.rows)
        }
    }
}

/// `n·log₂(n)` with a floor, the sort term of the cost model.
fn sort_cost(n: f64) -> f64 {
    let n = n.max(1.0);
    n * (1.0 + n.max(2.0).log2())
}

/// The estimated cost of one pairwise hash join step: probe the left,
/// build on the right (doubled — table construction), materialize the
/// output.
pub(crate) fn join_step_cost(left_rows: f64, right_rows: f64, out_rows: f64) -> f64 {
    left_rows + 2.0 * right_rows + out_rows
}

/// Set-canonical estimate of a natural join over `leaves` (any subset of a
/// flattened join tree): `Π rows / Π_c max(ndv_c)^(k_c − 1)` over columns
/// `c` shared by `k_c` leaves. Deliberately *order-invariant* — the same
/// leaf set estimates identically regardless of join order — which is what
/// makes the DP in the reorder phase well-defined and its choice stable
/// across re-optimization.
pub(crate) fn join_set_est(leaves: &[&CardEst]) -> CardEst {
    let mut rows = 1.0f64;
    let mut by_col: BTreeMap<&str, Vec<(f64, f64)>> = BTreeMap::new(); // (ndv, rows)
    let mut ranges: BTreeMap<String, (f64, f64)> = BTreeMap::new();
    let mut trivial = 1.0f64;
    for l in leaves {
        rows = (rows * l.rows.max(0.0)).min(MAX_ROWS);
        trivial *= 1.0 - l.nontrivial_frac.clamp(0.0, 1.0);
        for col in l.ndv.keys() {
            by_col
                .entry(col.as_str())
                .or_default()
                .push((l.ndv_of(col), l.rows));
        }
        for (col, &(lo, hi)) in &l.ranges {
            ranges
                .entry(col.clone())
                .and_modify(|(a, b)| {
                    // Shared columns survive the join only inside the
                    // overlap of both sides' ranges.
                    *a = a.max(lo);
                    *b = b.min(hi);
                })
                .or_insert((lo, hi));
        }
    }
    for ndvs in by_col.values() {
        if ndvs.len() > 1 {
            let max_ndv = ndvs.iter().map(|&(d, _)| d).fold(1.0f64, f64::max);
            for _ in 1..ndvs.len() {
                rows /= max_ndv.max(1.0);
            }
        }
    }
    let rows = rows.clamp(0.0, MAX_ROWS);
    let ndv = by_col
        .into_iter()
        .map(|(col, ndvs)| {
            let min_ndv = ndvs.iter().map(|&(d, _)| d).fold(MAX_ROWS, f64::min);
            (col.to_string(), min_ndv.min(rows.max(1.0)))
        })
        .collect();
    CardEst {
        rows,
        ndv,
        ranges,
        nontrivial_frac: 1.0 - trivial,
    }
}

/// Estimate a plan bottom-up, returning the root's [`CardEst`] and the
/// subtree's total estimated cost. Infallible: unknown relations or
/// statistics degrade to defaults.
pub fn plan_cost(
    plan: &Plan,
    schemas: &dyn SchemaProvider,
    stats: &dyn StatsProvider,
) -> (CardEst, f64) {
    match plan {
        Plan::Scan(name) => {
            let est = scan_est(name, schemas, stats);
            let cost = est.rows;
            (est, cost)
        }
        Plan::Select { input, predicate } => {
            let (in_est, in_cost) = plan_cost(input, schemas, stats);
            let sel = selectivity(predicate, &in_est).clamp(0.0, 1.0);
            let rows = in_est.rows * sel;
            let ndv = in_est
                .ndv
                .iter()
                .map(|(c, &d)| (c.clone(), d.min(rows.max(1.0))))
                .collect();
            let est = CardEst {
                rows,
                ndv,
                ranges: in_est.ranges.clone(),
                nontrivial_frac: in_est.nontrivial_frac,
            };
            (est, in_cost + in_est.rows)
        }
        Plan::Project { input, columns } => {
            let (in_est, in_cost) = plan_cost(input, schemas, stats);
            let kept = CardEst {
                rows: in_est.rows,
                ndv: columns
                    .iter()
                    .map(|c| (c.clone(), in_est.ndv_of(c)))
                    .collect(),
                ranges: columns
                    .iter()
                    .filter_map(|c| in_est.ranges.get(c).map(|r| (c.clone(), *r)))
                    .collect(),
                nontrivial_frac: in_est.nontrivial_frac,
            };
            // Certain duplicates collapse to one row per distinct tuple;
            // uncertain duplicates can carry distinct descriptors and
            // survive the (tuple, descriptor) dedup.
            let d = kept.distinct_tuples();
            let f = in_est.nontrivial_frac.clamp(0.0, 1.0);
            let rows = (d + (in_est.rows - d).max(0.0) * f).min(in_est.rows);
            let est = CardEst { rows, ..kept };
            (est, in_cost + 2.0 * in_est.rows)
        }
        Plan::Rename { input, renames } => {
            let (in_est, in_cost) = plan_cost(input, schemas, stats);
            let renamed = |name: &str| -> String {
                renames
                    .iter()
                    .find(|(old, _)| old == name)
                    .map(|(_, new)| new.clone())
                    .unwrap_or_else(|| name.to_string())
            };
            let est = CardEst {
                rows: in_est.rows,
                ndv: in_est.ndv.iter().map(|(c, &d)| (renamed(c), d)).collect(),
                ranges: in_est
                    .ranges
                    .iter()
                    .map(|(c, &r)| (renamed(c), r))
                    .collect(),
                nontrivial_frac: in_est.nontrivial_frac,
            };
            (est, in_cost)
        }
        Plan::NaturalJoin { left, right } => {
            let (l, lc) = plan_cost(left, schemas, stats);
            let (r, rc) = plan_cost(right, schemas, stats);
            let est = join_set_est(&[&l, &r]);
            let cost = lc + rc + join_step_cost(l.rows, r.rows, est.rows);
            (est, cost)
        }
        Plan::Union { left, right } => {
            let (l, lc) = plan_cost(left, schemas, stats);
            let (r, rc) = plan_cost(right, schemas, stats);
            let rows = (l.rows + r.rows).min(MAX_ROWS);
            let mut ndv = l.ndv.clone();
            for (c, &d) in &r.ndv {
                let e = ndv.entry(c.clone()).or_insert(0.0);
                *e = (*e + d).min(rows.max(1.0));
            }
            let mut ranges = l.ranges.clone();
            for (c, &(lo, hi)) in &r.ranges {
                ranges
                    .entry(c.clone())
                    .and_modify(|(a, b)| {
                        *a = a.min(lo);
                        *b = b.max(hi);
                    })
                    .or_insert((lo, hi));
            }
            let total = (l.rows + r.rows).max(1.0);
            let est = CardEst {
                rows,
                ndv,
                ranges,
                nontrivial_frac: (l.rows * l.nontrivial_frac + r.rows * r.nontrivial_frac) / total,
            };
            let cost = lc + rc + sort_cost(rows);
            (est, cost)
        }
        Plan::Ext(op) => {
            let mut in_cost = 0.0;
            let mut in_est: Option<CardEst> = None;
            for input in op.inputs() {
                let (e, c) = plan_cost(input, schemas, stats);
                in_cost += c;
                if in_est.is_none() {
                    in_est = Some(e);
                }
            }
            let in_est = in_est.unwrap_or(CardEst {
                rows: 0.0,
                ndv: BTreeMap::new(),
                ranges: BTreeMap::new(),
                nontrivial_frac: 0.0,
            });
            let props = op.props();
            let rows = op
                .estimate_rows(
                    in_est.rows,
                    in_est.distinct_tuples(),
                    in_est.nontrivial_frac,
                )
                .clamp(0.0, MAX_ROWS);
            let est = CardEst {
                rows,
                ndv: in_est
                    .ndv
                    .iter()
                    .map(|(c, &d)| (c.clone(), d.min(rows.max(1.0))))
                    .collect(),
                ranges: in_est.ranges.clone(),
                nontrivial_frac: if props.certain_output {
                    0.0
                } else {
                    in_est.nontrivial_frac
                },
            };
            // Every ql operator canonical-sorts its input; that dominates.
            let cost = in_cost + sort_cost(in_est.rows) + rows;
            (est, cost)
        }
    }
}

/// Estimated output rows for every node of `plan`, in pre-order (node
/// before children, children left to right) — the order both the plan
/// pretty-printer and the tracer's node spans use. This is what `EXPLAIN`
/// and `EXPLAIN ANALYZE` thread into their renderings as `est_rows=`.
pub fn estimate_preorder(
    plan: &Plan,
    schemas: &dyn SchemaProvider,
    stats: &dyn StatsProvider,
) -> Vec<f64> {
    let mut out = Vec::with_capacity(plan.node_count());
    walk_preorder(plan, schemas, stats, &mut out);
    out
}

fn walk_preorder(
    plan: &Plan,
    schemas: &dyn SchemaProvider,
    stats: &dyn StatsProvider,
    out: &mut Vec<f64>,
) {
    let (est, _) = plan_cost(plan, schemas, stats);
    out.push(est.rows);
    for child in plan.children() {
        walk_preorder(child, schemas, stats, out);
    }
}

fn scan_est(name: &str, schemas: &dyn SchemaProvider, stats: &dyn StatsProvider) -> CardEst {
    if let Some(rs) = stats.relation_stats(name) {
        let rows = rs.rows as f64;
        return CardEst {
            rows,
            ndv: rs
                .columns
                .iter()
                .map(|(c, cs)| {
                    (
                        c.clone(),
                        cs.distinct.max(if rows > 0.0 { 1.0 } else { 0.0 }),
                    )
                })
                .collect(),
            ranges: rs
                .columns
                .iter()
                .filter_map(|(c, cs)| {
                    let (lo, hi) = cs.min_max.as_ref()?;
                    Some((c.clone(), (lo.as_f64()?, hi.as_f64()?)))
                })
                .collect(),
            nontrivial_frac: rs.nontrivial_frac,
        };
    }
    // No statistics: default cardinality, all columns distinct.
    let ndv = schemas
        .base_schema(name)
        .map(|s| {
            s.names()
                .into_iter()
                .map(|n| (n.to_string(), DEFAULT_SCAN_ROWS))
                .collect()
        })
        .unwrap_or_default();
    CardEst {
        rows: DEFAULT_SCAN_ROWS,
        ndv,
        ranges: BTreeMap::new(),
        nontrivial_frac: DEFAULT_DENSITY,
    }
}

/// Independence-assumption selectivity of a predicate against an input
/// estimate.
fn selectivity(pred: &Predicate, est: &CardEst) -> f64 {
    match pred {
        Predicate::True => 1.0,
        Predicate::Compare { op, lhs, rhs } => compare_selectivity(*op, lhs, rhs, est),
        Predicate::And(ps) => ps.iter().map(|p| selectivity(p, est)).product(),
        Predicate::Or(ps) => {
            1.0 - ps
                .iter()
                .map(|p| 1.0 - selectivity(p, est))
                .product::<f64>()
        }
        Predicate::Not(p) => 1.0 - selectivity(p, est),
    }
}

fn compare_selectivity(op: CmpOp, lhs: &Operand, rhs: &Operand, est: &CardEst) -> f64 {
    let eq = |sel_eq: f64| match op {
        CmpOp::Eq => sel_eq,
        CmpOp::Ne => 1.0 - sel_eq,
        _ => RANGE_SELECTIVITY,
    };
    match (lhs, rhs) {
        (Operand::Column(c), Operand::Literal(v)) | (Operand::Literal(v), Operand::Column(c)) => {
            match op {
                CmpOp::Eq | CmpOp::Ne => eq(1.0 / est.ndv_of(c).max(1.0)),
                CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge => {
                    // Interpolate against the column range when numeric;
                    // orient so `fraction` is always P(column < literal).
                    let flipped = matches!(lhs, Operand::Literal(_));
                    match (est.ranges.get(c.as_str()), v.as_f64()) {
                        (Some(&(lo, hi)), Some(x)) if hi > lo => {
                            let below = ((x - lo) / (hi - lo)).clamp(0.0, 1.0);
                            let wants_below = matches!(op, CmpOp::Lt | CmpOp::Le) != flipped;
                            if wants_below {
                                below
                            } else {
                                1.0 - below
                            }
                        }
                        _ => RANGE_SELECTIVITY,
                    }
                }
            }
        }
        (Operand::Column(a), Operand::Column(b)) => {
            eq(1.0 / est.ndv_of(a).max(est.ndv_of(b)).max(1.0))
        }
        (Operand::Literal(_), Operand::Literal(_)) => eq(0.5),
    }
}

#[cfg(test)]
mod tests {
    use std::collections::BTreeMap;

    use maybms_core::stats::{ColumnStats, RelationStats};
    use maybms_core::{Schema, Value, ValueType};

    use super::*;
    use crate::predicate::{col, lit};

    type ColSpec<'a> = (&'a str, f64, Option<(i64, i64)>);

    fn rel_stats(rows: u64, cols: &[ColSpec]) -> RelationStats {
        RelationStats {
            rows,
            columns: cols
                .iter()
                .map(|(name, ndv, mm)| {
                    (
                        name.to_string(),
                        ColumnStats {
                            distinct: *ndv,
                            min_max: mm.map(|(lo, hi)| (Value::Int(lo), Value::Int(hi))),
                        },
                    )
                })
                .collect(),
            nontrivial_frac: 0.0,
            mean_alternatives: 0.0,
        }
    }

    fn fixture() -> (BTreeMap<String, Schema>, BTreeMap<String, RelationStats>) {
        let mut schemas = BTreeMap::new();
        let mut stats = BTreeMap::new();
        schemas.insert(
            "r1".to_string(),
            Schema::of(&[("a", ValueType::Int), ("b", ValueType::Int)]).unwrap(),
        );
        schemas.insert(
            "r2".to_string(),
            Schema::of(&[("b", ValueType::Int), ("c", ValueType::Int)]).unwrap(),
        );
        stats.insert(
            "r1".to_string(),
            rel_stats(
                10_000,
                &[
                    ("a", 10_000.0, Some((0, 9_999))),
                    ("b", 100.0, Some((0, 99))),
                ],
            ),
        );
        stats.insert(
            "r2".to_string(),
            rel_stats(
                1_000,
                &[("b", 100.0, Some((0, 99))), ("c", 1_000.0, Some((0, 999)))],
            ),
        );
        (schemas, stats)
    }

    #[test]
    fn equality_selectivity_uses_distinct_counts() {
        let (schemas, stats) = fixture();
        let plan = Plan::scan("r1").select(Predicate::eq(col("b"), lit(7i64)));
        let (est, _) = plan_cost(&plan, &schemas, &stats);
        assert!((est.rows - 100.0).abs() < 1e-6, "rows = {}", est.rows);
    }

    #[test]
    fn range_selectivity_interpolates() {
        let (schemas, stats) = fixture();
        let plan = Plan::scan("r1").select(Predicate::lt(col("a"), lit(1_000i64)));
        let (est, _) = plan_cost(&plan, &schemas, &stats);
        assert!(
            (est.rows - 1_000.0).abs() < 5.0,
            "expected ~10% of rows, got {}",
            est.rows
        );
    }

    #[test]
    fn join_rows_follow_distinct_count_ratio() {
        let (schemas, stats) = fixture();
        let plan = Plan::scan("r1").join(Plan::scan("r2"));
        let (est, _) = plan_cost(&plan, &schemas, &stats);
        // 10⁴ · 10³ / max(100, 100) = 10⁵
        assert!((est.rows - 100_000.0).abs() < 1e-6, "rows = {}", est.rows);
    }

    #[test]
    fn join_set_estimate_is_order_invariant() {
        let (schemas, stats) = fixture();
        let (a, _) = plan_cost(&Plan::scan("r1"), &schemas, &stats);
        let (b, _) = plan_cost(&Plan::scan("r2"), &schemas, &stats);
        let ab = join_set_est(&[&a, &b]);
        let ba = join_set_est(&[&b, &a]);
        assert_eq!(ab.rows, ba.rows);
        assert_eq!(ab.ndv, ba.ndv);
    }

    #[test]
    fn stats_less_scans_fall_back_to_defaults() {
        let (schemas, _) = fixture();
        let stats: BTreeMap<String, RelationStats> = BTreeMap::new();
        let (est, _) = plan_cost(&Plan::scan("r1"), &schemas, &stats);
        assert_eq!(est.rows, DEFAULT_SCAN_ROWS);
        assert!(est.ndv.contains_key("a"));
    }

    #[test]
    fn preorder_estimates_cover_every_node() {
        let (schemas, stats) = fixture();
        let plan = Plan::scan("r1")
            .join(Plan::scan("r2"))
            .select(Predicate::eq(col("c"), lit(1i64)))
            .project(["a"]);
        let ests = estimate_preorder(&plan, &schemas, &stats);
        assert_eq!(ests.len(), plan.node_count());
        // Pre-order: project, select, join, scan r1, scan r2.
        assert_eq!(ests[3], 10_000.0);
        assert_eq!(ests[4], 1_000.0);
    }
}
