//! The extension-operator interface that keeps the plan IR open.

use std::fmt;

use maybms_core::columnar::ColumnarURelation;
use maybms_core::{MayError, Schema};

use crate::eval::EvalCtx;
use crate::plan::Plan;

/// Algebraic properties of an extension operator, consulted by the logical
/// optimizer ([`mod@crate::optimize`]). The defaults are maximally conservative
/// — an operator that declares nothing is treated as an opaque barrier no
/// rewrite crosses — so implementing [`ExtOperator::props`] is opt-in and
/// omitting it is always sound, merely slower.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExtProps {
    /// Selections commute with the operator: `σ_p(op(R)) = op(σ_p(R))`
    /// whenever every column of `p` exists in the operator's *input* schema.
    /// True for `possible`/`certain` (they decide per tuple whether it
    /// occurs in some/every world) and for `conf` (a tuple's confidence
    /// depends only on its own descriptors, so dropping other tuples first
    /// changes nothing — and the input-schema guard keeps predicates over
    /// the appended `conf` column from crossing).
    ///
    /// Only operators that are deterministic and mint no components may
    /// declare either commutation flag: a commuted rewrite is inherently
    /// per-occurrence, so a shared (`Arc`-identical) node can split into
    /// distinct rebuilt nodes that the executor evaluates separately.
    pub commutes_with_select: bool,
    /// Projections commute with the operator: `π_c(op(R)) = op(π_c(R))`.
    /// True for `possible` (a projected tuple is in *some* world iff some
    /// extension of it is); **false for `certain`** — two rows differing
    /// only in a dropped column, under descriptors that jointly cover all
    /// worlds, make the projected tuple certain while neither full tuple
    /// is — and false for `conf` (projection changes which rows count as
    /// one tuple) and `repair-key` (grouping and weights read columns a
    /// projection could drop). The sharing caveat on
    /// [`commutes_with_select`](ExtProps::commutes_with_select) applies.
    pub commutes_with_project: bool,
    /// The operator's input must stay a normalized certain relation
    /// (duplicate-free, every descriptor trivial) — `repair-key`'s
    /// contract. The optimizer refuses any input rewrite that cannot be
    /// shown to preserve provable certainty.
    pub requires_normalized_input: bool,
    /// The output never contains two equal `(tuple, descriptor)` rows.
    pub distinct_output: bool,
    /// Every output row carries the trivial descriptor (the result is a
    /// certain relation).
    pub certain_output: bool,
    /// On an input that is provably certain and duplicate-free the operator
    /// is the identity (up to row order) and can be elided: `possible` and
    /// `certain` of a certain set are that set.
    pub identity_on_certain: bool,
    /// The operator distributes over union *as a set*:
    /// `op(A ∪ B) ≡ op(A) ∪ op(B)` (the executor's union output is
    /// duplicate-free, so set equality is what plan equivalence means
    /// here). True for `possible` — a tuple is possible in a union iff it
    /// is possible in some side; **false for `certain`** (a tuple can be
    /// certain in `A ∪ B` with neither side covering all worlds alone),
    /// for `conf` (probabilities of the sides do not combine by union),
    /// and for `repair-key` (grouping is global). Consulted only by the
    /// cost-based phase: distributing is a pure locality/size trade, so it
    /// fires only where the estimates say the split is cheaper.
    pub distributes_over_union: bool,
}

/// An operator plugged into the plan IR from a higher layer.
///
/// Extension operators receive their already-evaluated inputs plus the
/// evaluation context, which gives mutable access to the component set —
/// that is what lets `repair-key` *introduce* new components (uncertainty)
/// and lets `certain`/`conf` consult component probabilities.
///
/// # The columnar ABI
///
/// Inputs and results are [`ColumnarURelation`]s: one typed column vector
/// per attribute plus the dense descriptor column. Their [`maybms_core::DescId`]
/// handles resolve against `ctx.pool` and their string cells against
/// `ctx.strings` — implementations intern through those pools when minting
/// descriptors or strings, and must not assume handles are canonical for
/// rows produced by joins (use `ctx.pool.same_descriptor` / term access for
/// content comparisons). Row order of the result is part of the operator's
/// contract: it must be deterministic for equal inputs, because component
/// minting (e.g. by `repair-key`) follows it.
pub trait ExtOperator: fmt::Debug + Send + Sync {
    /// Operator name, for diagnostics.
    fn name(&self) -> &'static str;

    /// One-line description including the operator's parameters, used by the
    /// plan tree printer (`Display` for [`Plan`]). Defaults to [`name`].
    ///
    /// [`name`]: ExtOperator::name
    fn describe(&self) -> String {
        self.name().to_string()
    }

    /// Render this operator as MayQL query text, given its input plans
    /// already rendered as MayQL *from-items* (a bare relation name or a
    /// parenthesized subquery), in [`inputs`] order. Returning `None` (the
    /// default) marks the operator as having no textual form; the MayQL
    /// unparser reports it as unsupported. Implementations must produce text
    /// that parses and lowers back to an equivalent operator — the roundtrip
    /// property the `maybms-sql` tests enforce.
    ///
    /// [`inputs`]: ExtOperator::inputs
    fn unparse_mayql(&self, inputs: &[String]) -> Option<String> {
        let _ = inputs;
        None
    }

    /// The operator's algebraic properties (see [`ExtProps`]). The default
    /// declares nothing, which makes the operator an opaque barrier to the
    /// optimizer.
    fn props(&self) -> ExtProps {
        ExtProps::default()
    }

    /// Rebuild this operator (same parameters) over new input plans, in
    /// [`inputs`] order. Returning `None` (the default) marks the operator
    /// opaque to plan rewrites: the optimizer will neither optimize its
    /// inputs nor commute anything across it. Implementations must return a
    /// plan that evaluates exactly like the original on inputs that evaluate
    /// exactly like the originals.
    ///
    /// [`inputs`]: ExtOperator::inputs
    fn with_inputs(&self, inputs: Vec<Plan>) -> Option<Plan> {
        let _ = inputs;
        None
    }

    /// Plan-time cardinality hint for the cost-based phase: estimated output
    /// rows given the estimated input rows, the estimated number of distinct
    /// input tuples, and the estimated fraction of rows with non-trivial
    /// descriptors. The default follows [`ExtProps::distinct_output`]
    /// (world-collapsing operators emit one row per distinct tuple);
    /// operators with tighter bounds override — `certain` keeps only tuples
    /// whose descriptors cover all worlds, `repair-key` is row-preserving.
    fn estimate_rows(&self, input_rows: f64, input_distinct: f64, nontrivial_frac: f64) -> f64 {
        let _ = nontrivial_frac;
        if self.props().distinct_output {
            input_distinct
        } else {
            input_rows
        }
    }

    /// Plan-time self-tuning hook, called once per node by the cost-based
    /// phase with the node's estimated input rows and descriptor density.
    /// An operator may return a replacement for itself (over the *same*
    /// inputs) with runtime knobs pinned — e.g. `conf(eps, delta)` freezes
    /// its exact/sampling cutover into the plan so execution no longer
    /// consults the environment. Implementations must be idempotent
    /// (returning `None` once the knob is pinned) and semantics-preserving
    /// under an unchanged environment; `None` (the default) keeps the node.
    fn plan_time_tuned(&self, est_input_rows: f64, est_nontrivial_frac: f64) -> Option<Plan> {
        let _ = (est_input_rows, est_nontrivial_frac);
        None
    }

    /// Whether evaluating this operator may mint new components into the
    /// world set. Component minting is the *only* order-observable side
    /// effect of evaluation (component ids are numbered in minting order),
    /// so the executor consults this before reordering sibling subtree
    /// evaluation — e.g. building a sideways-passed Bloom filter from the
    /// join's build side before evaluating the probe side. The default is
    /// conservatively `true`; pure operators (`possible`, `certain`,
    /// `conf`) override to `false`.
    fn mints_components(&self) -> bool {
        true
    }

    /// The operator's input plans, evaluated before [`ExtOperator::eval`] is
    /// called.
    fn inputs(&self) -> Vec<&Plan>;

    /// The output schema, given the input schemas (used for plan-level
    /// schema inference).
    fn output_schema(&self, inputs: &[Schema]) -> Result<Schema, MayError>;

    /// Evaluate on the columnar WSD representation (see the trait docs for
    /// the ABI).
    ///
    /// Implementations may fan work out over morsels: `ctx.par` carries the
    /// run's thread budget (gate stages on
    /// [`ParCfg::workers_for`](maybms_core::ParCfg::workers_for)) and
    /// `ctx.par_stats` the counters to report into. Parallel implementations
    /// must stay deterministic — byte-identical output for every thread
    /// count; mint descriptors through per-task
    /// [`PoolShard`](maybms_core::intern::PoolShard)s absorbed in task
    /// order, never through a shared lock.
    fn eval(
        &self,
        ctx: &mut EvalCtx<'_>,
        inputs: Vec<ColumnarURelation>,
    ) -> Result<ColumnarURelation, MayError>;
}
