//! The extension-operator interface that keeps the plan IR open.

use std::fmt;

use maybms_core::{MayError, Schema, URelation};

use crate::eval::EvalCtx;
use crate::plan::Plan;

/// An operator plugged into the plan IR from a higher layer.
///
/// Extension operators receive their already-evaluated inputs plus the
/// evaluation context, which gives mutable access to the component set —
/// that is what lets `repair-key` *introduce* new components (uncertainty)
/// and lets `certain`/`conf` consult component probabilities.
pub trait ExtOperator: fmt::Debug + Send + Sync {
    /// Operator name, for diagnostics.
    fn name(&self) -> &'static str;

    /// The operator's input plans, evaluated before [`ExtOperator::eval`] is
    /// called.
    fn inputs(&self) -> Vec<&Plan>;

    /// The output schema, given the input schemas (used for plan-level
    /// schema inference).
    fn output_schema(&self, inputs: &[Schema]) -> Result<Schema, MayError>;

    /// Evaluate on the WSD representation.
    fn eval(&self, ctx: &mut EvalCtx<'_>, inputs: Vec<URelation>) -> Result<URelation, MayError>;
}
