//! The extension-operator interface that keeps the plan IR open.

use std::fmt;

use maybms_core::columnar::ColumnarURelation;
use maybms_core::{MayError, Schema};

use crate::eval::EvalCtx;
use crate::plan::Plan;

/// An operator plugged into the plan IR from a higher layer.
///
/// Extension operators receive their already-evaluated inputs plus the
/// evaluation context, which gives mutable access to the component set —
/// that is what lets `repair-key` *introduce* new components (uncertainty)
/// and lets `certain`/`conf` consult component probabilities.
///
/// # The columnar ABI
///
/// Inputs and results are [`ColumnarURelation`]s: one typed column vector
/// per attribute plus the dense descriptor column. Their [`maybms_core::DescId`]
/// handles resolve against `ctx.pool` and their string cells against
/// `ctx.strings` — implementations intern through those pools when minting
/// descriptors or strings, and must not assume handles are canonical for
/// rows produced by joins (use `ctx.pool.same_descriptor` / term access for
/// content comparisons). Row order of the result is part of the operator's
/// contract: it must be deterministic for equal inputs, because component
/// minting (e.g. by `repair-key`) follows it.
pub trait ExtOperator: fmt::Debug + Send + Sync {
    /// Operator name, for diagnostics.
    fn name(&self) -> &'static str;

    /// One-line description including the operator's parameters, used by the
    /// plan tree printer (`Display` for [`Plan`]). Defaults to [`name`].
    ///
    /// [`name`]: ExtOperator::name
    fn describe(&self) -> String {
        self.name().to_string()
    }

    /// Render this operator as MayQL query text, given its input plans
    /// already rendered as MayQL *from-items* (a bare relation name or a
    /// parenthesized subquery), in [`inputs`] order. Returning `None` (the
    /// default) marks the operator as having no textual form; the MayQL
    /// unparser reports it as unsupported. Implementations must produce text
    /// that parses and lowers back to an equivalent operator — the roundtrip
    /// property the `maybms-sql` tests enforce.
    ///
    /// [`inputs`]: ExtOperator::inputs
    fn unparse_mayql(&self, inputs: &[String]) -> Option<String> {
        let _ = inputs;
        None
    }

    /// The operator's input plans, evaluated before [`ExtOperator::eval`] is
    /// called.
    fn inputs(&self) -> Vec<&Plan>;

    /// The output schema, given the input schemas (used for plan-level
    /// schema inference).
    fn output_schema(&self, inputs: &[Schema]) -> Result<Schema, MayError>;

    /// Evaluate on the columnar WSD representation (see the trait docs for
    /// the ABI).
    fn eval(
        &self,
        ctx: &mut EvalCtx<'_>,
        inputs: Vec<ColumnarURelation>,
    ) -> Result<ColumnarURelation, MayError>;
}
