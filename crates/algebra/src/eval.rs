//! The WSD-level executor: evaluates plans on u-relations without expanding
//! worlds.
//!
//! # The columnar, selection-vector execution core
//!
//! Operators do not shuttle row-oriented [`URelation`]s (which would
//! deep-clone every tuple and every descriptor term vector at every step),
//! nor per-row `(Cow<Tuple>, DescId)` pairs as earlier revisions did.
//! Instead they evaluate on `Batch`es over the columnar form of
//! `maybms-core`: one typed [`ColumnVec`] per attribute plus a dense
//! [`DescId`] column, with an optional **selection vector** of row ids on
//! top. Strings are dictionary codes into a run-global
//! [`StrPool`] and descriptors are handles into a run-global
//! [`DescriptorPool`] — both owned by the [`EvalCtx`] — so equality anywhere
//! in the executor is an integer compare. Concretely:
//!
//! * **Scan** borrows the pre-converted columnar relation (base relations
//!   are converted once per run, up front) — no per-operator copies.
//! * **Select** is a predicate *sweep*: the bound predicate is evaluated
//!   cell-wise over the input's rows and emits a selection vector. No row
//!   or column is materialized.
//! * **Project** and **Rename** are column-pointer shuffles: projection
//!   moves column references into the output order (set semantics enforced
//!   by a selection-vector dedup), renaming swaps the schema.
//! * **NaturalJoin** builds a flat `ChainedIndex` over the build side's
//!   key columns (hashing cells in place — no key tuples), probes with the
//!   left key cells, verifies candidates column-wise, conjoins descriptors
//!   through the pool, and emits **late-materialized** output columns: each
//!   output column is the input column plus a shared rowid indirection
//!   (`LazyCol`), so the join moves no cell data at all.
//! * **Union** concatenates column-wise (a dense `memcpy`-style extend when
//!   no selection or indirection is pending) and dedups via a fresh
//!   selection vector.
//! * **Dedup** (after project/join/union) hashes rows cell-wise — reading
//!   through the rowid views — into a `ChainedIndex` and emits the
//!   selection vector of first occurrences; it never rebuilds columns.
//!
//! # Late materialization
//!
//! A join output column is a `LazyCol`: the input column plus an optional
//! `Arc`'d rowid vector (virtual row `i` lives at physical row `ids[i]`).
//! Stacked joins *compose* indirections (memoized per distinct input
//! vector) instead of gathering, so a k-way join chain performs **one**
//! gather per source column — fused with the pending selection vector at
//! the next pipeline breaker (`Batch::into_dense_parts`: union inputs,
//! extension-operator inputs, the final emit) — instead of k. All sweeps
//! (predicates, row hashing, join keys) read through [`ColView`]s, which
//! fold the indirection per cell access. `MAYBMS_LATE_MAT=0` restores
//! eager per-join gathers; results are byte-identical either way.
//!
//! # Sideways information passing (SIP)
//!
//! When a join's build (right) side turns out small (its *actual* row
//! count, known at runtime, is at most the [`crate::sip`] cutoff) and the
//! mint guard allows evaluating it first, the join builds a
//! [`BlockedBloom`] over the build side's key cells and registers it
//! against a node of the probe subtree (chosen by `sip_target` in [`crate::sip`]);
//! when that node's batch is produced, rows whose key cells cannot match
//! any build row are pruned before they flow any further. False positives
//! only keep rows the join itself drops, and pruning is class-closed under
//! set-semantics dedup, so results are byte-identical with `MAYBMS_SIP=0`
//! or `1`. Filters cascade: a pruned build side seeds the next filter down
//! a join chain.
//!
//! Schemas are validated once per operator when the output schema is
//! derived. Extension operators (`repair-key`, `conf`, …) speak the
//! columnar ABI too: [`crate::ext::ExtOperator::eval`] receives and returns
//! [`ColumnarURelation`]s whose descriptors/strings live in the context's
//! pools. Only the final result is converted back to a row-oriented
//! [`URelation`], at the boundary of [`run`].

use std::borrow::Cow;
use std::collections::{BTreeMap, BTreeSet};
use std::hash::{BuildHasher, Hasher};
use std::sync::Arc;

use maybms_core::bloom::BlockedBloom;
use maybms_core::columnar::{ColView, ColumnVec, ColumnarURelation, StrPool};
use maybms_core::intern::ShardDelta;
use maybms_core::obs::{metrics, ObsCounters, QueryTrace, SpanId, Tracer};
use maybms_core::parallel::{chunk_ranges, run_tasks};
use maybms_core::{
    ComponentSet, ConfStats, DescId, DescriptorPool, FxBuildHasher, FxHashMap, MayError, ParCfg,
    ParStats, PoolStats, Schema, URelation, WorldSet,
};

use crate::plan::Plan;
use crate::sip::{plan_mints, shared_key_names, sip_target, SipFilter, SipStats, SIP_K};

/// Environment knob gating sideways information passing: any value other
/// than `0` (including unset) enables it.
pub const SIP_ENV: &str = "MAYBMS_SIP";

/// Environment knob gating late materialization: any value other than `0`
/// (including unset) enables it.
pub const LATE_MAT_ENV: &str = "MAYBMS_LATE_MAT";

/// `true` unless the environment variable is set to `0` (on-by-default
/// knob convention, matching `MAYBMS_COST_OPT`).
fn env_on(key: &str) -> bool {
    std::env::var(key).map_or(true, |v| v.trim() != "0")
}

/// The executor's run configuration: the thread budget plus the execution
/// knobs. [`ExecCfg::from_env`] reads everything from the environment
/// (`MAYBMS_THREADS`, [`SIP_ENV`], [`LATE_MAT_ENV`]); every knob
/// combination produces byte-identical results — the knobs trade time, not
/// answers.
#[derive(Clone, Copy, Debug)]
pub struct ExecCfg {
    /// Worker-thread budget (see [`ParCfg`]).
    pub par: ParCfg,
    /// Sideways information passing: push Bloom filters from selective join
    /// build sides into probe subtrees.
    pub sip: bool,
    /// Late materialization: join outputs carry rowid indirections; gathers
    /// are fused at pipeline breakers.
    pub late_mat: bool,
}

impl ExecCfg {
    /// Read the whole configuration from the environment.
    pub fn from_env() -> ExecCfg {
        ExecCfg::with_par(ParCfg::from_env())
    }

    /// An explicit thread budget with the knobs from the environment.
    pub fn with_par(par: ParCfg) -> ExecCfg {
        ExecCfg {
            par,
            sip: env_on(SIP_ENV),
            late_mat: env_on(LATE_MAT_ENV),
        }
    }
}

/// Evaluation context handed to operators: the base relations (read-only),
/// the component set (mutable, so extension operators like `repair-key` can
/// mint new components), and the run's interning pools.
pub struct EvalCtx<'a> {
    /// The base u-relations, by name.
    pub relations: &'a BTreeMap<String, URelation>,
    /// The components of the world set.
    pub components: &'a mut ComponentSet,
    /// The run's descriptor interner. Every [`DescId`] flowing through the
    /// executor — including those inside extension-operator inputs and
    /// results — resolves against this pool.
    pub pool: DescriptorPool,
    /// The run's string dictionary. Every string cell of every columnar
    /// relation in the run is a code into this pool.
    pub strings: StrPool,
    /// The run's parallelism configuration. Operators (including extension
    /// operators) consult [`ParCfg::workers_for`] before fanning a stage out
    /// over morsels; results are deterministic for every thread count.
    pub par: ParCfg,
    /// Parallelism counters accumulated across the run's stages.
    pub par_stats: ParStats,
    /// Confidence-solver counters accumulated across the run's `conf`
    /// evaluations (exact and sampled groups, draws, largest group).
    pub conf_stats: ConfStats,
    /// The run's span recorder. Disabled (every call a cheap no-op) except
    /// under [`run_traced`]; extension operators may record sub-phase
    /// events through it ([`Tracer::now`] / [`Tracer::event`]).
    pub tracer: Tracer,
    /// Whether sideways information passing is enabled for this run.
    pub sip: bool,
    /// Whether join outputs are late-materialized for this run.
    pub late_mat: bool,
    /// Memoized results of extension operators, keyed by `Arc` identity.
    /// A shared (cloned) `repair-key` subtree must evaluate *once* per run:
    /// re-running it would mint fresh components for each occurrence and
    /// silently decorrelate what the plan author shares deliberately.
    ext_cache: FxHashMap<usize, ColumnarURelation>,
    /// Dedup sweeps skipped because a plan property proved them redundant
    /// (surfaced through [`ExecStats::dedups_elided`]).
    dedups_elided: usize,
    /// SIP filters pending application, keyed by target plan-node address
    /// (plan children are boxed, so node addresses are stable and unique
    /// for the duration of a run). Several joins may target the same node.
    sip_filters: FxHashMap<usize, Vec<SipFilter>>,
    /// SIP counters accumulated across the run.
    sip_stats: SipStats,
}

impl<'a> EvalCtx<'a> {
    /// Build a fresh context (with an empty extension-operator memo and
    /// fresh interning pools). The thread budget and execution knobs come
    /// from the environment ([`ExecCfg::from_env`]); use
    /// [`EvalCtx::with_par`] or [`EvalCtx::with_exec`] to pass them
    /// explicitly.
    pub fn new(
        relations: &'a BTreeMap<String, URelation>,
        components: &'a mut ComponentSet,
    ) -> Self {
        EvalCtx::with_exec(relations, components, ExecCfg::from_env())
    }

    /// [`EvalCtx::new`] with an explicit parallelism configuration (the
    /// other execution knobs come from the environment).
    pub fn with_par(
        relations: &'a BTreeMap<String, URelation>,
        components: &'a mut ComponentSet,
        par: ParCfg,
    ) -> Self {
        EvalCtx::with_exec(relations, components, ExecCfg::with_par(par))
    }

    /// [`EvalCtx::new`] with an explicit execution configuration.
    pub fn with_exec(
        relations: &'a BTreeMap<String, URelation>,
        components: &'a mut ComponentSet,
        cfg: ExecCfg,
    ) -> Self {
        EvalCtx {
            relations,
            components,
            pool: DescriptorPool::new(),
            strings: StrPool::new(),
            par: cfg.par,
            par_stats: ParStats::default(),
            conf_stats: ConfStats::default(),
            tracer: Tracer::disabled(),
            sip: cfg.sip,
            late_mat: cfg.late_mat,
            ext_cache: FxHashMap::default(),
            dedups_elided: 0,
            sip_filters: FxHashMap::default(),
            sip_stats: SipStats::default(),
        }
    }

    /// Snapshot the counters the tracer attributes to spans. Only called on
    /// the enabled path (span enter/exit), never per row.
    fn counters_now(&self) -> ObsCounters {
        let pool = self.pool.stats();
        ObsCounters {
            morsels: self.par_stats.morsels,
            shard_entries: self.par_stats.shard_entries,
            merge_nanos: self.par_stats.merge_nanos,
            intern_calls: pool.intern_calls,
            intern_hits: pool.intern_hits,
            conjoin_calls: pool.conjoin_calls,
            exact_groups: self.conf_stats.exact_groups,
            sampled_groups: self.conf_stats.sampled_groups,
            samples_drawn: self.conf_stats.samples_drawn,
            busy_nanos: metrics().par_busy_nanos.get(),
        }
    }

    fn span_enter(&mut self, label: String) -> SpanId {
        let snap = self.counters_now();
        self.tracer.enter(label, snap)
    }

    fn span_exit(&mut self, id: SpanId, rows_out: u64) {
        let snap = self.counters_now();
        self.tracer.exit(id, rows_out, snap);
    }
}

/// Observability snapshot of one executor run, surfaced by
/// [`run_with_stats`] (and the REPL's `\stats` meta-command). The descriptor
/// counters validate that representation changes keep interning behavior
/// intact — e.g. a refactor that accidentally stopped sharing scan
/// descriptors would show up as a hit-rate collapse.
///
/// Every completed run also folds this snapshot into the process-wide
/// [`maybms_core::obs::metrics`] registry, so `ExecStats` is the per-run
/// *view* and the registry is the durable store (the substrate for a
/// server's `/metrics` endpoint).
#[derive(Clone, Copy, Debug, Default)]
pub struct ExecStats {
    /// Wall-clock time of the whole run, in nanoseconds.
    pub wall_nanos: u64,
    /// Distinct descriptors in the run's pool (occupancy, ≥ 1).
    pub descriptors: usize,
    /// Pool entries that spilled past the inline-term capacity.
    pub descriptors_spilled: usize,
    /// Intern/conjoin counters of the descriptor pool.
    pub pool: PoolStats,
    /// Distinct strings in the run's dictionary.
    pub strings: usize,
    /// Rows in the final result.
    pub output_rows: usize,
    /// Deduplication sweeps skipped because a derived plan property
    /// (distinctness, descriptor-triviality) proved them redundant.
    pub dedups_elided: usize,
    /// The run's worker-thread budget ([`ParCfg::threads`]).
    pub threads: usize,
    /// Parallelism counters: workers actually used, morsels dispatched,
    /// pool-shard entries merged, merge time.
    pub par: ParStats,
    /// Confidence-solver counters: groups solved exactly vs. by sampling,
    /// total draws, largest connected group seen.
    pub conf: ConfStats,
    /// Sideways-information-passing counters: filters built, probe rows
    /// tested and pruned.
    pub sip: SipStats,
}

impl ExecStats {
    /// Fold this run's counters into the process-wide registry
    /// ([`maybms_core::obs::metrics`]). Called once per completed run by
    /// the `run_*` entry points.
    fn publish(&self) {
        let m = metrics();
        m.queries_total.inc();
        m.query_rows_total.add(self.output_rows as u64);
        m.query_wall_nanos.observe(self.wall_nanos);
        m.query_rows.observe(self.output_rows as u64);
        m.pool_intern_calls_total.add(self.pool.intern_calls);
        m.pool_intern_hits_total.add(self.pool.intern_hits);
        m.pool_conjoin_calls_total.add(self.pool.conjoin_calls);
        m.conf_exact_groups_total.add(self.conf.exact_groups);
        m.conf_sampled_groups_total.add(self.conf.sampled_groups);
        m.conf_samples_drawn_total.add(self.conf.samples_drawn);
        m.sip_filters_built_total.add(self.sip.filters_built);
        m.sip_rows_tested_total.add(self.sip.probe_rows_tested);
        m.sip_rows_pruned_total.add(self.sip.probe_rows_pruned);
    }
}

/// A flat chained-bucket hash index over row slots: `heads[bucket]` points
/// at the most recent slot in the bucket and `next[slot]` chains to the
/// previous one (both offset by one, `0` meaning "end"). Unlike a
/// `HashMap<Key, Vec<u32>>` it allocates exactly two `u32` arrays for any
/// number of rows — no per-bucket vectors, no key materialization — which is
/// what keeps the join build and hash-dedup allocation-free per row.
struct ChainedIndex {
    mask: u64,
    heads: Vec<u32>,
    next: Vec<u32>,
}

impl ChainedIndex {
    /// An index able to hold `rows` entries with a load factor ≤ ½.
    fn with_capacity(rows: usize) -> ChainedIndex {
        let buckets = (rows * 2).next_power_of_two().max(1);
        ChainedIndex {
            mask: (buckets - 1) as u64,
            heads: vec![0; buckets],
            next: vec![0; rows],
        }
    }

    /// Insert slot `i` under `hash`. `i` must be below the build capacity and
    /// inserted at most once.
    #[inline]
    fn insert(&mut self, hash: u64, i: usize) {
        let b = (hash & self.mask) as usize;
        self.next[i] = self.heads[b];
        self.heads[b] = i as u32 + 1;
    }

    /// Iterate the slots stored under `hash` (most recent first).
    #[inline]
    fn probe(&self, hash: u64) -> ChainIter<'_> {
        ChainIter {
            next: &self.next,
            cur: self.heads[(hash & self.mask) as usize],
        }
    }
}

/// Iterator over one bucket chain of a [`ChainedIndex`].
struct ChainIter<'a> {
    next: &'a [u32],
    cur: u32,
}

impl Iterator for ChainIter<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.cur == 0 {
            return None;
        }
        let i = (self.cur - 1) as usize;
        self.cur = self.next[i];
        Some(i)
    }
}

/// Iterator over a batch's live row ids: a dense range, or the selection
/// vector when one is pending.
enum RowIds<'s> {
    Dense(std::ops::Range<u32>),
    Sel(std::slice::Iter<'s, u32>),
}

impl Iterator for RowIds<'_> {
    type Item = u32;

    #[inline]
    fn next(&mut self) -> Option<u32> {
        match self {
            RowIds::Dense(r) => r.next(),
            RowIds::Sel(it) => it.next().copied(),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            RowIds::Dense(r) => r.size_hint(),
            RowIds::Sel(it) => it.size_hint(),
        }
    }
}

/// One output column of a batch: the stored column plus an optional shared
/// rowid indirection — *virtual* row `i` lives at *physical* row `ids[i]`.
/// A join emits its output columns as the input columns plus the match-list
/// indirection (composing with any indirection already present, memoized
/// per distinct input vector) instead of gathering; the single fused gather
/// happens at the next pipeline breaker ([`Batch::into_dense_parts`]).
/// The id vectors are `Arc`'d because every left (resp. right-kept) column
/// of a join shares one vector, and because batches must stay `Sync` for
/// the morsel-parallel sweeps.
struct LazyCol<'s> {
    /// The stored cells. Dense columns have one cell per virtual row;
    /// indirected columns are addressed through `ids`.
    col: Cow<'s, ColumnVec>,
    /// The virtual→physical rowid map, `None` when the column is dense.
    /// When present, `ids.len()` equals the batch's virtual row count.
    ids: Option<Arc<Vec<u32>>>,
}

impl<'s> LazyCol<'s> {
    /// A column with no indirection.
    fn dense(col: Cow<'s, ColumnVec>) -> LazyCol<'s> {
        LazyCol { col, ids: None }
    }

    /// A cell-addressable view folding the indirection (the read handle
    /// every sweep goes through).
    #[inline]
    fn view(&self) -> ColView<'_> {
        ColView::with_ids(&self.col, self.ids.as_deref().map(Vec::as_slice))
    }
}

/// The executor's unit of data flow: columnar storage (borrowed from the
/// per-run scan conversions until an operator materializes new columns),
/// per-column rowid indirections deferred by joins, plus an optional
/// selection vector restricting which virtual rows are live.
struct Batch<'s> {
    schema: Cow<'s, Schema>,
    cols: Vec<LazyCol<'s>>,
    /// Descriptor handles, always dense over the *virtual* rows (joins
    /// materialize conjoined descriptors eagerly — they are single `u32`
    /// handles, not cell data, so deferring them buys nothing).
    descs: Cow<'s, [DescId]>,
    /// Live virtual row ids, in output order. `None` means all rows
    /// `0..descs.len()`.
    sel: Option<Vec<u32>>,
}

impl<'s> Batch<'s> {
    /// Borrow a converted base relation (the Scan fast path).
    fn from_ref(rel: &'s ColumnarURelation) -> Batch<'s> {
        Batch {
            schema: Cow::Borrowed(rel.schema()),
            cols: rel
                .columns()
                .iter()
                .map(|c| LazyCol::dense(Cow::Borrowed(c)))
                .collect(),
            descs: Cow::Borrowed(rel.descs()),
            sel: None,
        }
    }

    /// Take ownership of an extension operator's (or cached) result.
    fn from_owned(rel: ColumnarURelation) -> Batch<'s> {
        let (schema, cols, descs) = rel.into_parts();
        Batch {
            schema: Cow::Owned(schema),
            cols: cols
                .into_iter()
                .map(|c| LazyCol::dense(Cow::Owned(c)))
                .collect(),
            descs: Cow::Owned(descs),
            sel: None,
        }
    }

    /// Number of live rows.
    fn len(&self) -> usize {
        match &self.sel {
            Some(s) => s.len(),
            None => self.descs.len(),
        }
    }

    /// The live virtual row ids, in output order.
    fn row_ids(&self) -> RowIds<'_> {
        match &self.sel {
            Some(s) => RowIds::Sel(s.iter()),
            None => RowIds::Dense(0..self.descs.len() as u32),
        }
    }

    /// Hash the cells and descriptor terms of one row (descriptor *content*,
    /// not handle — handles minted by `conjoin` are not canonical).
    #[inline]
    fn row_hash(&self, i: u32, pool: &DescriptorPool) -> u64 {
        let mut h = FxBuildHasher::default().build_hasher();
        for c in &self.cols {
            c.view().hash_cell(i as usize, &mut h);
        }
        for &(c, a) in pool.terms(self.descs[i as usize]) {
            h.write_u32(c.0);
            h.write_u16(a);
        }
        h.finish()
    }

    /// Whether two rows carry equal cells and equal descriptors.
    #[inline]
    fn rows_eq(&self, a: u32, b: u32, pool: &DescriptorPool) -> bool {
        pool.same_descriptor(self.descs[a as usize], self.descs[b as usize])
            && self.cols.iter().all(|c| {
                let v = c.view();
                v.eq_cells(a as usize, &v, b as usize)
            })
    }

    /// Drop duplicate `(tuple, descriptor)` rows, keeping first occurrences
    /// in order — by *shrinking the selection vector*, never touching the
    /// columns. A hash-and-verify pass over a [`ChainedIndex`]: candidates
    /// that collide on the row hash are verified cell-wise plus
    /// [`DescriptorPool::same_descriptor`].
    fn dedup(&mut self, pool: &DescriptorPool) {
        let n = self.len();
        if n < 2 {
            return;
        }
        let mut index = ChainedIndex::with_capacity(n);
        let mut kept: Vec<u32> = Vec::with_capacity(n);
        for i in self.row_ids() {
            let h = self.row_hash(i, pool);
            let dup = index.probe(h).any(|k| self.rows_eq(kept[k], i, pool));
            if !dup {
                index.insert(h, kept.len());
                kept.push(i);
            }
        }
        self.sel = Some(kept);
    }

    /// [`Batch::dedup`], morsel-parallel above the threshold. Rows are
    /// hashed in parallel, scattered into `2^k` partitions by the *high*
    /// bits of the row hash (the [`ChainedIndex`] buckets use the low bits,
    /// so partitioning costs no bucket entropy), and each partition keeps
    /// its first occurrences independently. Duplicates always share a hash,
    /// hence a partition, so the union of the partition survivors is
    /// exactly the sequential kept set; re-sorting the surviving positions
    /// restores the sequential output order.
    fn dedup_with(&mut self, pool: &DescriptorPool, par: &ParCfg, stats: &mut ParStats) {
        let n = self.len();
        let workers = par.workers_for(n);
        if workers <= 1 {
            self.dedup(pool);
            return;
        }
        let rows: Vec<u32> = self.row_ids().collect();
        let morsels = chunk_ranges(n, workers * 4);
        let hashes: Vec<u64> = run_tasks(workers, morsels.len(), |t| {
            morsels[t]
                .clone()
                .map(|p| self.row_hash(rows[p], pool))
                .collect::<Vec<_>>()
        })
        .concat();
        let parts = workers.next_power_of_two();
        let shift = 64 - parts.trailing_zeros();
        let mut parted: Vec<Vec<u32>> = vec![Vec::new(); parts];
        for (p, &h) in hashes.iter().enumerate() {
            parted[(h >> shift) as usize].push(p as u32);
        }
        stats.note_stage(workers, morsels.len() + parts);
        let kept_parts: Vec<Vec<u32>> = run_tasks(workers, parts, |pi| {
            let members = &parted[pi];
            let mut index = ChainedIndex::with_capacity(members.len());
            let mut kept: Vec<u32> = Vec::new();
            for &pos in members {
                let h = hashes[pos as usize];
                let dup = index
                    .probe(h)
                    .any(|k| self.rows_eq(rows[kept[k] as usize], rows[pos as usize], pool));
                if !dup {
                    index.insert(h, kept.len());
                    kept.push(pos);
                }
            }
            kept
        });
        let mut kept: Vec<u32> = kept_parts.concat();
        kept.sort_unstable();
        self.sel = Some(kept.into_iter().map(|p| rows[p as usize]).collect());
    }

    /// Apply the selection vector *and* every pending rowid indirection in
    /// one fused pass, yielding dense owned columns and descriptors — the
    /// pipeline breaker where deferred join gathers finally happen, once
    /// per column. When nothing is pending, borrowed columns are cloned (a
    /// contiguous `memcpy` per column) and owned ones move. Columns sharing
    /// an id vector share the composed `sel ∘ ids` index (memoized by `Arc`
    /// address).
    fn into_dense_parts(self) -> (Cow<'s, Schema>, Vec<ColumnVec>, Vec<DescId>) {
        let Batch {
            schema,
            cols,
            descs,
            sel,
        } = self;
        if sel.is_none() && cols.iter().all(|c| c.ids.is_none()) {
            return (
                schema,
                cols.into_iter().map(|c| c.col.into_owned()).collect(),
                descs.into_owned(),
            );
        }
        let out_descs: Vec<DescId> = match &sel {
            Some(s) => s.iter().map(|&i| descs[i as usize]).collect(),
            None => descs.into_owned(),
        };
        let mut fused: FxHashMap<usize, Vec<u32>> = FxHashMap::default();
        let out_cols = cols
            .into_iter()
            .map(|c| {
                let LazyCol { col, ids } = c;
                match (&sel, ids) {
                    (None, None) => col.into_owned(),
                    (Some(s), None) => col.gather(s),
                    (None, Some(ids)) => col.gather(&ids),
                    (Some(s), Some(ids)) => {
                        let idx = fused
                            .entry(Arc::as_ptr(&ids) as usize)
                            .or_insert_with(|| s.iter().map(|&i| ids[i as usize]).collect());
                        col.gather(idx)
                    }
                }
            })
            .collect();
        (schema, out_cols, out_descs)
    }

    /// Materialize as a standalone columnar relation (descriptors and string
    /// codes stay relative to the run's pools).
    fn into_columnar(self) -> ColumnarURelation {
        let (schema, cols, descs) = self.into_dense_parts();
        ColumnarURelation::from_parts(schema.into_owned(), cols, descs)
    }
}

/// Gather `idx` out of `col`, morsel-parallel above a fixed cutoff: each
/// task gathers a contiguous slice of the indices and the partial columns
/// are concatenated in task order, which is exactly `col.gather(idx)`.
fn gather_par(col: &ColumnVec, idx: &[u32], workers: usize) -> ColumnVec {
    const MIN_GATHER: usize = 8192;
    if workers <= 1 || idx.len() < MIN_GATHER {
        return col.gather(idx);
    }
    let morsels = chunk_ranges(idx.len(), workers);
    let parts = run_tasks(workers, morsels.len(), |t| {
        col.gather(&idx[morsels[t].clone()])
    });
    let mut parts = parts.into_iter();
    let mut out = parts.next().expect("at least one morsel");
    for p in parts {
        out.extend_all(&p);
    }
    out
}

/// Eagerly gather `idx` (virtual rows) out of a possibly-indirected column
/// — the `MAYBMS_LATE_MAT=0` join path, which folds any indirection already
/// present into the index before gathering.
fn gather_eager(c: &LazyCol<'_>, idx: &[u32], workers: usize) -> ColumnVec {
    match &c.ids {
        None => gather_par(&c.col, idx, workers),
        Some(ids) => {
            let folded: Vec<u32> = idx.iter().map(|&i| ids[i as usize]).collect();
            gather_par(&c.col, &folded, workers)
        }
    }
}

/// Evaluate a plan against a world set. New components created by extension
/// operators are added to `ws.components`; the base relations are untouched.
///
/// Within one `run`, a *shared* extension subtree (the same `Arc`, e.g. a
/// cloned `repair-key` plan used on both sides of a join) is evaluated once
/// and its result reused, so both occurrences refer to the same components.
/// Two structurally equal but separately constructed subtrees remain
/// independent repairs — sharing is by `Arc` identity, which is what plan
/// `clone()` preserves.
pub fn run(ws: &mut WorldSet, plan: &Plan) -> Result<URelation, MayError> {
    run_with_stats(ws, plan).map(|(result, _)| result)
}

/// Like [`run`], additionally reporting the run's [`ExecStats`]. The thread
/// budget comes from the environment ([`ParCfg::from_env`], i.e.
/// `MAYBMS_THREADS`); [`run_with_stats_opts`] takes one explicitly.
pub fn run_with_stats(ws: &mut WorldSet, plan: &Plan) -> Result<(URelation, ExecStats), MayError> {
    run_with_stats_opts(ws, plan, &ParCfg::from_env())
}

/// [`run`] with an explicit parallelism configuration. The result is
/// identical for every thread count (see the `parallel_differential` suite).
pub fn run_with_opts(ws: &mut WorldSet, plan: &Plan, par: &ParCfg) -> Result<URelation, MayError> {
    run_with_stats_opts(ws, plan, par).map(|(result, _)| result)
}

/// [`run_with_stats`] with an explicit parallelism configuration (the
/// execution knobs still come from the environment).
pub fn run_with_stats_opts(
    ws: &mut WorldSet,
    plan: &Plan,
    par: &ParCfg,
) -> Result<(URelation, ExecStats), MayError> {
    run_with_stats_exec(ws, plan, &ExecCfg::with_par(*par))
}

/// [`run`] with a fully explicit execution configuration — the entry point
/// the differential suites drive to pin byte-identical results across every
/// `ExecCfg` combination.
pub fn run_with_exec(ws: &mut WorldSet, plan: &Plan, cfg: &ExecCfg) -> Result<URelation, MayError> {
    run_with_stats_exec(ws, plan, cfg).map(|(result, _)| result)
}

/// [`run_with_stats`] with a fully explicit execution configuration.
pub fn run_with_stats_exec(
    ws: &mut WorldSet,
    plan: &Plan,
    cfg: &ExecCfg,
) -> Result<(URelation, ExecStats), MayError> {
    run_impl(ws, plan, cfg, false).map(|(result, stats, _)| (result, stats))
}

/// [`run_with_stats_opts`] with per-node tracing enabled: additionally
/// returns the run's [`QueryTrace`] — a span per evaluated plan node (plus
/// operator sub-phases), each annotated with wall time, rows, and the
/// counters the node incurred. The result relation is byte-identical to the
/// untraced run's (the tracer only *observes*); the trace is what `EXPLAIN
/// ANALYZE` renders and what [`QueryTrace::to_json`] exports for Perfetto.
pub fn run_traced(
    ws: &mut WorldSet,
    plan: &Plan,
    par: &ParCfg,
) -> Result<(URelation, ExecStats, QueryTrace), MayError> {
    run_impl(ws, plan, &ExecCfg::with_par(*par), true)
        .map(|(result, stats, trace)| (result, stats, trace.expect("tracing was enabled")))
}

fn run_impl(
    ws: &mut WorldSet,
    plan: &Plan,
    cfg: &ExecCfg,
    traced: bool,
) -> Result<(URelation, ExecStats, Option<QueryTrace>), MayError> {
    let started = std::time::Instant::now();
    let WorldSet {
        components,
        relations,
    } = ws;
    let mut ctx = EvalCtx::with_exec(relations, components, *cfg);
    if traced {
        ctx.tracer = Tracer::enabled();
    }
    // Convert every scanned base relation to columnar form once, up front.
    // The conversions live outside the context so batches can borrow them
    // while operators keep mutable access to the pools.
    let convert_started = ctx.tracer.now();
    let mut names = BTreeSet::new();
    collect_scans(plan, &mut names);
    let mut scans: BTreeMap<String, ColumnarURelation> = BTreeMap::new();
    let mut converted_rows = 0u64;
    for name in names {
        let rel = ctx
            .relations
            .get(name)
            .ok_or_else(|| MayError::UnknownRelation(name.to_string()))?;
        converted_rows += rel.len() as u64;
        scans.insert(
            name.to_string(),
            ColumnarURelation::from_urelation_with(
                rel,
                &mut ctx.pool,
                &mut ctx.strings,
                &ctx.par,
                &mut ctx.par_stats,
            ),
        );
    }
    ctx.tracer
        .event("scan-convert", convert_started, converted_rows);
    let batch = eval_batch(plan, &scans, &mut ctx)?;
    let result = batch.into_columnar().to_urelation(&ctx.pool, &ctx.strings);
    let stats = ExecStats {
        wall_nanos: u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX),
        descriptors: ctx.pool.len(),
        descriptors_spilled: ctx.pool.spilled(),
        pool: ctx.pool.stats(),
        strings: ctx.strings.len(),
        output_rows: result.len(),
        dedups_elided: ctx.dedups_elided,
        threads: ctx.par.threads,
        par: ctx.par_stats,
        conf: ctx.conf_stats,
        sip: ctx.sip_stats,
    };
    stats.publish();
    let trace = traced.then(|| {
        let threads = ctx.par.threads;
        std::mem::take(&mut ctx.tracer).finish(threads)
    });
    Ok((result, stats, trace))
}

/// Collect the names of every base relation a plan (including extension
/// subtrees) scans.
fn collect_scans<'p>(plan: &'p Plan, names: &mut BTreeSet<&'p str>) {
    match plan {
        Plan::Scan(name) => {
            names.insert(name);
        }
        Plan::Select { input, .. } | Plan::Project { input, .. } | Plan::Rename { input, .. } => {
            collect_scans(input, names)
        }
        Plan::NaturalJoin { left, right } | Plan::Union { left, right } => {
            collect_scans(left, names);
            collect_scans(right, names);
        }
        Plan::Ext(op) => {
            for input in op.inputs() {
                collect_scans(input, names);
            }
        }
    }
}

/// Build a Bloom filter over `build`'s key cells and register it against
/// the right node of the `probe` subtree, if this join qualifies for SIP:
/// the build side's *actual* row count is within the cutoff, the sides
/// share key columns, and the target descent succeeds. Called by the join
/// arm after evaluating the build side, before evaluating the probe side.
fn maybe_register_sip(probe: &Plan, build: &Batch<'_>, ctx: &mut EvalCtx<'_>) {
    if build.len() > crate::sip::SIP_MAX_BUILD {
        return;
    }
    let Ok(probe_schema) = probe.schema_with(ctx.relations) else {
        return;
    };
    let keys = shared_key_names(&probe_schema, &build.schema);
    if keys.is_empty() {
        return;
    }
    let Some((target, target_keys)) = sip_target(probe, keys.clone(), ctx.relations) else {
        return;
    };
    let Ok(target_schema) = target.schema_with(ctx.relations) else {
        return;
    };
    let mut key_cols = Vec::with_capacity(target_keys.len());
    for k in &target_keys {
        match target_schema.col_index(k) {
            Ok(i) => key_cols.push(i),
            Err(_) => return,
        }
    }
    // Hash every live build row's key cells — in `keys` order, the same
    // order `apply_sip` hashes the probe cells — into the filter.
    let mut build_views = Vec::with_capacity(keys.len());
    for k in &keys {
        match build.schema.col_index(k) {
            Ok(i) => build_views.push(build.cols[i].view()),
            Err(_) => return,
        }
    }
    let mut bloom = BlockedBloom::with_capacity(build.len().max(1), SIP_K);
    for ri in build.row_ids() {
        let mut h = FxBuildHasher::default().build_hasher();
        for v in &build_views {
            v.hash_cell(ri as usize, &mut h);
        }
        bloom.insert(h.finish());
    }
    ctx.sip_filters
        .entry(target as *const Plan as usize)
        .or_default()
        .push(SipFilter { bloom, key_cols });
    ctx.sip_stats.filters_built += 1;
}

/// Apply any SIP filters registered against this plan node to its freshly
/// produced batch: probe rows whose key-cell hash the filter rules out are
/// dropped from the selection vector. Sequential by design — the sweep is a
/// hash-and-test per row, and survivor order must match the unfiltered
/// order exactly.
fn apply_sip(plan: &Plan, b: &mut Batch<'_>, ctx: &mut EvalCtx<'_>) {
    if ctx.sip_filters.is_empty() {
        return;
    }
    let key = plan as *const Plan as usize;
    let Some(filters) = ctx.sip_filters.remove(&key) else {
        return;
    };
    for f in &filters {
        let views: Vec<ColView<'_>> = f.key_cols.iter().map(|&c| b.cols[c].view()).collect();
        let mut kept: Vec<u32> = Vec::with_capacity(b.len());
        let tested = b.len() as u64;
        for i in b.row_ids() {
            let mut h = FxBuildHasher::default().build_hasher();
            for v in &views {
                v.hash_cell(i as usize, &mut h);
            }
            if f.bloom.may_contain(h.finish()) {
                kept.push(i);
            }
        }
        ctx.sip_stats.probe_rows_tested += tested;
        ctx.sip_stats.probe_rows_pruned += tested - kept.len() as u64;
        drop(views);
        b.sel = Some(kept);
    }
}

/// Span-wrapping entry for each plan node: the untraced path is a single
/// branch on the tracer's enabled bool before delegating to
/// [`eval_batch_inner`] — this is the whole per-node cost of having the
/// tracer compiled in. The traced path opens a span labelled exactly like
/// the `EXPLAIN` tree line (a memoized extension subtree is labelled
/// `… (cached)` so the span tree reflects what actually executed) and
/// charges the node the counter delta across its evaluation. Either path
/// applies pending SIP filters to the node's output before it flows up (so
/// a traced span's `rows_out` reflects the pruning).
fn eval_batch<'s>(
    plan: &Plan,
    scans: &'s BTreeMap<String, ColumnarURelation>,
    ctx: &mut EvalCtx<'_>,
) -> Result<Batch<'s>, MayError> {
    if !ctx.tracer.is_enabled() {
        let mut b = eval_batch_inner(plan, scans, ctx)?;
        apply_sip(plan, &mut b, ctx);
        return Ok(b);
    }
    let mut label = plan.node_label();
    if let Plan::Ext(op) = plan {
        let key = Arc::as_ptr(op) as *const () as usize;
        if ctx.ext_cache.contains_key(&key) {
            label.push_str(" (cached)");
        }
    }
    let span = ctx.span_enter(label);
    let mut result = eval_batch_inner(plan, scans, ctx);
    if let Ok(b) = result.as_mut() {
        apply_sip(plan, b, ctx);
    }
    let rows_out = result.as_ref().map(Batch::len).unwrap_or(0);
    ctx.span_exit(span, rows_out as u64);
    result
}

/// The batch evaluator proper. Returned batches may borrow columns from
/// `scans` (lifetime `'s`), never from `ctx` itself — `ctx` stays freely
/// borrowable for the next operator. See the module docs for why each
/// operator is sound on the compact representation.
fn eval_batch_inner<'s>(
    plan: &Plan,
    scans: &'s BTreeMap<String, ColumnarURelation>,
    ctx: &mut EvalCtx<'_>,
) -> Result<Batch<'s>, MayError> {
    match plan {
        Plan::Scan(name) => {
            let rel = scans
                .get(name)
                .ok_or_else(|| MayError::UnknownRelation(name.clone()))?;
            Ok(Batch::from_ref(rel))
        }
        Plan::Select { input, predicate } => {
            let mut b = eval_batch(input, scans, ctx)?;
            // Bound once per relation; the sweep below reads cells in place
            // through the rowid views.
            let bound = predicate.bind(&b.schema)?;
            let views: Vec<ColView<'_>> = b.cols.iter().map(LazyCol::view).collect();
            let workers = ctx.par.workers_for(b.len());
            let strings = &ctx.strings;
            let sel: Vec<u32> = if workers <= 1 {
                b.row_ids()
                    .filter(|&i| bound.matches_views(&views, i as usize, strings))
                    .collect()
            } else {
                // Morsel-parallel sweep: each task filters a contiguous
                // range of the live rows; concatenating in task order keeps
                // the output order sequential.
                let rows: Vec<u32> = b.row_ids().collect();
                let morsels = chunk_ranges(rows.len(), workers * 4);
                ctx.par_stats.note_stage(workers, morsels.len());
                run_tasks(workers, morsels.len(), |t| {
                    rows[morsels[t].clone()]
                        .iter()
                        .copied()
                        .filter(|&i| bound.matches_views(&views, i as usize, strings))
                        .collect::<Vec<_>>()
                })
                .concat()
            };
            drop(views);
            b.sel = Some(sel);
            Ok(b)
        }
        Plan::Project { input, columns } => {
            let b = eval_batch(input, scans, ctx)?;
            let (schema, idx) = b.schema.project(columns)?;
            // Dedup elision: a projection that keeps every input column is
            // a permutation, so a provably duplicate-free input stays
            // duplicate-free — the set-semantics sweep would be a no-op.
            let permutation = idx.len() == b.schema.arity();
            // A pure column-pointer shuffle: each output column *moves* the
            // input's reference (projection indices are unique, so every
            // source column is taken at most once — no data is copied).
            let mut taken: Vec<Option<LazyCol<'s>>> = b.cols.into_iter().map(Some).collect();
            let cols = idx
                .iter()
                .map(|&i| taken[i].take().expect("projection indices are unique"))
                .collect();
            let mut out = Batch {
                schema: Cow::Owned(schema),
                cols,
                descs: b.descs,
                sel: b.sel,
            };
            if permutation && input.is_distinct() {
                ctx.dedups_elided += 1;
            } else {
                out.dedup_with(&ctx.pool, &ctx.par, &mut ctx.par_stats);
            }
            Ok(out)
        }
        Plan::NaturalJoin { left, right } => {
            // SIP: when the mint guard allows reordering, evaluate the
            // build (right) side first and — if it turns out selective —
            // push a Bloom filter over its key cells into the probe
            // subtree before the probe side runs at all.
            let sip_ok = ctx.sip && !(plan_mints(left) && plan_mints(right));
            let (l, r) = if sip_ok {
                let r = eval_batch(right, scans, ctx)?;
                maybe_register_sip(left, &r, ctx);
                let l = eval_batch(left, scans, ctx)?;
                (l, r)
            } else {
                let l = eval_batch(left, scans, ctx)?;
                let r = eval_batch(right, scans, ctx)?;
                (l, r)
            };
            let jp = l.schema.natural_join(&r.schema)?;
            let l_views: Vec<ColView<'_>> = l.cols.iter().map(LazyCol::view).collect();
            let r_views: Vec<ColView<'_>> = r.cols.iter().map(LazyCol::view).collect();
            let hasher = FxBuildHasher::default();
            let key_hash = |views: &[ColView<'_>], row: u32, side: fn(&(usize, usize)) -> usize| {
                let mut h = hasher.build_hasher();
                for s in &jp.shared {
                    views[side(s)].hash_cell(row as usize, &mut h);
                }
                h.finish()
            };
            // Build on the right side: bucket each live right row by the
            // hash of its key cells (computed in place — no key vector is
            // ever materialized).
            let r_rows: Vec<u32> = r.row_ids().collect();
            let workers = ctx.par.workers_for(l.len().max(r_rows.len()));
            let mut l_idx: Vec<u32> = Vec::new();
            let mut r_idx: Vec<u32> = Vec::new();
            let mut descs: Vec<DescId> = Vec::new();
            if workers <= 1 {
                let mut built = ChainedIndex::with_capacity(r_rows.len());
                for (slot, &ri) in r_rows.iter().enumerate() {
                    built.insert(key_hash(&r_views, ri, |&(_, rc)| rc), slot);
                }
                // Probe with the left key cells; verify candidates
                // column-wise. Matches are collected as (left row, right
                // row, descriptor); the output columns are the input
                // columns plus these match lists as rowid indirections.
                for li in l.row_ids() {
                    for slot in built.probe(key_hash(&l_views, li, |&(lc, _)| lc)) {
                        let ri = r_rows[slot];
                        let keys_match = jp.shared.iter().all(|&(lc, rc)| {
                            l_views[lc].eq_cells(li as usize, &r_views[rc], ri as usize)
                        });
                        if !keys_match {
                            continue; // hash collision, not an equi-match
                        }
                        // A joined tuple exists only in worlds where both
                        // inputs exist: the conjunction of the descriptors.
                        // Inconsistent descriptors denote no worlds — drop.
                        if let Some(d) =
                            ctx.pool.conjoin(l.descs[li as usize], r.descs[ri as usize])
                        {
                            l_idx.push(li);
                            r_idx.push(ri);
                            descs.push(d);
                        }
                    }
                }
            } else {
                // Morsel-parallel partitioned hash join. Build rows are
                // hashed in parallel, scattered into `2^k` partitions by
                // the hash's *high* bits (bucket selection uses the low
                // bits, so partitioning costs no entropy), and one
                // `ChainedIndex` per partition is built concurrently —
                // inserting in ascending slot order, so each chain yields
                // the same relative order a single global index would.
                // Probe morsels conjoin through private pool shards; the
                // shards are absorbed in task order and the minted handles
                // remapped, which makes the match list independent of
                // scheduling.
                let build_morsels = chunk_ranges(r_rows.len(), workers * 4);
                let r_hashes: Vec<u64> = run_tasks(workers, build_morsels.len(), |t| {
                    r_rows[build_morsels[t].clone()]
                        .iter()
                        .map(|&ri| key_hash(&r_views, ri, |&(_, rc)| rc))
                        .collect::<Vec<_>>()
                })
                .concat();
                let parts = workers.next_power_of_two();
                let shift = 64 - parts.trailing_zeros();
                let mut parted: Vec<Vec<u32>> = vec![Vec::new(); parts];
                for (slot, &h) in r_hashes.iter().enumerate() {
                    parted[(h >> shift) as usize].push(slot as u32);
                }
                let indexes: Vec<ChainedIndex> = run_tasks(workers, parts, |pi| {
                    let members = &parted[pi];
                    let mut idx = ChainedIndex::with_capacity(members.len());
                    for (k, &slot) in members.iter().enumerate() {
                        idx.insert(r_hashes[slot as usize], k);
                    }
                    idx
                });
                let l_rows: Vec<u32> = l.row_ids().collect();
                let probe_morsels = chunk_ranges(l_rows.len(), workers * 4);
                ctx.par_stats
                    .note_stage(workers, build_morsels.len() + parts + probe_morsels.len());
                let pool = &ctx.pool;
                type ProbeOut = (Vec<u32>, Vec<u32>, Vec<DescId>, ShardDelta);
                let results: Vec<ProbeOut> = run_tasks(workers, probe_morsels.len(), |t| {
                    let mut shard = pool.shard();
                    let mut l_v: Vec<u32> = Vec::new();
                    let mut r_v: Vec<u32> = Vec::new();
                    let mut d_v: Vec<DescId> = Vec::new();
                    for &li in &l_rows[probe_morsels[t].clone()] {
                        let h = key_hash(&l_views, li, |&(lc, _)| lc);
                        let pi = (h >> shift) as usize;
                        let members = &parted[pi];
                        for k in indexes[pi].probe(h) {
                            let ri = r_rows[members[k] as usize];
                            let keys_match = jp.shared.iter().all(|&(lc, rc)| {
                                l_views[lc].eq_cells(li as usize, &r_views[rc], ri as usize)
                            });
                            if !keys_match {
                                continue; // hash collision, not an equi-match
                            }
                            if let Some(d) =
                                shard.conjoin(l.descs[li as usize], r.descs[ri as usize])
                            {
                                l_v.push(li);
                                r_v.push(ri);
                                d_v.push(d);
                            }
                        }
                    }
                    (l_v, r_v, d_v, shard.into_delta())
                });
                let started = std::time::Instant::now();
                let mut deltas = Vec::with_capacity(results.len());
                let mut parts_out = Vec::with_capacity(results.len());
                for (l_v, r_v, d_v, delta) in results {
                    deltas.push(delta);
                    parts_out.push((l_v, r_v, d_v));
                }
                let entries: u64 = deltas.iter().map(|d| d.len() as u64).sum();
                let remaps = ctx.pool.absorb(deltas);
                for ((l_v, r_v, d_v), remap) in parts_out.into_iter().zip(&remaps) {
                    l_idx.extend_from_slice(&l_v);
                    r_idx.extend_from_slice(&r_v);
                    descs.extend(d_v.into_iter().map(|d| remap.remap(d)));
                }
                ctx.par_stats
                    .note_merge(entries, started.elapsed().as_nanos() as u64);
            }
            drop(l_views);
            drop(r_views);
            let mut cols: Vec<LazyCol<'s>> = Vec::with_capacity(jp.schema.arity());
            if ctx.late_mat {
                // Late materialization: the output columns are the input
                // columns plus the match lists as shared rowid
                // indirections. An indirection already present composes —
                // once per distinct input vector, not per column.
                let l_ids = Arc::new(l_idx);
                let r_ids = Arc::new(r_idx);
                let mut memo: FxHashMap<(usize, usize), Arc<Vec<u32>>> = FxHashMap::default();
                let mut compose = |old: &Option<Arc<Vec<u32>>>, new: &Arc<Vec<u32>>| match old {
                    None => Arc::clone(new),
                    Some(o) => Arc::clone(
                        memo.entry((Arc::as_ptr(o) as usize, Arc::as_ptr(new) as usize))
                            .or_insert_with(|| {
                                Arc::new(new.iter().map(|&i| o[i as usize]).collect())
                            }),
                    ),
                };
                for c in l.cols {
                    let ids = Some(compose(&c.ids, &l_ids));
                    cols.push(LazyCol { col: c.col, ids });
                }
                let mut r_taken: Vec<Option<LazyCol<'s>>> = r.cols.into_iter().map(Some).collect();
                for &rc in &jp.right_keep {
                    let c = r_taken[rc].take().expect("right_keep indices are unique");
                    let ids = Some(compose(&c.ids, &r_ids));
                    cols.push(LazyCol { col: c.col, ids });
                }
            } else {
                for c in &l.cols {
                    cols.push(LazyCol::dense(Cow::Owned(gather_eager(c, &l_idx, workers))));
                }
                for &rc in &jp.right_keep {
                    cols.push(LazyCol::dense(Cow::Owned(gather_eager(
                        &r.cols[rc],
                        &r_idx,
                        workers,
                    ))));
                }
            }
            let mut out = Batch {
                schema: Cow::Owned(jp.schema),
                cols,
                descs: Cow::Owned(descs),
                sel: None,
            };
            // Dedup elision: joining certain, duplicate-free inputs cannot
            // produce duplicates — distinct row pairs differ in some kept
            // column (a shared-column difference would have failed the key
            // match), and all descriptors conjoin to the trivial one. With
            // uncertain inputs the sweep stays: distinct descriptors can
            // *conjoin* to equal descriptors (absorption), duplicating rows.
            if left.is_certain() && left.is_distinct() && right.is_certain() && right.is_distinct()
            {
                ctx.dedups_elided += 1;
            } else {
                out.dedup_with(&ctx.pool, &ctx.par, &mut ctx.par_stats);
            }
            Ok(out)
        }
        Plan::Union { left, right } => {
            let l = eval_batch(left, scans, ctx)?;
            let r = eval_batch(right, scans, ctx)?;
            l.schema.union_compatible(&r.schema)?;
            // Concatenate column-wise: densify the left side (moves owned
            // columns, memcpys borrowed ones, fuses pending gathers), then
            // append the right side's live rows per column — folding any
            // right-side indirection into the extend index (memoized per
            // distinct id vector).
            let (schema, mut cols, mut descs) = l.into_dense_parts();
            let mut fused: FxHashMap<usize, Vec<u32>> = FxHashMap::default();
            for (c, rc) in cols.iter_mut().zip(&r.cols) {
                match (&r.sel, &rc.ids) {
                    (None, None) => c.extend_all(&rc.col),
                    (Some(sel), None) => c.extend_gather(&rc.col, sel),
                    (sel, Some(ids)) => {
                        let idx =
                            fused
                                .entry(Arc::as_ptr(ids) as usize)
                                .or_insert_with(|| match sel {
                                    Some(s) => s.iter().map(|&i| ids[i as usize]).collect(),
                                    None => ids.as_ref().clone(),
                                });
                        c.extend_gather(&rc.col, idx);
                    }
                }
            }
            match &r.sel {
                Some(sel) => descs.extend(sel.iter().map(|&i| r.descs[i as usize])),
                None => descs.extend_from_slice(&r.descs),
            }
            let mut out = Batch {
                schema,
                cols: cols
                    .into_iter()
                    .map(|c| LazyCol::dense(Cow::Owned(c)))
                    .collect(),
                descs: Cow::Owned(descs),
                sel: None,
            };
            out.dedup_with(&ctx.pool, &ctx.par, &mut ctx.par_stats);
            Ok(out)
        }
        Plan::Rename { input, renames } => {
            let mut b = eval_batch(input, scans, ctx)?;
            // Only the schema changes; columns and selection move through.
            b.schema = Cow::Owned(b.schema.rename(renames)?);
            Ok(b)
        }
        Plan::Ext(op) => {
            let key = Arc::as_ptr(op) as *const () as usize;
            if let Some(cached) = ctx.ext_cache.get(&key) {
                return Ok(Batch::from_owned(cached.clone()));
            }
            let mut inputs = Vec::new();
            for p in op.inputs() {
                inputs.push(eval_batch(p, scans, ctx)?.into_columnar());
            }
            let result = op.eval(ctx, inputs)?;
            ctx.ext_cache.insert(key, result.clone());
            Ok(Batch::from_owned(result))
        }
    }
}

/// Infer the output schema of a plan without evaluating it. This is the
/// relation-map convenience form of [`Plan::schema_with`], which accepts
/// any [`crate::optimize::SchemaProvider`].
pub fn infer_schema(
    plan: &Plan,
    relations: &BTreeMap<String, URelation>,
) -> Result<Schema, MayError> {
    plan.schema_with(relations)
}
