//! The WSD-level executor: evaluates plans on u-relations without expanding
//! worlds.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use maybms_core::{ComponentSet, MayError, Schema, URelation, Value, WorldSet};

use crate::plan::Plan;

/// Evaluation context handed to operators: the base relations (read-only)
/// and the component set (mutable, so extension operators like `repair-key`
/// can mint new components).
pub struct EvalCtx<'a> {
    /// The base u-relations, by name.
    pub relations: &'a BTreeMap<String, URelation>,
    /// The components of the world set.
    pub components: &'a mut ComponentSet,
    /// Memoized results of extension operators, keyed by `Arc` identity.
    /// A shared (cloned) `repair-key` subtree must evaluate *once* per run:
    /// re-running it would mint fresh components for each occurrence and
    /// silently decorrelate what the plan author shares deliberately.
    ext_cache: HashMap<usize, URelation>,
}

impl<'a> EvalCtx<'a> {
    /// Build a fresh context (with an empty extension-operator memo).
    pub fn new(
        relations: &'a BTreeMap<String, URelation>,
        components: &'a mut ComponentSet,
    ) -> Self {
        EvalCtx {
            relations,
            components,
            ext_cache: HashMap::new(),
        }
    }
}

/// Evaluate a plan against a world set. New components created by extension
/// operators are added to `ws.components`; the base relations are untouched.
///
/// Within one `run`, a *shared* extension subtree (the same `Arc`, e.g. a
/// cloned `repair-key` plan used on both sides of a join) is evaluated once
/// and its result reused, so both occurrences refer to the same components.
/// Two structurally equal but separately constructed subtrees remain
/// independent repairs — sharing is by `Arc` identity, which is what plan
/// `clone()` preserves.
pub fn run(ws: &mut WorldSet, plan: &Plan) -> Result<URelation, MayError> {
    let WorldSet {
        components,
        relations,
    } = ws;
    let mut ctx = EvalCtx::new(relations, components);
    eval(plan, &mut ctx)
}

/// Evaluate a plan in a context. See the crate docs for why each operator is
/// sound on the compact representation.
pub fn eval(plan: &Plan, ctx: &mut EvalCtx<'_>) -> Result<URelation, MayError> {
    match plan {
        Plan::Scan(name) => ctx
            .relations
            .get(name)
            .cloned()
            .ok_or_else(|| MayError::UnknownRelation(name.clone())),
        Plan::Select { input, predicate } => {
            let r = eval(input, ctx)?;
            let bound = predicate.bind(r.schema())?;
            let mut out = URelation::new(r.schema().clone());
            for (t, d) in r.rows() {
                if bound.matches(t) {
                    out.push(t.clone(), d.clone())?;
                }
            }
            Ok(out)
        }
        Plan::Project { input, columns } => {
            let r = eval(input, ctx)?;
            let (schema, idx) = r.schema().project(columns)?;
            let mut out = URelation::new(schema);
            for (t, d) in r.rows() {
                out.push(t.project(&idx), d.clone())?;
            }
            out.dedup();
            Ok(out)
        }
        Plan::NaturalJoin { left, right } => {
            let l = eval(left, ctx)?;
            let r = eval(right, ctx)?;
            let jp = l.schema().natural_join(r.schema())?;
            // Hash join: build on the right side, probe with the left.
            let mut built: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
            for (i, (t, _)) in r.rows().iter().enumerate() {
                built.entry(jp.right_key(t)).or_default().push(i);
            }
            let mut out = URelation::new(jp.schema.clone());
            for (lt, ld) in l.rows() {
                if let Some(matches) = built.get(&jp.left_key(lt)) {
                    for &i in matches {
                        let (rt, rd) = &r.rows()[i];
                        // A joined tuple exists only in worlds where both
                        // inputs exist: the conjunction of the descriptors.
                        // Inconsistent descriptors denote no worlds — drop.
                        if let Some(d) = ld.conjoin(rd) {
                            out.push(jp.combine(lt, rt), d)?;
                        }
                    }
                }
            }
            out.dedup();
            Ok(out)
        }
        Plan::Union { left, right } => {
            let l = eval(left, ctx)?;
            let r = eval(right, ctx)?;
            l.schema().union_compatible(r.schema())?;
            let mut out = l;
            for (t, d) in r.rows() {
                out.push(t.clone(), d.clone())?;
            }
            out.dedup();
            Ok(out)
        }
        Plan::Rename { input, renames } => {
            let r = eval(input, ctx)?;
            let schema = r.schema().rename(renames)?;
            let mut out = URelation::new(schema);
            for (t, d) in r.rows() {
                out.push(t.clone(), d.clone())?;
            }
            Ok(out)
        }
        Plan::Ext(op) => {
            let key = Arc::as_ptr(op) as *const () as usize;
            if let Some(cached) = ctx.ext_cache.get(&key) {
                return Ok(cached.clone());
            }
            let inputs = op
                .inputs()
                .into_iter()
                .map(|p| eval(p, ctx))
                .collect::<Result<Vec<_>, _>>()?;
            let result = op.eval(ctx, inputs)?;
            ctx.ext_cache.insert(key, result.clone());
            Ok(result)
        }
    }
}

/// Infer the output schema of a plan without evaluating it.
pub fn infer_schema(
    plan: &Plan,
    relations: &BTreeMap<String, URelation>,
) -> Result<Schema, MayError> {
    match plan {
        Plan::Scan(name) => relations
            .get(name)
            .map(|r| r.schema().clone())
            .ok_or_else(|| MayError::UnknownRelation(name.clone())),
        Plan::Select { input, predicate } => {
            let s = infer_schema(input, relations)?;
            // Bind to surface unknown-column errors at planning time.
            predicate.bind(&s)?;
            Ok(s)
        }
        Plan::Project { input, columns } => Ok(infer_schema(input, relations)?.project(columns)?.0),
        Plan::NaturalJoin { left, right } => Ok(infer_schema(left, relations)?
            .natural_join(&infer_schema(right, relations)?)?
            .schema),
        Plan::Union { left, right } => {
            let l = infer_schema(left, relations)?;
            l.union_compatible(&infer_schema(right, relations)?)?;
            Ok(l)
        }
        Plan::Rename { input, renames } => Ok(infer_schema(input, relations)?.rename(renames)?),
        Plan::Ext(op) => {
            let schemas = op
                .inputs()
                .into_iter()
                .map(|p| infer_schema(p, relations))
                .collect::<Result<Vec<_>, _>>()?;
            op.output_schema(&schemas)
        }
    }
}
