//! The WSD-level executor: evaluates plans on u-relations without expanding
//! worlds.
//!
//! # The interned, zero-copy execution core
//!
//! Operators do not shuttle [`URelation`]s (which would deep-clone every
//! tuple and every descriptor term vector at every step). Instead they
//! evaluate on an internal [`IRel`]: rows are `(Cow<Tuple>, DescId)` pairs
//! whose tuples *borrow* from the base relations until an operator actually
//! constructs a new tuple, and whose descriptors are handles into a
//! [`DescriptorPool`] shared across the whole run. Concretely:
//!
//! * **Scan** borrows the base relation's schema and tuples (`Cow::Borrowed`)
//!   and interns its descriptors once per run (memoized per relation name) —
//!   no deep clone of the relation.
//! * **Select** and **Rename** are in-place: `Select` filters the row vector
//!   it received (the predicate is bound to the schema once, not per row) and
//!   `Rename` swaps the schema while moving the rows through untouched.
//! * **NaturalJoin** hashes each build-side row's key values once, in place,
//!   into a flat [`ChainedIndex`] (no per-bucket vectors, no materialized key
//!   tuples), probes by hashing the left key in place and verifying candidate
//!   pairs on the shared columns, and conjoins descriptors through the pool —
//!   a merge of two interned term lists, with no allocation for the dominant
//!   ≤ 2-term results.
//! * **Union** reuses the left input's row allocation and reserves for the
//!   right side's rows before extending.
//! * **Dedup** (after project/join/union) is a hash-and-verify pass over a
//!   [`ChainedIndex`] keyed on `(tuple values, descriptor terms)` — duplicate
//!   rows collapse exactly as they would on owned descriptors, without a
//!   comparison sort or re-allocated term vectors.
//!
//! Schemas are validated once per operator when the output schema is derived;
//! rows constructed from schema-checked inputs are schema-correct by
//! construction, so the per-row `Schema::check` of the old executor is gone
//! from every hot loop. Extension operators (`repair-key`, `conf`, …) still
//! exchange plain [`URelation`]s at their boundary: their inputs are
//! materialized from the interned form and their results are moved (not
//! cloned) back into it.

use std::borrow::Cow;
use std::collections::BTreeMap;
use std::hash::{BuildHasher, Hash, Hasher};
use std::sync::Arc;

use maybms_core::{
    ComponentSet, DescId, DescriptorPool, FxBuildHasher, FxHashMap, MayError, Schema, Tuple,
    URelation, WorldSet,
};

use crate::plan::Plan;

/// Evaluation context handed to operators: the base relations (read-only)
/// and the component set (mutable, so extension operators like `repair-key`
/// can mint new components).
pub struct EvalCtx<'a> {
    /// The base u-relations, by name.
    pub relations: &'a BTreeMap<String, URelation>,
    /// The components of the world set.
    pub components: &'a mut ComponentSet,
    /// Memoized results of extension operators, keyed by `Arc` identity.
    /// A shared (cloned) `repair-key` subtree must evaluate *once* per run:
    /// re-running it would mint fresh components for each occurrence and
    /// silently decorrelate what the plan author shares deliberately.
    ext_cache: FxHashMap<usize, URelation>,
    /// The run's descriptor interner (see the module docs).
    pool: DescriptorPool,
    /// Interned descriptor columns of already-scanned base relations, so a
    /// relation scanned several times is interned once.
    scan_cache: FxHashMap<String, Vec<DescId>>,
}

impl<'a> EvalCtx<'a> {
    /// Build a fresh context (with an empty extension-operator memo and a
    /// fresh descriptor pool).
    pub fn new(
        relations: &'a BTreeMap<String, URelation>,
        components: &'a mut ComponentSet,
    ) -> Self {
        EvalCtx {
            relations,
            components,
            ext_cache: FxHashMap::default(),
            pool: DescriptorPool::new(),
            scan_cache: FxHashMap::default(),
        }
    }
}

/// A flat chained-bucket hash index over row indices: `heads[bucket]` points
/// at the most recent row in the bucket and `next[row]` chains to the
/// previous one (both offset by one, `0` meaning "end"). Unlike a
/// `HashMap<Key, Vec<u32>>` it allocates exactly two `u32` arrays for any
/// number of rows — no per-bucket vectors, no key materialization — which is
/// what keeps the join build and hash-dedup allocation-free per row.
struct ChainedIndex {
    mask: u64,
    heads: Vec<u32>,
    next: Vec<u32>,
}

impl ChainedIndex {
    /// An index able to hold `rows` entries with a load factor ≤ ½.
    fn with_capacity(rows: usize) -> ChainedIndex {
        let buckets = (rows * 2).next_power_of_two().max(1);
        ChainedIndex {
            mask: (buckets - 1) as u64,
            heads: vec![0; buckets],
            next: vec![0; rows],
        }
    }

    /// Insert row `i` under `hash`. `i` must be below the build capacity and
    /// inserted at most once.
    #[inline]
    fn insert(&mut self, hash: u64, i: usize) {
        let b = (hash & self.mask) as usize;
        self.next[i] = self.heads[b];
        self.heads[b] = i as u32 + 1;
    }

    /// Iterate the row indices stored under `hash` (most recent first).
    #[inline]
    fn probe(&self, hash: u64) -> ChainIter<'_> {
        ChainIter {
            next: &self.next,
            cur: self.heads[(hash & self.mask) as usize],
        }
    }
}

/// Iterator over one bucket chain of a [`ChainedIndex`].
struct ChainIter<'a> {
    next: &'a [u32],
    cur: u32,
}

impl Iterator for ChainIter<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.cur == 0 {
            return None;
        }
        let i = (self.cur - 1) as usize;
        self.cur = self.next[i];
        Some(i)
    }
}

/// Hash one row: the tuple's values plus the descriptor's *terms* (handles
/// from `conjoin` are not canonical, so the hash must be over descriptor
/// content, not the handle).
#[inline]
fn row_hash(t: &Tuple, d: DescId, pool: &DescriptorPool) -> u64 {
    let mut h = FxBuildHasher::default().build_hasher();
    for v in t.values() {
        v.hash(&mut h);
    }
    pool.terms(d).hash(&mut h);
    h.finish()
}

/// An interned relation: the executor's internal row format. Tuples borrow
/// from the base relations until an operator constructs new ones; descriptors
/// are handles into the run's [`DescriptorPool`].
struct IRel<'a> {
    schema: Cow<'a, Schema>,
    rows: Vec<(Cow<'a, Tuple>, DescId)>,
}

impl<'a> IRel<'a> {
    /// Drop duplicate `(tuple, descriptor)` rows, keeping first occurrences
    /// in order. A hash-and-verify pass over a [`ChainedIndex`] instead of a
    /// comparison sort of owned descriptor vectors: candidates that collide
    /// on the row hash are verified by tuple equality plus
    /// [`DescriptorPool::same_descriptor`] (an integer compare for canonical
    /// handles, a term-slice compare for conjunction-minted ones).
    fn dedup(&mut self, pool: &DescriptorPool) {
        let n = self.rows.len();
        if n < 2 {
            return;
        }
        let mut index = ChainedIndex::with_capacity(n);
        let mut kept: Vec<(Cow<'a, Tuple>, DescId)> = Vec::with_capacity(n);
        for (t, d) in self.rows.drain(..) {
            let h = row_hash(&t, d, pool);
            let dup = index
                .probe(h)
                .any(|j| pool.same_descriptor(kept[j].1, d) && *kept[j].0 == *t);
            if !dup {
                index.insert(h, kept.len());
                kept.push((t, d));
            }
        }
        self.rows = kept;
    }

    /// Materialize as a plain [`URelation`], resolving handles back to owned
    /// descriptors. Borrowed tuples are cloned here — once, at the boundary —
    /// and owned tuples are moved.
    fn into_urelation(self, pool: &DescriptorPool) -> URelation {
        let rows = self
            .rows
            .into_iter()
            .map(|(t, d)| (t.into_owned(), pool.to_descriptor(d)))
            .collect();
        URelation::from_rows_unchecked(self.schema.into_owned(), rows)
    }

    /// Take ownership of an extension operator's result, interning its
    /// descriptors and moving (not cloning) its tuples.
    fn from_urelation(u: URelation, pool: &mut DescriptorPool) -> IRel<'a> {
        let (schema, rows) = u.into_parts();
        let rows = rows
            .into_iter()
            .map(|(t, d)| (Cow::Owned(t), pool.intern(&d)))
            .collect();
        IRel {
            schema: Cow::Owned(schema),
            rows,
        }
    }
}

/// Evaluate a plan against a world set. New components created by extension
/// operators are added to `ws.components`; the base relations are untouched.
///
/// Within one `run`, a *shared* extension subtree (the same `Arc`, e.g. a
/// cloned `repair-key` plan used on both sides of a join) is evaluated once
/// and its result reused, so both occurrences refer to the same components.
/// Two structurally equal but separately constructed subtrees remain
/// independent repairs — sharing is by `Arc` identity, which is what plan
/// `clone()` preserves.
pub fn run(ws: &mut WorldSet, plan: &Plan) -> Result<URelation, MayError> {
    let WorldSet {
        components,
        relations,
    } = ws;
    let mut ctx = EvalCtx::new(relations, components);
    eval(plan, &mut ctx)
}

/// Evaluate a plan in a context, materializing the interned result as a
/// plain [`URelation`] at the boundary. See the module docs for why each
/// operator is sound on the compact representation.
pub fn eval(plan: &Plan, ctx: &mut EvalCtx<'_>) -> Result<URelation, MayError> {
    let rel = eval_interned(plan, ctx)?;
    Ok(rel.into_urelation(&ctx.pool))
}

/// The interned evaluator proper. The returned rows may borrow tuples from
/// `ctx.relations` (lifetime `'a`), never from `ctx` itself — `ctx` stays
/// freely borrowable for the next operator.
fn eval_interned<'a>(plan: &Plan, ctx: &mut EvalCtx<'a>) -> Result<IRel<'a>, MayError> {
    match plan {
        Plan::Scan(name) => {
            let relations: &'a BTreeMap<String, URelation> = ctx.relations;
            let rel = relations
                .get(name)
                .ok_or_else(|| MayError::UnknownRelation(name.clone()))?;
            if !ctx.scan_cache.contains_key(name) {
                let ids: Vec<DescId> = rel.rows().iter().map(|(_, d)| ctx.pool.intern(d)).collect();
                ctx.scan_cache.insert(name.clone(), ids);
            }
            let ids = &ctx.scan_cache[name];
            let rows = rel
                .rows()
                .iter()
                .zip(ids)
                .map(|((t, _), &id)| (Cow::Borrowed(t), id))
                .collect();
            Ok(IRel {
                schema: Cow::Borrowed(rel.schema()),
                rows,
            })
        }
        Plan::Select { input, predicate } => {
            let mut r = eval_interned(input, ctx)?;
            // Bound once per relation; per row only `matches` runs.
            let bound = predicate.bind(&r.schema)?;
            r.rows.retain(|(t, _)| bound.matches(t));
            Ok(r)
        }
        Plan::Project { input, columns } => {
            let r = eval_interned(input, ctx)?;
            let (schema, idx) = r.schema.project(columns)?;
            let rows = r
                .rows
                .iter()
                .map(|(t, d)| (Cow::Owned(t.project(&idx)), *d))
                .collect();
            let mut out = IRel {
                schema: Cow::Owned(schema),
                rows,
            };
            out.dedup(&ctx.pool);
            Ok(out)
        }
        Plan::NaturalJoin { left, right } => {
            let l = eval_interned(left, ctx)?;
            let r = eval_interned(right, ctx)?;
            let jp = l.schema.natural_join(&r.schema)?;
            // Hash join, build on the right side. Rows are bucketed in a
            // [`ChainedIndex`] by a *hash* of their key values (computed in
            // place, once per row — no key vector is ever materialized) and
            // candidate pairs are verified with `JoinPlan::tuples_match`, so
            // neither build nor probe allocates anything per row.
            let hasher = FxBuildHasher::default();
            let key_hash = |t: &Tuple, side: fn(&(usize, usize)) -> usize| {
                let mut h = hasher.build_hasher();
                for s in &jp.shared {
                    t.values()[side(s)].hash(&mut h);
                }
                h.finish()
            };
            let mut built = ChainedIndex::with_capacity(r.rows.len());
            for (i, (t, _)) in r.rows.iter().enumerate() {
                built.insert(key_hash(t, |&(_, ri)| ri), i);
            }
            let mut rows: Vec<(Cow<'a, Tuple>, DescId)> = Vec::with_capacity(l.rows.len());
            for (lt, ld) in &l.rows {
                for i in built.probe(key_hash(lt, |&(li, _)| li)) {
                    let (rt, rd) = &r.rows[i];
                    if !jp.tuples_match(lt, rt) {
                        continue; // hash collision, not an equi-match
                    }
                    // A joined tuple exists only in worlds where both
                    // inputs exist: the conjunction of the descriptors.
                    // Inconsistent descriptors denote no worlds — drop.
                    if let Some(d) = ctx.pool.conjoin(*ld, *rd) {
                        rows.push((Cow::Owned(jp.combine(lt, rt)), d));
                    }
                }
            }
            let mut out = IRel {
                schema: Cow::Owned(jp.schema),
                rows,
            };
            out.dedup(&ctx.pool);
            Ok(out)
        }
        Plan::Union { left, right } => {
            let mut l = eval_interned(left, ctx)?;
            let r = eval_interned(right, ctx)?;
            l.schema.union_compatible(&r.schema)?;
            // Reuse the left side's allocation; reserve for the right side's
            // rows up front instead of growing inside the extend.
            l.rows.reserve(r.rows.len());
            l.rows.extend(r.rows);
            l.dedup(&ctx.pool);
            Ok(l)
        }
        Plan::Rename { input, renames } => {
            let mut r = eval_interned(input, ctx)?;
            // Only the schema changes; the rows move through untouched.
            r.schema = Cow::Owned(r.schema.rename(renames)?);
            Ok(r)
        }
        Plan::Ext(op) => {
            let key = Arc::as_ptr(op) as *const () as usize;
            if let Some(cached) = ctx.ext_cache.get(&key) {
                let cached = cached.clone();
                return Ok(IRel::from_urelation(cached, &mut ctx.pool));
            }
            let inputs = op
                .inputs()
                .into_iter()
                .map(|p| eval(p, ctx))
                .collect::<Result<Vec<_>, _>>()?;
            let result = op.eval(ctx, inputs)?;
            ctx.ext_cache.insert(key, result.clone());
            Ok(IRel::from_urelation(result, &mut ctx.pool))
        }
    }
}

/// Infer the output schema of a plan without evaluating it.
pub fn infer_schema(
    plan: &Plan,
    relations: &BTreeMap<String, URelation>,
) -> Result<Schema, MayError> {
    match plan {
        Plan::Scan(name) => relations
            .get(name)
            .map(|r| r.schema().clone())
            .ok_or_else(|| MayError::UnknownRelation(name.clone())),
        Plan::Select { input, predicate } => {
            let s = infer_schema(input, relations)?;
            // Bind to surface unknown-column errors at planning time.
            predicate.bind(&s)?;
            Ok(s)
        }
        Plan::Project { input, columns } => Ok(infer_schema(input, relations)?.project(columns)?.0),
        Plan::NaturalJoin { left, right } => Ok(infer_schema(left, relations)?
            .natural_join(&infer_schema(right, relations)?)?
            .schema),
        Plan::Union { left, right } => {
            let l = infer_schema(left, relations)?;
            l.union_compatible(&infer_schema(right, relations)?)?;
            Ok(l)
        }
        Plan::Rename { input, renames } => Ok(infer_schema(input, relations)?.rename(renames)?),
        Plan::Ext(op) => {
            let schemas = op
                .inputs()
                .into_iter()
                .map(|p| infer_schema(p, relations))
                .collect::<Result<Vec<_>, _>>()?;
            op.output_schema(&schemas)
        }
    }
}
