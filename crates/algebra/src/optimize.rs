//! The logical plan optimizer: an algebraic rewrite layer between lowering
//! and execution.
//!
//! The paper's central claim is that its uncertainty constructs form a
//! *compositional algebra*: `possible` and `certain` commute with the
//! positive relational algebra, and selections and projections rewrite
//! across operator boundaries exactly as in a classical optimizer. This
//! module exploits that: [`optimize`] runs a small fixpoint rewriter over
//! [`Plan`]s whose rules are justified one-for-one by algebraic
//! equivalences on world-set decompositions:
//!
//! | rule | equivalence | why it is sound on WSDs |
//! |------|-------------|--------------------------|
//! | selection pushdown | `σ_p(π(R)) = π(σ_p(R))`, `σ_p(ρ(R)) = ρ(σ_{p'}(R))`, `σ_p(R ∪ S) = σ_p(R) ∪ σ_p(S)`, `σ_p(R ⋈ S) = σ_p(R) ⋈ S` for `cols(p) ⊆ R` | selection reads tuple cells only and never touches descriptors |
//! | selection merge | `σ_p(σ_q(R)) = σ_{p∧q}(R)` | one sweep, and `∧` splits at the next join |
//! | projection collapse | `π_a(π_b(R)) = π_a(R)` for `a ⊆ b` | both sides deduplicate under the outer projection |
//! | projection pruning | `π_a(R ⋈ S) = π_a(π_{a∪keys}(R) ⋈ π_{a∪keys}(S))` | rows collapsed early are exact `(tuple, descriptor)` duplicates in the projected space, which the enclosing projection collapses anyway |
//! | quantifier commuting | `σ_p(possible(R)) = possible(σ_p(R))`, same for `certain` and `conf`; `π_c(possible(R)) = possible(π_c(R))` — π does **not** commute with `certain` | declared per operator via [`ExtOperator::props`]; world-collapsing then runs on the smallest intermediate |
//! | quantifier elision | `possible(R) = certain(R) = R` when `R` is provably certain and duplicate-free | every descriptor is trivial, so "some world" and "every world" both mean "the relation itself" |
//!
//! Rules fire only when a derived plan property proves them sound; the
//! properties ([`Plan::schema_with`], [`Plan::is_distinct`],
//! [`Plan::is_certain`], bundled by [`Plan::props_with`]) are computed
//! structurally against a [`SchemaProvider`], so every layer that owns
//! schemas (the executor's relation map, the MayQL catalog) can drive the
//! optimizer.
//!
//! Extension operators participate through two hooks on
//! [`ExtOperator`]: [`props`][ExtOperator::props] declares the algebraic
//! properties above, and [`with_inputs`][ExtOperator::with_inputs] rebuilds
//! the operator over rewritten inputs. Operators that implement neither are
//! opaque barriers — sound, just never rewritten across.
//!
//! **Sharing discipline.** Within one plan, a *shared* extension subtree
//! (the same `Arc`, e.g. a `repair-key` used on both sides of a join) must
//! stay shared: the executor evaluates shared subtrees once so both
//! occurrences see the same minted components. The rewriter therefore
//! memoizes pure input rewrites of extension nodes by `Arc` identity —
//! every occurrence of a shared node maps to one rewritten node. The
//! exception is *commuted* rewrites (a selection or projection crossing
//! into the operator), which are inherently per-occurrence: each occurrence
//! absorbs its own surrounding predicate, so a shared node may split into
//! distinct rebuilt nodes. That is exactly why declaring
//! [`commutes_with_select`]/[`commutes_with_project`] is restricted to
//! deterministic operators that mint nothing — splitting such a node
//! duplicates work at worst, never meaning. Operators that declare
//! [`ExtProps::requires_normalized_input`] additionally get a guard: their
//! inputs are only replaced by rewrites that preserve provable certainty.
//!
//! [`commutes_with_select`]: crate::ext::ExtProps::commutes_with_select
//! [`commutes_with_project`]: crate::ext::ExtProps::commutes_with_project
//!
//! [`ExtProps::requires_normalized_input`]: crate::ext::ExtProps::requires_normalized_input

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use maybms_core::{FxHashMap, MayError, Schema, URelation};

use crate::cost::StatsProvider;
use crate::ext::ExtOperator;
use crate::plan::Plan;
use crate::predicate::Predicate;

/// A source of base-relation schemas, the only context the optimizer (and
/// plan schema inference) needs. Implemented for the executor's relation
/// map, for a plain name → schema map, and — in `maybms-sql` — for the
/// MayQL catalog.
pub trait SchemaProvider {
    /// The schema of the named base relation, if known.
    fn base_schema(&self, name: &str) -> Option<&Schema>;
}

impl SchemaProvider for BTreeMap<String, Schema> {
    fn base_schema(&self, name: &str) -> Option<&Schema> {
        self.get(name)
    }
}

impl SchemaProvider for BTreeMap<String, URelation> {
    fn base_schema(&self, name: &str) -> Option<&Schema> {
        self.get(name).map(|r| r.schema())
    }
}

/// The derived properties of a plan: its output schema plus the two
/// structural facts the rewrite rules condition on.
#[derive(Clone, Debug)]
pub struct PlanProps {
    /// The output schema.
    pub schema: Schema,
    /// Provably duplicate-free output (see [`Plan::is_distinct`]).
    pub distinct: bool,
    /// Provably certain output — every descriptor trivial (see
    /// [`Plan::is_certain`]).
    pub certain: bool,
}

impl Plan {
    /// Infer the plan's output schema against a [`SchemaProvider`] —
    /// the provider-generic form of [`crate::eval::infer_schema`].
    pub fn schema_with(&self, schemas: &dyn SchemaProvider) -> Result<Schema, MayError> {
        match self {
            Plan::Scan(name) => schemas
                .base_schema(name)
                .cloned()
                .ok_or_else(|| MayError::UnknownRelation(name.clone())),
            Plan::Select { input, predicate } => {
                let s = input.schema_with(schemas)?;
                // Bind to surface unknown-column errors at planning time.
                predicate.bind(&s)?;
                Ok(s)
            }
            Plan::Project { input, columns } => Ok(input.schema_with(schemas)?.project(columns)?.0),
            Plan::NaturalJoin { left, right } => Ok(left
                .schema_with(schemas)?
                .natural_join(&right.schema_with(schemas)?)?
                .schema),
            Plan::Union { left, right } => {
                let l = left.schema_with(schemas)?;
                l.union_compatible(&right.schema_with(schemas)?)?;
                Ok(l)
            }
            Plan::Rename { input, renames } => Ok(input.schema_with(schemas)?.rename(renames)?),
            Plan::Ext(op) => {
                let inputs = op
                    .inputs()
                    .into_iter()
                    .map(|p| p.schema_with(schemas))
                    .collect::<Result<Vec<_>, _>>()?;
                op.output_schema(&inputs)
            }
        }
    }

    /// All derived properties at once (schema, distinctness,
    /// descriptor-triviality).
    pub fn props_with(&self, schemas: &dyn SchemaProvider) -> Result<PlanProps, MayError> {
        Ok(PlanProps {
            schema: self.schema_with(schemas)?,
            distinct: self.is_distinct(),
            certain: self.is_certain(),
        })
    }
}

/// Upper bound on rewrite passes; real plans converge in two or three, the
/// cap only guards against a pathological rule interaction cycling forever.
const MAX_PASSES: usize = 8;

/// Optimize a plan: run the pushdown/commuting rules and the projection
/// pruner to fixpoint. The result evaluates to the same u-relation as the
/// input (up to row order) on every world set whose base relations match
/// the provider's schemas; the differential test suite checks exactly that
/// on randomized plans and world sets.
pub fn optimize(plan: &Plan, schemas: &dyn SchemaProvider) -> Result<Plan, MayError> {
    let mut p = plan.clone();
    for _ in 0..MAX_PASSES {
        let mut pass = Pass::new(schemas);
        p = pass.pushdown(p)?;
        p = pass.prune(p, None)?;
        if pass.rewrites == 0 {
            break;
        }
    }
    Ok(p)
}

/// One rewrite pass: a pushdown/commuting sweep followed by a projection
/// pruning sweep, with per-pass memoization of extension-node rewrites.
struct Pass<'a> {
    schemas: &'a dyn SchemaProvider,
    /// Rules fired this pass (drives the fixpoint loop).
    rewrites: usize,
    /// Pushdown results for extension nodes, by `Arc` identity — a shared
    /// subtree rewrites to one shared result.
    push_memo: FxHashMap<usize, Plan>,
    /// Pruning results for barrier extension nodes, by `Arc` identity.
    prune_memo: FxHashMap<usize, Plan>,
}

/// Flatten a predicate's top-level conjunction into conjuncts.
fn conjuncts(p: Predicate, out: &mut Vec<Predicate>) {
    match p {
        Predicate::And(ps) => {
            for q in ps {
                conjuncts(q, out);
            }
        }
        other => out.push(other),
    }
}

/// Rebuild a conjunction from conjuncts (`None` when empty).
fn and_of(mut ps: Vec<Predicate>) -> Option<Predicate> {
    match ps.len() {
        0 => None,
        1 => ps.pop(),
        _ => Some(Predicate::And(ps)),
    }
}

impl<'a> Pass<'a> {
    fn new(schemas: &'a dyn SchemaProvider) -> Self {
        Pass {
            schemas,
            rewrites: 0,
            push_memo: FxHashMap::default(),
            prune_memo: FxHashMap::default(),
        }
    }

    /// The pushdown/commuting sweep: selections sink toward scans (through
    /// projections, renames, unions, into join inputs, and across
    /// commuting extension operators), adjacent selections merge, nested
    /// projections collapse, and redundant operators (identity projections,
    /// quantifiers over certain duplicate-free inputs) are elided.
    fn pushdown(&mut self, plan: Plan) -> Result<Plan, MayError> {
        match plan {
            Plan::Scan(_) => Ok(plan),
            Plan::Select { input, predicate } => {
                let input = self.pushdown(*input)?;
                self.push_select(input, predicate)
            }
            Plan::Project { mut input, columns } => {
                let mut inner = self.pushdown(*input)?;
                // π_a(π_b(X)) → π_a(X): `a ⊆ b` by typing, and both sides
                // deduplicate under the outer projection.
                while let Plan::Project { input: i2, .. } = inner {
                    self.rewrites += 1;
                    inner = *i2; // already swept as part of this pass
                }
                // An identity projection over a provably duplicate-free
                // input neither reorders nor deduplicates anything.
                if inner.is_distinct() {
                    let schema = inner.schema_with(self.schemas)?;
                    if schema.names() == columns.iter().map(String::as_str).collect::<Vec<_>>() {
                        self.rewrites += 1;
                        return Ok(inner);
                    }
                }
                *input = inner;
                Ok(Plan::Project { input, columns })
            }
            Plan::Rename { mut input, renames } => {
                let inner = self.pushdown(*input)?;
                if renames.is_empty() {
                    self.rewrites += 1;
                    return Ok(inner);
                }
                *input = inner;
                Ok(Plan::Rename { input, renames })
            }
            Plan::NaturalJoin { left, right } => {
                Ok(self.pushdown(*left)?.join(self.pushdown(*right)?))
            }
            Plan::Union { left, right } => Ok(self.pushdown(*left)?.union(self.pushdown(*right)?)),
            Plan::Ext(op) => self.push_ext(op),
        }
    }

    /// Push one selection as deep as its column set allows. `input` has
    /// already been swept by [`Pass::pushdown`].
    fn push_select(&mut self, input: Plan, pred: Predicate) -> Result<Plan, MayError> {
        if matches!(pred, Predicate::True) {
            self.rewrites += 1;
            return Ok(input);
        }
        match input {
            // σ_p(σ_q(X)) → σ_{q∧p}(X): one sweep, and the conjunction
            // splits per side at the next join below.
            Plan::Select {
                input: i2,
                predicate: q,
            } => {
                self.rewrites += 1;
                self.push_select(*i2, Predicate::And(vec![q, pred]))
            }
            // σ_p(π_c(X)) → π_c(σ_p(X)): p only reads columns of c.
            Plan::Project { input: i2, columns } => {
                self.rewrites += 1;
                Ok(self.push_select(*i2, pred)?.project(columns))
            }
            // σ_p(ρ(X)) → ρ(σ_{p'}(X)) with p's columns mapped back
            // through the renaming (simultaneously, so swaps resolve).
            Plan::Rename { input: i2, renames } => {
                self.rewrites += 1;
                let back: FxHashMap<&str, &str> = renames
                    .iter()
                    .map(|(o, n)| (n.as_str(), o.as_str()))
                    .collect();
                let pred = pred
                    .map_columns(&|c| back.get(c).map_or_else(|| c.to_string(), |o| o.to_string()));
                Ok(self.push_select(*i2, pred)?.rename(renames))
            }
            // σ_p(X ∪ Y) → σ_p(X) ∪ σ_p(Y).
            Plan::Union { left, right } => {
                self.rewrites += 1;
                let l = self.push_select(*left, pred.clone())?;
                let r = self.push_select(*right, pred)?;
                Ok(l.union(r))
            }
            // σ_p(X ⋈ Y): each conjunct sinks into the side that has all
            // of its columns; conjuncts spanning both sides stay above.
            Plan::NaturalJoin { left, right } => {
                let ls = left.schema_with(self.schemas)?;
                let rs = right.schema_with(self.schemas)?;
                let mut parts = Vec::new();
                conjuncts(pred, &mut parts);
                let (mut to_l, mut to_r, mut keep) = (Vec::new(), Vec::new(), Vec::new());
                for c in parts {
                    let mut cols = BTreeSet::new();
                    c.columns(&mut cols);
                    if cols.iter().all(|n| ls.col_index(n).is_ok()) {
                        to_l.push(c);
                    } else if cols.iter().all(|n| rs.col_index(n).is_ok()) {
                        to_r.push(c);
                    } else {
                        keep.push(c);
                    }
                }
                if to_l.is_empty() && to_r.is_empty() {
                    let joined = left.join(*right);
                    return Ok(match and_of(keep) {
                        Some(p) => joined.select(p),
                        None => joined,
                    });
                }
                self.rewrites += 1;
                let l = match and_of(to_l) {
                    Some(p) => self.push_select(*left, p)?,
                    None => *left,
                };
                let r = match and_of(to_r) {
                    Some(p) => self.push_select(*right, p)?,
                    None => *right,
                };
                let joined = l.join(r);
                Ok(match and_of(keep) {
                    Some(p) => joined.select(p),
                    None => joined,
                })
            }
            // σ_p(op(X)) → op(σ_p(X)) when the operator declares the
            // commutation, applied per conjunct: conjuncts reading only
            // columns of op's *input* cross, conjuncts over produced
            // columns (e.g. `conf`) stay above.
            Plan::Ext(op) => {
                let mut pred = pred;
                let props = op.props();
                if props.commutes_with_select && op.inputs().len() == 1 {
                    let in_schema = op.inputs()[0].schema_with(self.schemas)?;
                    let mut parts = Vec::new();
                    conjuncts(pred, &mut parts);
                    let (mut cross, mut keep) = (Vec::new(), Vec::new());
                    for c in parts {
                        let mut cols = BTreeSet::new();
                        c.columns(&mut cols);
                        if cols.iter().all(|n| in_schema.col_index(n).is_ok()) {
                            cross.push(c);
                        } else {
                            keep.push(c);
                        }
                    }
                    if let Some(p) = and_of(cross.clone()) {
                        let before = self.rewrites;
                        let pushed = self.push_select(op.inputs()[0].clone(), p)?;
                        if let Some(rebuilt) = op.with_inputs(vec![pushed]) {
                            self.rewrites += 1;
                            return Ok(match and_of(keep) {
                                Some(q) => rebuilt.select(q),
                                None => rebuilt,
                            });
                        }
                        // No rebuild hook: roll back and keep σ above.
                        self.rewrites = before;
                    }
                    cross.extend(keep);
                    pred = and_of(cross).expect("conjuncts of a non-True predicate");
                }
                let before = self.rewrites;
                let node = self.push_ext(op)?;
                if self.rewrites > before {
                    // The node changed shape (e.g. a quantifier elided);
                    // the selection may sink further into the new shape.
                    self.push_select(node, pred)
                } else {
                    Ok(node.select(pred))
                }
            }
            other @ Plan::Scan(_) => Ok(other.select(pred)),
        }
    }

    /// Sweep an extension node: rewrite its inputs (memoized by `Arc`
    /// identity so shared subtrees stay shared) and elide the operator
    /// entirely when its properties prove it the identity.
    fn push_ext(&mut self, op: Arc<dyn ExtOperator>) -> Result<Plan, MayError> {
        let key = Arc::as_ptr(&op) as *const () as usize;
        if let Some(done) = self.push_memo.get(&key) {
            return Ok(done.clone());
        }
        let before = self.rewrites;
        let rewritten = op
            .inputs()
            .into_iter()
            .cloned()
            .map(|p| self.pushdown(p))
            .collect::<Result<Vec<_>, _>>()?;
        let node = if self.rewrites == before {
            Plan::Ext(Arc::clone(&op))
        } else {
            self.rebuild(&op, rewritten, before)
        };
        if let Plan::Ext(op2) = &node {
            let props = op2.props();
            if props.identity_on_certain && op2.inputs().len() == 1 {
                let input = op2.inputs()[0];
                if input.is_certain() && input.is_distinct() {
                    let out = input.clone();
                    self.rewrites += 1;
                    self.push_memo.insert(key, out.clone());
                    return Ok(out);
                }
            }
        }
        self.push_memo.insert(key, node.clone());
        Ok(node)
    }

    /// Rebuild an extension operator over rewritten inputs, refusing the
    /// rewrite (and rolling the rewrite count back to `before`) when the
    /// operator has no rebuild hook, or when it requires normalized input
    /// and a rewritten input lost its provable certainty.
    fn rebuild(&mut self, op: &Arc<dyn ExtOperator>, inputs: Vec<Plan>, before: usize) -> Plan {
        if op.props().requires_normalized_input {
            let preserved = op
                .inputs()
                .iter()
                .zip(&inputs)
                .all(|(orig, new)| !orig.is_certain() || new.is_certain());
            if !preserved {
                self.rewrites = before;
                return Plan::Ext(Arc::clone(op));
            }
        }
        match op.with_inputs(inputs) {
            Some(rebuilt) => rebuilt,
            None => {
                self.rewrites = before;
                Plan::Ext(Arc::clone(op))
            }
        }
    }

    /// The projection pruning sweep (top-down): `required` is the set of
    /// columns some enclosing projection will keep — `None` means all.
    /// Requirements flow through selections (plus their predicate columns),
    /// renames (mapped back), unions, and commuting extension operators,
    /// and at a join each input is narrowed to its required columns plus
    /// the join keys, so the join materializes (gathers) only columns a
    /// consumer needs. Narrowing is sound because every `required` set
    /// originates at a projection, whose set semantics collapse exactly the
    /// rows the early narrowing collapses.
    fn prune(&mut self, plan: Plan, required: Option<&BTreeSet<String>>) -> Result<Plan, MayError> {
        match plan {
            Plan::Scan(_) => Ok(plan),
            Plan::Select {
                mut input,
                predicate,
            } => {
                let req2 = required.map(|r| {
                    let mut s = r.clone();
                    predicate.columns(&mut s);
                    s
                });
                *input = self.prune(*input, req2.as_ref())?;
                Ok(Plan::Select { input, predicate })
            }
            Plan::Project { mut input, columns } => {
                let cols = match required {
                    Some(req) => {
                        let kept: Vec<String> = columns
                            .iter()
                            .filter(|c| req.contains(*c))
                            .cloned()
                            .collect();
                        if kept.len() != columns.len() && !kept.is_empty() {
                            self.rewrites += 1;
                            kept
                        } else {
                            columns
                        }
                    }
                    None => columns,
                };
                let req2: BTreeSet<String> = cols.iter().cloned().collect();
                *input = self.prune(*input, Some(&req2))?;
                Ok(Plan::Project {
                    input,
                    columns: cols,
                })
            }
            Plan::Rename { input, renames } => {
                let input = match required {
                    None => self.prune(*input, None)?,
                    Some(req) => {
                        // The rename node itself is metadata-only, so every
                        // pair is kept and every pair's *source* column is
                        // required below — dropping a pair (or its source)
                        // could leave the source column alive under its old
                        // name and collide with another pair's target (a
                        // swap like `a → b, b → a` pruned to one pair would
                        // rename onto a still-existing column). Surviving
                        // requirements map back through the renaming.
                        let mut req2: BTreeSet<String> = req
                            .iter()
                            .map(|n| match renames.iter().find(|(_, new)| new == n) {
                                Some((old, _)) => old.clone(),
                                None => n.clone(),
                            })
                            .collect();
                        for (old, _) in &renames {
                            req2.insert(old.clone());
                        }
                        self.prune(*input, Some(&req2))?
                    }
                };
                if renames.is_empty() {
                    self.rewrites += 1;
                    return Ok(input);
                }
                Ok(Plan::Rename {
                    input: Box::new(input),
                    renames,
                })
            }
            Plan::NaturalJoin { left, right } => {
                let Some(req) = required else {
                    let l = self.prune(*left, None)?;
                    let r = self.prune(*right, None)?;
                    return Ok(l.join(r));
                };
                let ls = left.schema_with(self.schemas)?;
                let rs = right.schema_with(self.schemas)?;
                let shared: BTreeSet<&str> = ls
                    .names()
                    .into_iter()
                    .filter(|n| rs.col_index(n).is_ok())
                    .collect();
                let side_req = |s: &Schema| -> BTreeSet<String> {
                    s.names()
                        .into_iter()
                        .filter(|n| req.contains(*n) || shared.contains(n))
                        .map(str::to_string)
                        .collect()
                };
                let (lreq, rreq) = (side_req(&ls), side_req(&rs));
                let l = self.prune(*left, Some(&lreq))?;
                let l = self.narrow(l, &lreq)?;
                let r = self.prune(*right, Some(&rreq))?;
                let r = self.narrow(r, &rreq)?;
                Ok(l.join(r))
            }
            Plan::Union { left, right } => {
                let l = self.prune(*left, required)?;
                let r = self.prune(*right, required)?;
                match required {
                    // Both sides narrow to the same required subset (their
                    // schemas are union-compatible), keeping the union
                    // union-compatible.
                    Some(req) => Ok(self.narrow(l, req)?.union(self.narrow(r, req)?)),
                    None => Ok(l.union(r)),
                }
            }
            Plan::Ext(op) => self.prune_ext(op, required),
        }
    }

    /// Prune across an extension node: commuting operators pass the
    /// requirement through to their input; barrier operators restart the
    /// requirement at `None` (their full input is a consumer), memoized by
    /// `Arc` identity.
    fn prune_ext(
        &mut self,
        op: Arc<dyn ExtOperator>,
        required: Option<&BTreeSet<String>>,
    ) -> Result<Plan, MayError> {
        let props = op.props();
        if props.commutes_with_project && op.inputs().len() == 1 {
            let before = self.rewrites;
            let pruned = self.prune(op.inputs()[0].clone(), required)?;
            if self.rewrites == before {
                return Ok(Plan::Ext(op));
            }
            return Ok(self.rebuild(&op, vec![pruned], before));
        }
        let key = Arc::as_ptr(&op) as *const () as usize;
        if let Some(done) = self.prune_memo.get(&key) {
            return Ok(done.clone());
        }
        let before = self.rewrites;
        let pruned = op
            .inputs()
            .into_iter()
            .cloned()
            .map(|p| self.prune(p, None))
            .collect::<Result<Vec<_>, _>>()?;
        let node = if self.rewrites == before {
            Plan::Ext(Arc::clone(&op))
        } else {
            self.rebuild(&op, pruned, before)
        };
        self.prune_memo.insert(key, node.clone());
        Ok(node)
    }

    /// Wrap `plan` in a projection onto `required` (in schema order) when
    /// that drops at least one column; otherwise return it unchanged. Never
    /// narrows to zero columns.
    fn narrow(&mut self, plan: Plan, required: &BTreeSet<String>) -> Result<Plan, MayError> {
        let schema = plan.schema_with(self.schemas)?;
        let keep: Vec<String> = schema
            .names()
            .into_iter()
            .filter(|n| required.contains(*n))
            .map(str::to_string)
            .collect();
        if keep.len() == schema.arity() || keep.is_empty() {
            return Ok(plan);
        }
        // Idempotence: a projection that already implements the narrowing
        // must not be wrapped again.
        if let Plan::Project { columns, .. } = &plan {
            if *columns == keep {
                return Ok(plan);
            }
        }
        self.rewrites += 1;
        Ok(plan.project(keep))
    }
}

/// A cost-based rewrite must beat the current shape's estimated cost by at
/// least this factor to fire. The strict margin is what makes
/// [`optimize_with_stats`] converge: every accepted rewrite decreases the
/// estimated cost by ≥5%, so the rules↔cost loop cannot oscillate between
/// estimate-equivalent shapes, and a plan the cost phase already chose
/// re-estimates as optimal and is left alone.
const COST_IMPROVEMENT: f64 = 0.95;

/// Dynamic programming over join subsets is exact up to this many leaves
/// (3ⁿ ≈ 6.5k subproblems at 8); larger join trees fall back to a greedy
/// cheapest-pair heuristic.
const DP_MAX_LEAVES: usize = 8;

/// Optimize a plan with the rule fixpoint *and* the statistics-driven
/// cost-based phase: join-tree reordering (exact DP up to
/// `DP_MAX_LEAVES` (8) relations, greedy beyond), distribution of
/// union-distributing quantifiers ([`ExtProps::distributes_over_union`])
/// over unions, and per-operator plan-time tuning
/// ([`ExtOperator::plan_time_tuned`]).
///
/// The two phases interleave to a fixpoint: cost rewrites (e.g. the
/// schema-restoring projection a reorder inserts) re-feed the rules, whose
/// output re-feeds the cost phase, until a whole round changes nothing.
/// That exit condition makes the function **idempotent** — running it on
/// its own output returns the output unchanged — which the differential
/// suite asserts. With a stats-less provider this is exactly [`optimize`].
///
/// Like the rule phase, every rewrite is meaning-preserving: the result
/// evaluates to the same u-relation as the input (up to row order) on every
/// world set matching the provider's schemas, whatever the statistics say —
/// estimates only ever pick among equivalent shapes.
///
/// [`ExtProps::distributes_over_union`]: crate::ext::ExtProps::distributes_over_union
/// [`ExtOperator::plan_time_tuned`]: crate::ext::ExtOperator::plan_time_tuned
pub fn optimize_with_stats(
    plan: &Plan,
    schemas: &dyn SchemaProvider,
    stats: &dyn StatsProvider,
) -> Result<Plan, MayError> {
    let mut p = optimize(plan, schemas)?;
    if !stats.has_stats() {
        return Ok(p);
    }
    let mut prev = p.to_string();
    for _ in 0..MAX_PASSES {
        let mut pass = CostPass {
            schemas,
            stats,
            rewrites: 0,
            memo: FxHashMap::default(),
        };
        let c = pass.rewrite(p.clone())?;
        if pass.rewrites == 0 {
            return Ok(p);
        }
        let r = optimize(&c, schemas)?;
        let cur = r.to_string();
        p = r;
        if cur == prev {
            return Ok(p);
        }
        prev = cur;
    }
    Ok(p)
}

/// The shape of a join tree over flattened leaves, kept so the current
/// plan's cost can be estimated with the same per-subset formula the DP
/// uses (otherwise the comparison would be apples to oranges).
enum JoinShape {
    /// A non-join leaf, by index into the flattened leaf list.
    Leaf(usize),
    /// An inner join node.
    Node(Box<JoinShape>, Box<JoinShape>),
}

/// Tear a maximal join tree into its non-join leaves (left to right),
/// returning the original shape over leaf indices.
fn flatten_join(plan: Plan, leaves: &mut Vec<Plan>) -> JoinShape {
    match plan {
        Plan::NaturalJoin { left, right } => {
            let l = flatten_join(*left, leaves);
            let r = flatten_join(*right, leaves);
            JoinShape::Node(Box::new(l), Box::new(r))
        }
        other => {
            leaves.push(other);
            JoinShape::Leaf(leaves.len() - 1)
        }
    }
}

/// One cost-based sweep (bottom-up). Separate from [`Pass`] because its
/// rewrites are chosen by estimate comparison, not proved-sound rule
/// matching — the soundness argument here is that every candidate is an
/// algebraic equivalence (join trees over the same leaf set, quantifier
/// distribution declared by the operator) and the estimates only *select*.
struct CostPass<'a> {
    schemas: &'a dyn SchemaProvider,
    stats: &'a dyn StatsProvider,
    /// Cost-based rewrites fired this sweep (drives the outer fixpoint).
    rewrites: usize,
    /// Rewrites of extension nodes by `Arc` identity, so shared subtrees
    /// stay shared (see the module docs' sharing discipline).
    memo: FxHashMap<usize, Plan>,
}

impl<'a> CostPass<'a> {
    fn est(&self, plan: &Plan) -> (crate::cost::CardEst, f64) {
        crate::cost::plan_cost(plan, self.schemas, self.stats)
    }

    fn rewrite(&mut self, plan: Plan) -> Result<Plan, MayError> {
        match plan {
            Plan::Scan(_) => Ok(plan),
            Plan::Select {
                mut input,
                predicate,
            } => {
                *input = self.rewrite(*input)?;
                Ok(Plan::Select { input, predicate })
            }
            Plan::Project { mut input, columns } => {
                *input = self.rewrite(*input)?;
                Ok(Plan::Project { input, columns })
            }
            Plan::Rename { mut input, renames } => {
                *input = self.rewrite(*input)?;
                Ok(Plan::Rename { input, renames })
            }
            Plan::Union {
                mut left,
                mut right,
            } => {
                *left = self.rewrite(*left)?;
                *right = self.rewrite(*right)?;
                Ok(Plan::Union { left, right })
            }
            Plan::NaturalJoin { .. } => self.reorder_join(plan),
            Plan::Ext(op) => self.rewrite_ext(op),
        }
    }

    /// Reorder a maximal join tree. The candidate search scores every shape
    /// with the *set-canonical* estimate ([`crate::cost::join_set_est`]) —
    /// the same leaf subset always estimates the same cardinality, whatever
    /// the order — so the DP's principle of optimality holds, and a shape
    /// the search already chose re-scores as optimal on later sweeps
    /// (stability). A rewrite fires only when the best shape beats the
    /// current one by the [`COST_IMPROVEMENT`] margin; the original output
    /// column order is restored with a projection when the new shape's
    /// schema permutes it (sound: join output is duplicate-free, and a
    /// full-width projection of a duplicate-free input drops nothing).
    fn reorder_join(&mut self, plan: Plan) -> Result<Plan, MayError> {
        let orig_names: Vec<String> = plan
            .schema_with(self.schemas)?
            .names()
            .into_iter()
            .map(str::to_string)
            .collect();
        let mut leaves = Vec::new();
        let shape = flatten_join(plan, &mut leaves);
        let leaves = leaves
            .into_iter()
            .map(|l| self.rewrite(l))
            .collect::<Result<Vec<_>, _>>()?;
        let ests: Vec<crate::cost::CardEst> = leaves.iter().map(|l| self.est(l).0).collect();
        let n = leaves.len();

        // Cardinality of every leaf subset, via the order-invariant
        // formula; index = bitmask over leaves (n ≤ DP_MAX_LEAVES), or
        // computed on demand for the greedy path.
        let set_rows = |mask: usize| -> f64 {
            let subset: Vec<&crate::cost::CardEst> = (0..n)
                .filter(|i| mask & (1 << i) != 0)
                .map(|i| &ests[i])
                .collect();
            crate::cost::join_set_est(&subset).rows
        };

        // Join-step cost of the current shape under the same estimates
        // (leaf subtree costs are common to every shape and cancel).
        fn shape_cost(shape: &JoinShape, set_rows: &dyn Fn(usize) -> f64) -> (usize, f64) {
            match shape {
                JoinShape::Leaf(i) => (1 << i, 0.0),
                JoinShape::Node(l, r) => {
                    let (ml, cl) = shape_cost(l, set_rows);
                    let (mr, cr) = shape_cost(r, set_rows);
                    let mask = ml | mr;
                    let step =
                        crate::cost::join_step_cost(set_rows(ml), set_rows(mr), set_rows(mask));
                    (mask, cl + cr + step)
                }
            }
        }
        let (full_mask, current_cost) = shape_cost(&shape, &set_rows);

        let (best_cost, best_plan) = if n <= DP_MAX_LEAVES {
            self.dp_best(&leaves, &set_rows, full_mask)
        } else {
            self.greedy_best(&leaves, &ests)
        };

        fn rebuild_shape(shape: &JoinShape, leaves: &[Plan]) -> Plan {
            match shape {
                JoinShape::Leaf(i) => leaves[*i].clone(),
                JoinShape::Node(l, r) => rebuild_shape(l, leaves).join(rebuild_shape(r, leaves)),
            }
        }

        if best_cost < current_cost * COST_IMPROVEMENT {
            let best_names: Vec<String> = best_plan
                .schema_with(self.schemas)?
                .names()
                .into_iter()
                .map(str::to_string)
                .collect();
            self.rewrites += 1;
            if best_names == orig_names {
                Ok(best_plan)
            } else {
                Ok(best_plan.project(orig_names))
            }
        } else {
            Ok(rebuild_shape(&shape, &leaves))
        }
    }

    /// Exact bushy DP over leaf subsets: `best[mask]` is the cheapest join
    /// tree over that subset; every split into two non-empty halves is
    /// tried in both orientations (the cost model is asymmetric — the right
    /// side is the hash build side).
    fn dp_best(
        &self,
        leaves: &[Plan],
        set_rows: &dyn Fn(usize) -> f64,
        full_mask: usize,
    ) -> (f64, Plan) {
        let n = leaves.len();
        let mut best: Vec<Option<(f64, Plan)>> = vec![None; 1 << n];
        for (i, leaf) in leaves.iter().enumerate() {
            best[1 << i] = Some((0.0, leaf.clone()));
        }
        for mask in 1usize..(1 << n) {
            if mask.count_ones() < 2 {
                continue;
            }
            let rows_out = set_rows(mask);
            let mut acc: Option<(f64, Plan)> = None;
            // Enumerate ordered splits (sub = left/probe, rest = right/
            // build); `(sub - 1) & mask` walks every proper submask.
            let mut sub = (mask - 1) & mask;
            while sub != 0 {
                let rest = mask ^ sub;
                if let (Some((cl, pl)), Some((cr, pr))) = (&best[sub], &best[rest]) {
                    let step = crate::cost::join_step_cost(set_rows(sub), set_rows(rest), rows_out);
                    let cost = cl + cr + step;
                    if acc.as_ref().map_or(true, |(c, _)| cost < *c) {
                        acc = Some((cost, pl.clone().join(pr.clone())));
                    }
                }
                sub = (sub - 1) & mask;
            }
            best[mask] = acc;
        }
        best[full_mask]
            .clone()
            .expect("every leaf subset has a join tree")
    }

    /// Greedy fallback beyond [`DP_MAX_LEAVES`]: repeatedly merge the pair
    /// of partial trees with the cheapest join step (both orientations).
    fn greedy_best(&self, leaves: &[Plan], ests: &[crate::cost::CardEst]) -> (f64, Plan) {
        let mut parts: Vec<(f64, Plan, crate::cost::CardEst)> = leaves
            .iter()
            .zip(ests)
            .map(|(l, e)| (0.0, l.clone(), e.clone()))
            .collect();
        while parts.len() > 1 {
            let mut pick = (0usize, 1usize, f64::INFINITY, 0.0f64);
            for i in 0..parts.len() {
                for j in 0..parts.len() {
                    if i == j {
                        continue;
                    }
                    let out = crate::cost::join_set_est(&[&parts[i].2, &parts[j].2]).rows;
                    let step = crate::cost::join_step_cost(parts[i].2.rows, parts[j].2.rows, out);
                    let cost = parts[i].0 + parts[j].0 + step;
                    if cost < pick.2 {
                        pick = (i, j, cost, out);
                    }
                }
            }
            let (i, j, cost, _) = pick;
            let (hi, lo) = (i.max(j), i.min(j));
            let (_, pj, ej) = parts.swap_remove(hi);
            let (_, pi, ei) = parts.swap_remove(lo);
            // `swap_remove(hi)` first keeps `lo`'s index valid; reassemble
            // in (i = probe, j = build) orientation.
            let (pl, pr, el, er) = if hi == j {
                (pi, pj, ei, ej)
            } else {
                (pj, pi, ej, ei)
            };
            let joined_est = crate::cost::join_set_est(&[&el, &er]);
            parts.push((cost, pl.join(pr), joined_est));
        }
        let (cost, plan, _) = parts.pop().expect("one tree remains");
        (cost, plan)
    }

    /// Sweep an extension node: rewrite its inputs (memoized by `Arc`
    /// identity), then try the two cost-gated rewrites the operator
    /// declares — distribution over a union input, and plan-time tuning.
    fn rewrite_ext(&mut self, op: Arc<dyn ExtOperator>) -> Result<Plan, MayError> {
        let key = Arc::as_ptr(&op) as *const () as usize;
        if let Some(done) = self.memo.get(&key) {
            return Ok(done.clone());
        }
        let before = self.rewrites;
        let rewritten = op
            .inputs()
            .into_iter()
            .cloned()
            .map(|p| self.rewrite(p))
            .collect::<Result<Vec<_>, _>>()?;
        let node = if self.rewrites == before {
            Plan::Ext(Arc::clone(&op))
        } else {
            self.rebuild_guarded(&op, rewritten, before)
        };
        let node = self.distribute_or_tune(node)?;
        self.memo.insert(key, node.clone());
        Ok(node)
    }

    /// [`Pass::rebuild`]'s guard, replayed for the cost phase: refuse input
    /// replacement when the operator has no rebuild hook or requires
    /// normalized input and a rewritten input lost provable certainty.
    fn rebuild_guarded(
        &mut self,
        op: &Arc<dyn ExtOperator>,
        inputs: Vec<Plan>,
        before: usize,
    ) -> Plan {
        if op.props().requires_normalized_input {
            let preserved = op
                .inputs()
                .iter()
                .zip(&inputs)
                .all(|(orig, new)| !orig.is_certain() || new.is_certain());
            if !preserved {
                self.rewrites = before;
                return Plan::Ext(Arc::clone(op));
            }
        }
        match op.with_inputs(inputs) {
            Some(rebuilt) => rebuilt,
            None => {
                self.rewrites = before;
                Plan::Ext(Arc::clone(op))
            }
        }
    }

    /// Apply the operator-declared, estimate-gated rewrites to an extension
    /// node: `op(A ∪ B) → op(A) ∪ op(B)` when the operator distributes over
    /// union and the split estimates ≥5% cheaper (each side elided outright
    /// when provably certain and duplicate-free), else the operator's
    /// [`ExtOperator::plan_time_tuned`] self-replacement.
    fn distribute_or_tune(&mut self, node: Plan) -> Result<Plan, MayError> {
        let Plan::Ext(op) = node else {
            return Ok(node);
        };
        let props = op.props();
        if props.distributes_over_union && op.inputs().len() == 1 {
            if let Plan::Union { left, right } = op.inputs()[0] {
                let side = |input: &Plan| -> Option<Plan> {
                    if props.identity_on_certain && input.is_certain() && input.is_distinct() {
                        return Some(input.clone());
                    }
                    op.with_inputs(vec![input.clone()])
                };
                if let (Some(l), Some(r)) = (side(left), side(right)) {
                    let candidate = l.union(r);
                    let current = Plan::Ext(Arc::clone(&op));
                    let (_, cand_cost) = self.est(&candidate);
                    let (_, cur_cost) = self.est(&current);
                    if cand_cost < cur_cost * COST_IMPROVEMENT {
                        self.rewrites += 1;
                        return Ok(candidate);
                    }
                }
            }
        }
        if let Some(first) = op.inputs().first() {
            let (in_est, _) = self.est(first);
            if let Some(tuned) = op.plan_time_tuned(in_est.rows, in_est.nontrivial_frac) {
                self.rewrites += 1;
                return Ok(tuned);
            }
        }
        Ok(Plan::Ext(op))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::{col, lit};
    use maybms_core::ValueType;

    fn schemas() -> BTreeMap<String, Schema> {
        let mut m = BTreeMap::new();
        m.insert(
            "r1".to_string(),
            Schema::of(&[("a", ValueType::Int), ("b", ValueType::Int)]).unwrap(),
        );
        m.insert(
            "r2".to_string(),
            Schema::of(&[("b", ValueType::Int), ("c", ValueType::Int)]).unwrap(),
        );
        m.insert(
            "r3".to_string(),
            Schema::of(&[("c", ValueType::Int), ("d", ValueType::Int)]).unwrap(),
        );
        m
    }

    fn opt(plan: Plan) -> String {
        optimize(&plan, &schemas()).expect("optimizes").to_string()
    }

    /// Statistics making `r1` large (10⁴ rows), `r2` medium (10³), `r3`
    /// tiny (10), with join keys `b` (ndv 100) and `c` (ndv 10³ in r2,
    /// 10 in r3).
    fn stats() -> BTreeMap<String, maybms_core::RelationStats> {
        use maybms_core::stats::{ColumnStats, RelationStats};
        let rel = |rows: u64, cols: &[(&str, f64)]| RelationStats {
            rows,
            columns: cols
                .iter()
                .map(|&(name, ndv)| {
                    (
                        name.to_string(),
                        ColumnStats {
                            distinct: ndv,
                            min_max: None,
                        },
                    )
                })
                .collect(),
            nontrivial_frac: 0.0,
            mean_alternatives: 0.0,
        };
        let mut m = BTreeMap::new();
        m.insert(
            "r1".to_string(),
            rel(10_000, &[("a", 10_000.0), ("b", 100.0)]),
        );
        m.insert(
            "r2".to_string(),
            rel(1_000, &[("b", 100.0), ("c", 1_000.0)]),
        );
        m.insert("r3".to_string(), rel(10, &[("c", 10.0), ("d", 10.0)]));
        m
    }

    fn opt_cost(plan: &Plan) -> Plan {
        optimize_with_stats(plan, &schemas(), &stats()).expect("optimizes")
    }

    #[test]
    fn cost_phase_reorders_a_pathological_join_chain() {
        // Text order joins the two big relations first (10⁵ intermediate);
        // the cost phase joins r2 ⋈ r3 first (10 rows) and probes r1 into
        // it. The new shape's schema is already a–b–c–d, so no restoring
        // projection is needed.
        let plan = Plan::scan("r1")
            .join(Plan::scan("r2"))
            .join(Plan::scan("r3"));
        let best = opt_cost(&plan);
        assert_eq!(
            best.to_string(),
            "natural-join\n  scan[r1]\n  natural-join\n    scan[r2]\n    scan[r3]\n"
        );
    }

    #[test]
    fn reorder_restores_the_original_column_order() {
        // Swapping a 2-leaf join puts the small relation on the build
        // (right) side; the output column order changes, so the cost phase
        // wraps the result in a projection onto the original schema.
        let plan = Plan::scan("r2").join(Plan::scan("r1"));
        let best = opt_cost(&plan);
        assert_eq!(
            best.to_string(),
            "project[b, c, a]\n  natural-join\n    scan[r1]\n    scan[r2]\n"
        );
        let sch = best.schema_with(&schemas()).expect("schema");
        assert_eq!(sch.names(), vec!["b", "c", "a"]);
    }

    #[test]
    fn cost_optimization_is_idempotent() {
        for plan in [
            Plan::scan("r1")
                .join(Plan::scan("r2"))
                .join(Plan::scan("r3")),
            Plan::scan("r3")
                .join(Plan::scan("r2"))
                .join(Plan::scan("r1")),
            Plan::scan("r2").join(Plan::scan("r1")),
            Plan::scan("r1")
                .join(Plan::scan("r2"))
                .join(Plan::scan("r3"))
                .project(["a", "d"]),
        ] {
            let once = opt_cost(&plan);
            let twice = opt_cost(&once);
            assert_eq!(once.to_string(), twice.to_string());
        }
    }

    #[test]
    fn without_stats_the_cost_phase_is_a_no_op() {
        let empty: BTreeMap<String, maybms_core::RelationStats> = BTreeMap::new();
        let plan = Plan::scan("r2").join(Plan::scan("r1"));
        let with = optimize_with_stats(&plan, &schemas(), &empty).expect("optimizes");
        assert_eq!(with.to_string(), opt(plan));
    }

    #[test]
    fn near_tie_shapes_are_left_alone() {
        // r2 ⋈ r3 is already the cheap order; the margin keeps the shape.
        let plan = Plan::scan("r2").join(Plan::scan("r3"));
        let best = opt_cost(&plan);
        assert_eq!(best.to_string(), "natural-join\n  scan[r2]\n  scan[r3]\n");
    }

    #[test]
    fn selection_sinks_below_a_join() {
        let plan = Plan::scan("r1")
            .join(Plan::scan("r2"))
            .select(Predicate::lt(col("a"), lit(3)));
        assert_eq!(
            opt(plan),
            "natural-join\n  select[a < 3]\n    scan[r1]\n  scan[r2]\n"
        );
    }

    #[test]
    fn conjuncts_split_across_join_sides() {
        let pred = Predicate::And(vec![
            Predicate::lt(col("a"), lit(3)),
            Predicate::eq(col("c"), lit(1)),
            Predicate::lt(col("a"), col("c")), // spans both sides: stays
        ]);
        let plan = Plan::scan("r1").join(Plan::scan("r2")).select(pred);
        assert_eq!(
            opt(plan),
            "select[a < c]\n  natural-join\n    select[a < 3]\n      scan[r1]\n    select[c = 1]\n      scan[r2]\n"
        );
    }

    #[test]
    fn selection_crosses_projection_rename_and_union() {
        let plan = Plan::scan("r1")
            .rename([("a", "x")])
            .union(Plan::scan("r1").rename([("a", "x")]))
            .project(["x"])
            .select(Predicate::eq(col("x"), lit(7)));
        // The selection sinks below rename (mapped back to `a`) and union;
        // the projection narrows each union side, leaving the top-level
        // projection an identity over a distinct input — elided.
        assert_eq!(
            opt(plan),
            "union\n  project[x]\n    rename[a -> x]\n      select[a = 7]\n        scan[r1]\n  project[x]\n    rename[a -> x]\n      select[a = 7]\n        scan[r1]\n"
        );
    }

    #[test]
    fn adjacent_selections_merge() {
        let plan = Plan::scan("r1")
            .select(Predicate::lt(col("a"), lit(3)))
            .select(Predicate::lt(col("b"), lit(5)));
        assert_eq!(opt(plan), "select[a < 3 AND b < 5]\n  scan[r1]\n");
    }

    #[test]
    fn projections_prune_join_gathers() {
        // Only `a` is consumed above the join, so each side narrows to its
        // required columns plus the join key `b`.
        let plan = Plan::scan("r1").join(Plan::scan("r2")).project(["a"]);
        assert_eq!(
            opt(plan),
            "project[a]\n  natural-join\n    scan[r1]\n    project[b]\n      scan[r2]\n"
        );
    }

    #[test]
    fn nested_projections_collapse_and_identity_projection_elides() {
        let plan = Plan::scan("r1").project(["a", "b"]).project(["a"]);
        assert_eq!(opt(plan), "project[a]\n  scan[r1]\n");
        // π over a distinct input keeping all columns in order is elided.
        let plan = Plan::scan("r1").project(["b", "a"]).project(["b", "a"]);
        assert_eq!(opt(plan), "project[b, a]\n  scan[r1]\n");
    }

    #[test]
    fn optimizer_preserves_the_output_schema() {
        let provider = schemas();
        let plan = Plan::scan("r1")
            .join(Plan::scan("r2"))
            .join(Plan::scan("r3"))
            .select(Predicate::lt(col("a"), lit(3)))
            .project(["a", "d"]);
        let optimized = optimize(&plan, &provider).unwrap();
        assert_eq!(
            plan.schema_with(&provider).unwrap(),
            optimized.schema_with(&provider).unwrap()
        );
    }

    #[test]
    fn optimization_is_idempotent() {
        let provider = schemas();
        let plan = Plan::scan("r1")
            .join(Plan::scan("r2"))
            .select(Predicate::lt(col("a"), lit(3)))
            .project(["a", "c"]);
        let once = optimize(&plan, &provider).unwrap();
        let twice = optimize(&once, &provider).unwrap();
        assert_eq!(once.to_string(), twice.to_string());
    }
}
