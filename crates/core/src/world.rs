//! The uncertain database: a component set plus named u-relations, with
//! exhaustive world enumeration (the differential-testing oracle).

use std::collections::BTreeMap;

use crate::component::{ComponentSet, WorldPick};
use crate::error::MayError;
use crate::normalize;
use crate::rel::Relation;
use crate::urel::URelation;

/// One fully instantiated database: a plain relation per name.
pub type Db = BTreeMap<String, Relation>;

/// A world-set decomposition of an uncertain database: independent
/// [`ComponentSet`] choices plus named [`URelation`]s whose descriptors
/// reference those components.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct WorldSet {
    /// The independent components (the product decomposition of the worlds).
    pub components: ComponentSet,
    /// The uncertain relations, by name.
    pub relations: BTreeMap<String, URelation>,
}

impl WorldSet {
    /// An empty world set: no components (one world), no relations.
    pub fn new() -> Self {
        WorldSet::default()
    }

    /// Insert or replace a relation, validating every row's descriptor
    /// against the current component set (unknown components or
    /// out-of-range alternatives are rejected here rather than panicking
    /// during later enumeration or confidence computation).
    pub fn insert(&mut self, name: impl Into<String>, rel: URelation) -> Result<(), MayError> {
        for (_, d) in rel.rows() {
            self.components.validate_descriptor(d)?;
        }
        self.relations.insert(name.into(), rel);
        Ok(())
    }

    /// The relation with the given name.
    pub fn relation(&self, name: &str) -> Result<&URelation, MayError> {
        self.relations
            .get(name)
            .ok_or_else(|| MayError::UnknownRelation(name.to_string()))
    }

    /// Enumerate every possible world together with its probability.
    ///
    /// This fully expands the decomposition and is exponential in the number
    /// of components; it exists as the *naive oracle* that the compact
    /// WSD-level evaluators are property-tested against, and for tiny
    /// databases. `limit` bounds the number of worlds.
    pub fn enumerate(&self, limit: u128) -> Result<Vec<(WorldPick, Db, f64)>, MayError> {
        let picks = self.components.enumerate(limit)?;
        let mut out = Vec::with_capacity(picks.len());
        for pick in picks {
            let db: Db = self
                .relations
                .iter()
                .map(|(n, r)| (n.clone(), r.instantiate(&pick)))
                .collect();
            let p = self.components.prob_of_pick(&pick);
            out.push((pick, db, p));
        }
        Ok(out)
    }

    /// Aggregate the enumeration into a distribution over database
    /// *instances*: distinct worlds with identical relation contents are
    /// merged and their probabilities summed. This is the semantics that
    /// [`WorldSet::normalize`] preserves exactly.
    pub fn instance_distribution(&self, limit: u128) -> Result<Vec<(Db, f64)>, MayError> {
        let mut agg: BTreeMap<Db, f64> = BTreeMap::new();
        for (_, db, p) in self.enumerate(limit)? {
            *agg.entry(db).or_insert(0.0) += p;
        }
        Ok(agg.into_iter().collect())
    }

    /// Normalize the decomposition in place: simplify and absorb
    /// descriptors, merge rows that together cover all alternatives of a
    /// component, and garbage-collect components no relation references.
    /// See [`crate::normalize`] for the exact rewrites and the invariant.
    pub fn normalize(&mut self) {
        normalize::normalize(self);
    }

    /// [`normalize`](Self::normalize) with an explicit parallelism
    /// configuration; the result is identical for every thread count.
    pub fn normalize_with(&mut self, par: &crate::parallel::ParCfg) {
        normalize::normalize_with(self, par);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::Component;
    use crate::descriptor::{ComponentId, WsDescriptor};
    use crate::error::MayError;
    use crate::rel::Tuple;
    use crate::schema::Schema;
    use crate::value::ValueType;

    fn one_col_rel(desc: WsDescriptor) -> URelation {
        let schema = Schema::of(&[("a", ValueType::Int)]).unwrap();
        let mut u = URelation::new(schema);
        u.push(Tuple::new(vec![1.into()]), desc).unwrap();
        u
    }

    #[test]
    fn insert_rejects_unknown_component() {
        let mut ws = WorldSet::new();
        let err = ws.insert("r", one_col_rel(WsDescriptor::single(ComponentId(0), 0)));
        assert!(
            matches!(err, Err(MayError::InvalidDescriptor(_))),
            "{err:?}"
        );
    }

    #[test]
    fn insert_rejects_out_of_range_alternative() {
        let mut ws = WorldSet::new();
        let c = ws.components.add(Component::uniform(2).unwrap());
        let err = ws.insert("r", one_col_rel(WsDescriptor::single(c, 2)));
        assert!(
            matches!(err, Err(MayError::InvalidDescriptor(_))),
            "{err:?}"
        );
        ws.insert("ok", one_col_rel(WsDescriptor::single(c, 1)))
            .unwrap();
    }
}
