//! A blocked Bloom filter for sideways information passing.
//!
//! The executor's semi-join reduction builds one of these over the *build*
//! side's join-key cells and probes it from the probe side's sweep: a `false`
//! answer proves the key is absent from the build side, so the row cannot
//! contribute to the join and is pruned before it ever reaches the probe.
//! False positives only keep rows the join would have dropped anyway — the
//! filter is a pure under-approximating pre-filter and never changes results.
//!
//! The layout is *blocked*: the bit array is split into 512-bit (cache-line)
//! blocks, one block is selected per key, and all `k` probe bits land inside
//! that block — so a membership test touches exactly one cache line no matter
//! how large the filter grows. The price is a slightly worse false-positive
//! rate than an unblocked filter at equal size (keys collide on whole blocks),
//! which the sizing below absorbs by spending ~16 bits per key.
//!
//! All `k` bit positions derive from one 64-bit key hash via the
//! Kirsch–Mitzenmacher construction (`bit_i = h1 + i·h2`): the caller hashes
//! each key *once*, and the filter never re-hashes.

/// A fixed-size blocked Bloom filter over 64-bit key hashes.
///
/// Block selection uses the hash's *high* bits and the in-block probe
/// sequence its low/middle bits, so the filter composes with the executor's
/// other hash consumers (chained-index buckets use the low bits, partition
/// scatter the high bits) without correlated aliasing becoming systematic.
#[derive(Clone, Debug)]
pub struct BlockedBloom {
    /// 512-bit blocks; one probe touches exactly one block.
    blocks: Vec<[u64; 8]>,
    /// `blocks.len() - 1`; the block count is always a power of two.
    block_mask: u64,
    /// Probe bits set/tested per key.
    k: u32,
}

impl BlockedBloom {
    /// Bits per 512-bit block.
    const BLOCK_BITS: u64 = 512;

    /// A filter sized for `n` expected keys at roughly 16 bits per key
    /// (k=3..4 lands the false-positive rate around 1–2%), never smaller
    /// than one block. `k` is clamped to `1..=8`.
    pub fn with_capacity(n: usize, k: u32) -> BlockedBloom {
        let bits = (n as u64).saturating_mul(16).max(1);
        let blocks = bits.div_ceil(Self::BLOCK_BITS).next_power_of_two() as usize;
        BlockedBloom {
            blocks: vec![[0u64; 8]; blocks],
            block_mask: (blocks - 1) as u64,
            k: k.clamp(1, 8),
        }
    }

    /// Total bits in the filter.
    pub fn bits(&self) -> u64 {
        self.blocks.len() as u64 * Self::BLOCK_BITS
    }

    /// Probe bits per key.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// The block index and the two Kirsch–Mitzenmacher derivatives of a
    /// key hash. `h2` is forced odd so the probe sequence cycles through
    /// all 512 in-block bit positions.
    #[inline]
    fn split(&self, hash: u64) -> (usize, u32, u32) {
        let block = ((hash >> 48) & self.block_mask) as usize;
        let h1 = hash as u32;
        let h2 = ((hash >> 24) as u32) | 1;
        (block, h1, h2)
    }

    /// Insert a key hash.
    #[inline]
    pub fn insert(&mut self, hash: u64) {
        let (block, h1, h2) = self.split(hash);
        let b = &mut self.blocks[block];
        for i in 0..self.k {
            let bit = h1.wrapping_add(i.wrapping_mul(h2)) & 511;
            b[(bit >> 6) as usize] |= 1u64 << (bit & 63);
        }
    }

    /// Whether the key hash may have been inserted. `false` is definitive;
    /// `true` may be a false positive.
    #[inline]
    pub fn may_contain(&self, hash: u64) -> bool {
        let (block, h1, h2) = self.split(hash);
        let b = &self.blocks[block];
        for i in 0..self.k {
            let bit = h1.wrapping_add(i.wrapping_mul(h2)) & 511;
            if b[(bit >> 6) as usize] & (1u64 << (bit & 63)) == 0 {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn no_false_negatives() {
        let mut rng = Rng::new(7);
        let keys: Vec<u64> = (0..10_000).map(|_| rng.next_u64()).collect();
        let mut bloom = BlockedBloom::with_capacity(keys.len(), 3);
        for &k in &keys {
            bloom.insert(k);
        }
        assert!(keys.iter().all(|&k| bloom.may_contain(k)));
    }

    #[test]
    fn empty_filter_rejects_everything() {
        let bloom = BlockedBloom::with_capacity(0, 3);
        let mut rng = Rng::new(11);
        assert!((0..1000).all(|_| !bloom.may_contain(rng.next_u64())));
    }

    /// The blocked layout costs some false-positive rate versus the
    /// unblocked ideal `(1 - e^{-kn/m})^k`; pin it at ≤ 2× theoretical for
    /// the k range the executor uses.
    #[test]
    fn false_positive_rate_within_2x_theoretical() {
        for k in 2..=4u32 {
            let mut rng = Rng::new(1000 + k as u64);
            let n = 4096usize;
            let keys: Vec<u64> = (0..n).map(|_| rng.next_u64()).collect();
            let mut bloom = BlockedBloom::with_capacity(n, k);
            for &key in &keys {
                bloom.insert(key);
            }
            let m = bloom.bits() as f64;
            let theoretical = (1.0 - (-(k as f64) * n as f64 / m).exp()).powi(k as i32);
            let probes = 100_000;
            // Fresh draws from the same 64-bit space virtually never collide
            // with the inserted set, so every hit is a false positive.
            let fps = (0..probes)
                .filter(|_| bloom.may_contain(rng.next_u64()))
                .count();
            let observed = fps as f64 / probes as f64;
            assert!(
                observed <= theoretical * 2.0,
                "k={k}: observed fp {observed:.5} > 2x theoretical {theoretical:.5}"
            );
        }
    }
}
