//! Error type shared by all MayBMS layers.

use std::fmt;

/// Errors raised by the representation, algebra, and query-language layers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MayError {
    /// Two schemas that must agree (e.g. for `union`) do not.
    SchemaMismatch(String),
    /// A column name was not found in a schema, or is duplicated.
    UnknownColumn(String),
    /// A relation name was not found in the world set.
    UnknownRelation(String),
    /// An operator required a certain (descriptor-free) input.
    NotCertain(String),
    /// A `repair-key` weight was missing, non-numeric, or non-positive.
    InvalidWeight(String),
    /// A component was constructed with no alternatives or invalid weights.
    InvalidComponent(String),
    /// A world-set descriptor references an unknown component or an
    /// out-of-range alternative.
    InvalidDescriptor(String),
    /// A tuple did not match its schema (arity or types).
    TupleMismatch(String),
    /// World enumeration would exceed the caller-provided limit.
    TooManyWorlds {
        /// Number of worlds the component set induces.
        count: u128,
        /// The enumeration limit that was exceeded.
        limit: u128,
    },
    /// The operation is not supported by this evaluator.
    Unsupported(String),
}

impl fmt::Display for MayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MayError::SchemaMismatch(m) => write!(f, "schema mismatch: {m}"),
            MayError::UnknownColumn(c) => write!(f, "unknown or duplicate column: {c}"),
            MayError::UnknownRelation(r) => write!(f, "unknown relation: {r}"),
            MayError::NotCertain(m) => write!(f, "input must be certain: {m}"),
            MayError::InvalidWeight(m) => write!(f, "invalid repair weight: {m}"),
            MayError::InvalidComponent(m) => write!(f, "invalid component: {m}"),
            MayError::InvalidDescriptor(m) => write!(f, "invalid descriptor: {m}"),
            MayError::TupleMismatch(m) => write!(f, "tuple does not match schema: {m}"),
            MayError::TooManyWorlds { count, limit } => {
                write!(
                    f,
                    "world set has {count} worlds, enumeration limit is {limit}"
                )
            }
            MayError::Unsupported(m) => write!(f, "unsupported operation: {m}"),
        }
    }
}

impl std::error::Error for MayError {}
