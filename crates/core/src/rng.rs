//! Deterministic PRNGs: a sequential SplitMix64 for property tests and
//! benches, and a splittable counter-based generator for the sampling
//! confidence solver.
//!
//! The build environment has no access to a crates registry, so `proptest`
//! and `rand` are unavailable; these seeded generators give the test suite
//! reproducible randomized inputs with zero dependencies. Failures print the
//! case seed so a failing input can be replayed exactly.

/// The SplitMix64 increment (the golden-ratio constant).
const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// SplitMix64's output permutation: a bijective avalanche over one 64-bit
/// word. Shared by the sequential [`Rng`] and the counter-based
/// [`CounterRng`].
#[inline]
fn avalanche(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One SplitMix64 step as a pure function: hash a 64-bit word into a
/// well-distributed 64-bit value. Used to fold identifiers into stream keys
/// for [`CounterRng`] (`h = mix64(h ^ word)` is an adequate, fully
/// deterministic content hash).
#[inline]
pub fn mix64(z: u64) -> u64 {
    avalanche(z.wrapping_add(GOLDEN))
}

/// SplitMix64: a small, fast, well-distributed 64-bit PRNG.
#[derive(Clone, Debug)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Create a generator from a seed. Equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        Rng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN);
        avalanche(self.state)
    }

    /// Uniform value in `0..n` (n must be positive). Modulo bias is
    /// negligible for the small ranges used in tests.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0)");
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform value in `lo..=hi`.
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + self.below(hi - lo + 1)
    }

    /// Uniform float in `(0, 1]` (never zero, so it can be used as a weight).
    pub fn unit_f64(&mut self) -> f64 {
        ((self.next_u64() >> 11) + 1) as f64 / (1u64 << 53) as f64
    }

    /// Bernoulli draw with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit_f64() <= p
    }

    /// Pick a uniformly random element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len())]
    }
}

/// A splittable, counter-based deterministic generator: every draw is a pure
/// function of `(seed, stream, draw index)`.
///
/// Unlike the sequential [`Rng`], no state is threaded between independent
/// pieces of work: each logical stream (in the confidence solver, one stream
/// per connected descriptor group, keyed on the group's *content*) owns its
/// own counter, so the values it produces do not depend on how many other
/// streams exist, in what order they run, or which thread runs them. That is
/// what makes morsel-parallel sampling byte-identical for every thread
/// count — the same property the rest of the executor guarantees (see
/// [`crate::parallel`]).
///
/// Construction hashes `(seed, stream)` into a key; draw `i` is the
/// SplitMix64 output for state `key + (i+1)·golden`, i.e. each stream is an
/// ordinary SplitMix64 sequence starting at a decorrelated seed.
#[derive(Clone, Debug)]
pub struct CounterRng {
    key: u64,
    index: u64,
}

impl CounterRng {
    /// Open the stream identified by `(seed, stream)` at draw index 0.
    pub fn new(seed: u64, stream: u64) -> Self {
        CounterRng {
            key: mix64(seed ^ mix64(stream)),
            index: 0,
        }
    }

    /// Draw `index` of this stream, as a pure function (ignores and does not
    /// advance the internal counter).
    pub fn nth(&self, index: u64) -> u64 {
        avalanche(
            self.key
                .wrapping_add(index.wrapping_add(1).wrapping_mul(GOLDEN)),
        )
    }

    /// Next raw 64-bit value (draw at the current index, then advance).
    pub fn next_u64(&mut self) -> u64 {
        let v = self.nth(self.index);
        self.index += 1;
        v
    }

    /// Uniform float in `(0, 1]` (never zero; same mapping as
    /// [`Rng::unit_f64`]).
    pub fn unit_f64(&mut self) -> f64 {
        ((self.next_u64() >> 11) + 1) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_in_range() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        for _ in 0..1000 {
            let v = a.range(3, 7);
            assert!((3..=7).contains(&v));
            let f = a.unit_f64();
            assert!(f > 0.0 && f <= 1.0);
        }
    }

    #[test]
    fn rng_stream_is_pinned() {
        // The sequential stream is load-bearing: generated test inputs and
        // bench workloads (and with them the committed bench baseline)
        // depend on it byte-for-byte.
        let mut r = Rng::new(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(r.next_u64(), 0x6E78_9E6A_A1B9_65F4);
    }

    #[test]
    fn counter_rng_is_a_pure_function_of_indices() {
        let r = CounterRng::new(7, 99);
        let mut seq = CounterRng::new(7, 99);
        // Sequential draws equal positional draws, in any access order.
        let forward: Vec<u64> = (0..10).map(|_| seq.next_u64()).collect();
        let positional: Vec<u64> = (0..10).map(|i| r.nth(i)).collect();
        assert_eq!(forward, positional);
        assert_eq!(r.nth(3), CounterRng::new(7, 99).nth(3));
        // Streams and seeds decorrelate.
        assert_ne!(
            CounterRng::new(7, 99).nth(0),
            CounterRng::new(7, 100).nth(0)
        );
        assert_ne!(CounterRng::new(7, 99).nth(0), CounterRng::new(8, 99).nth(0));
    }

    #[test]
    fn counter_rng_unit_in_range() {
        let mut r = CounterRng::new(1, 2);
        for _ in 0..1000 {
            let f = r.unit_f64();
            assert!(f > 0.0 && f <= 1.0);
        }
    }
}
