//! A tiny deterministic PRNG (SplitMix64) for property tests and benches.
//!
//! The build environment has no access to a crates registry, so `proptest`
//! and `rand` are unavailable; this seeded generator gives the test suite
//! reproducible randomized inputs with zero dependencies. Failures print the
//! case seed so a failing input can be replayed exactly.

/// SplitMix64: a small, fast, well-distributed 64-bit PRNG.
#[derive(Clone, Debug)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Create a generator from a seed. Equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        Rng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (n must be positive). Modulo bias is
    /// negligible for the small ranges used in tests.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0)");
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform value in `lo..=hi`.
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + self.below(hi - lo + 1)
    }

    /// Uniform float in `(0, 1]` (never zero, so it can be used as a weight).
    pub fn unit_f64(&mut self) -> f64 {
        ((self.next_u64() >> 11) + 1) as f64 / (1u64 << 53) as f64
    }

    /// Bernoulli draw with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit_f64() <= p
    }

    /// Pick a uniformly random element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_in_range() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        for _ in 0..1000 {
            let v = a.range(3, 7);
            assert!((3..=7).contains(&v));
            let f = a.unit_f64();
            assert!(f > 0.0 && f <= 1.0);
        }
    }
}
