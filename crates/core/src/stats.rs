//! Per-relation statistics for cost-based planning.
//!
//! One pass over a u-relation produces a [`RelationStats`]: the row count,
//! per-column distinct-count estimates (a KMV sketch — the k minimum hash
//! values — plus exact min/max), and a descriptor-density summary (the
//! fraction of rows whose descriptor is non-trivial, and the mean number of
//! alternatives of the components the relation references). The `sql`
//! catalog caches one per base relation at materialization time and the
//! cost-based optimizer phase in `maybms-algebra` consumes them through its
//! `StatsProvider` trait; `maybms-core` itself attaches no planning
//! semantics to the numbers.
//!
//! ## KMV accuracy
//!
//! With `k` = [`KMV_K`] minima kept, the classical KMV estimator
//! `D ≈ (k − 1) / R_k` (where `R_k` is the k-th smallest hash scaled to
//! `[0, 1]`) is unbiased with relative standard error `≈ 1/√(k − 2)` —
//! about 6% at `k = 256`. Below `k` distinct hashes the sketch *is* the
//! exact distinct set, so small domains are counted exactly.

use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};

use crate::component::ComponentSet;
use crate::fxhash::{FxHashSet, FxHasher};
use crate::urel::URelation;
use crate::value::Value;
use crate::world::WorldSet;

/// Minima kept per KMV sketch (relative standard error ≈ 1/√(k − 2) ≈ 6%).
pub const KMV_K: usize = 256;

/// A k-minimum-values distinct-count sketch over 64-bit hashes.
///
/// Inserts are O(log k) against a bounded max-heap; duplicates of a kept
/// hash are ignored via a membership set, so repeated values never skew the
/// estimate. `FxHasher` output is finalized with a SplitMix64-style mixer —
/// KMV needs uniformly distributed hashes and Fx alone is too regular on
/// sequential integers.
#[derive(Clone, Debug, Default)]
pub struct KmvSketch {
    /// Max-heap of the `KMV_K` smallest hashes seen (root = current k-th min).
    heap: std::collections::BinaryHeap<u64>,
    /// Membership of `heap`, so duplicate hashes are inserted once.
    members: FxHashSet<u64>,
}

impl KmvSketch {
    /// An empty sketch.
    pub fn new() -> Self {
        KmvSketch::default()
    }

    /// Observe one value.
    pub fn observe(&mut self, v: &Value) {
        let mut h = FxHasher::default();
        v.hash(&mut h);
        self.observe_hash(mix64(h.finish()));
    }

    fn observe_hash(&mut self, h: u64) {
        if self.members.contains(&h) {
            return;
        }
        if self.heap.len() < KMV_K {
            self.heap.push(h);
            self.members.insert(h);
        } else if h < *self.heap.peek().expect("heap holds KMV_K entries") {
            let evicted = self.heap.pop().expect("heap holds KMV_K entries");
            self.members.remove(&evicted);
            self.heap.push(h);
            self.members.insert(h);
        }
    }

    /// The distinct-count estimate: exact below `KMV_K` distinct hashes,
    /// `(k − 1)/R_k` at capacity.
    pub fn estimate(&self) -> f64 {
        if self.heap.len() < KMV_K {
            return self.heap.len() as f64;
        }
        let kth = *self.heap.peek().expect("heap holds KMV_K entries");
        let r = (kth as f64 + 1.0) / 2f64.powi(64);
        (KMV_K as f64 - 1.0) / r
    }
}

/// SplitMix64 finalizer: full-avalanche mixing of a 64-bit word.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One column's statistics: estimated distinct count and exact min/max.
#[derive(Clone, Debug, PartialEq)]
pub struct ColumnStats {
    /// Estimated number of distinct values (exact for small domains).
    pub distinct: f64,
    /// Smallest and largest value seen (`None` for an empty relation).
    pub min_max: Option<(Value, Value)>,
}

/// One relation's statistics, collected in a single pass by [`collect`].
#[derive(Clone, Debug, PartialEq)]
pub struct RelationStats {
    /// Number of stored rows (duplicates included).
    pub rows: u64,
    /// Per-column stats, keyed by column name.
    pub columns: BTreeMap<String, ColumnStats>,
    /// Fraction of rows carrying a non-trivial (non-tautology) descriptor.
    pub nontrivial_frac: f64,
    /// Mean alternative count over the components the relation references
    /// (0.0 when every descriptor is trivial).
    pub mean_alternatives: f64,
}

impl RelationStats {
    /// Stats of an empty certain relation (no rows, no columns observed).
    pub fn empty() -> Self {
        RelationStats {
            rows: 0,
            columns: BTreeMap::new(),
            nontrivial_frac: 0.0,
            mean_alternatives: 0.0,
        }
    }
}

/// Collect [`RelationStats`] for one u-relation in a single pass over its
/// rows. `comps` resolves the alternative counts of referenced components.
pub fn collect(rel: &URelation, comps: &ComponentSet) -> RelationStats {
    let names = rel.schema().names();
    let mut sketches: Vec<KmvSketch> = names.iter().map(|_| KmvSketch::new()).collect();
    let mut min_max: Vec<Option<(Value, Value)>> = vec![None; names.len()];
    let mut nontrivial = 0u64;
    let mut referenced: FxHashSet<u32> = FxHashSet::default();
    for (tuple, desc) in rel.rows() {
        for (i, v) in tuple.values().iter().enumerate() {
            sketches[i].observe(v);
            match &mut min_max[i] {
                None => min_max[i] = Some((v.clone(), v.clone())),
                Some((lo, hi)) => {
                    if v < lo {
                        *lo = v.clone();
                    }
                    if v > hi {
                        *hi = v.clone();
                    }
                }
            }
        }
        if !desc.is_tautology() {
            nontrivial += 1;
            for &(c, _) in desc.terms() {
                referenced.insert(c.0);
            }
        }
    }
    let rows = rel.len() as u64;
    let mean_alternatives = if referenced.is_empty() {
        0.0
    } else {
        referenced
            .iter()
            .map(|&c| comps.get(crate::descriptor::ComponentId(c)).alternatives() as f64)
            .sum::<f64>()
            / referenced.len() as f64
    };
    RelationStats {
        rows,
        columns: names
            .into_iter()
            .zip(sketches.iter().zip(min_max))
            .map(|(name, (sk, mm))| {
                (
                    name.to_string(),
                    ColumnStats {
                        distinct: sk.estimate(),
                        min_max: mm,
                    },
                )
            })
            .collect(),
        nontrivial_frac: if rows == 0 {
            0.0
        } else {
            nontrivial as f64 / rows as f64
        },
        mean_alternatives,
    }
}

/// [`collect`] for every relation of a world set.
pub fn world_set_stats(ws: &WorldSet) -> BTreeMap<String, RelationStats> {
    ws.relations
        .iter()
        .map(|(name, rel)| (name.clone(), collect(rel, &ws.components)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::Component;
    use crate::descriptor::WsDescriptor;
    use crate::rel::Tuple;
    use crate::schema::Schema;
    use crate::value::ValueType;

    #[test]
    fn small_domains_are_exact() {
        let mut sk = KmvSketch::new();
        for i in 0..100 {
            sk.observe(&Value::Int(i % 17));
        }
        assert_eq!(sk.estimate(), 17.0);
    }

    #[test]
    fn large_domains_estimate_within_kmv_error() {
        let mut sk = KmvSketch::new();
        for i in 0..50_000 {
            sk.observe(&Value::Int(i));
        }
        let est = sk.estimate();
        let rel_err = (est - 50_000.0).abs() / 50_000.0;
        // 1/√(k−2) ≈ 6.3% standard error; 4σ gives a deterministic bound
        // with huge margin (the hash stream is fixed, so this cannot flake).
        assert!(rel_err < 0.25, "estimate {est} off by {rel_err}");
    }

    #[test]
    fn collect_summarizes_columns_and_descriptors() {
        let mut ws = WorldSet::new();
        let c = ws.components.add(Component::uniform(4).expect("4 > 0"));
        let schema = Schema::of(&[("a", ValueType::Int), ("b", ValueType::Str)]).unwrap();
        let mut rel = URelation::new(schema);
        for i in 0..10 {
            let desc = if i % 2 == 0 {
                WsDescriptor::tautology()
            } else {
                WsDescriptor::single(c, (i % 4) as u16)
            };
            rel.push(
                Tuple::new(vec![Value::Int(i % 3), Value::str(format!("s{}", i % 5))]),
                desc,
            )
            .unwrap();
        }
        let stats = collect(&rel, &ws.components);
        assert_eq!(stats.rows, 10);
        assert_eq!(stats.columns["a"].distinct, 3.0);
        assert_eq!(stats.columns["b"].distinct, 5.0);
        assert_eq!(
            stats.columns["a"].min_max,
            Some((Value::Int(0), Value::Int(2)))
        );
        assert!((stats.nontrivial_frac - 0.5).abs() < 1e-12);
        assert_eq!(stats.mean_alternatives, 4.0);
    }

    #[test]
    fn empty_relation_has_empty_stats() {
        let schema = Schema::of(&[("a", ValueType::Int)]).unwrap();
        let rel = URelation::new(schema);
        let stats = collect(&rel, &ComponentSet::new());
        assert_eq!(stats.rows, 0);
        assert_eq!(stats.columns["a"].distinct, 0.0);
        assert_eq!(stats.columns["a"].min_max, None);
    }
}
