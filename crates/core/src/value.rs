//! Typed scalar values stored in tuples.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// A totally ordered, hashable wrapper around `f64`.
///
/// Relational set semantics require values to be `Eq + Ord + Hash`, which raw
/// `f64` is not. Equality is bit-equality and ordering is IEEE-754
/// `total_cmp`, which are mutually consistent.
#[derive(Clone, Copy, Debug)]
pub struct F64(pub f64);

impl F64 {
    /// The wrapped floating point value.
    pub fn get(self) -> f64 {
        self.0
    }
}

impl PartialEq for F64 {
    fn eq(&self, other: &Self) -> bool {
        self.0.to_bits() == other.0.to_bits()
    }
}

impl Eq for F64 {}

impl PartialOrd for F64 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for F64 {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl Hash for F64 {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.0.to_bits().hash(state);
    }
}

impl fmt::Display for F64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<f64> for F64 {
    fn from(v: f64) -> Self {
        F64(v)
    }
}

/// The type of a [`Value`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ValueType {
    /// The type of [`Value::Null`].
    Null,
    /// Booleans.
    Bool,
    /// 64-bit signed integers.
    Int,
    /// 64-bit floats (used e.g. for the `conf` column).
    Float,
    /// UTF-8 strings.
    Str,
}

impl fmt::Display for ValueType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ValueType::Null => "null",
            ValueType::Bool => "bool",
            ValueType::Int => "int",
            ValueType::Float => "float",
            ValueType::Str => "str",
        };
        f.write_str(s)
    }
}

/// A scalar value. `Value` is `Eq + Ord + Hash` so relations can use set
/// semantics; the ordering across variants follows declaration order.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// SQL-style null (compares equal to itself here; three-valued logic is
    /// out of scope for this layer).
    Null,
    /// A boolean.
    Bool(bool),
    /// A 64-bit signed integer.
    Int(i64),
    /// A 64-bit float.
    Float(F64),
    /// A UTF-8 string.
    Str(String),
}

impl Value {
    /// Convenience constructor for string values.
    pub fn str(s: impl Into<String>) -> Self {
        Value::Str(s.into())
    }

    /// Convenience constructor for float values.
    pub fn float(v: f64) -> Self {
        Value::Float(F64(v))
    }

    /// The [`ValueType`] of this value.
    pub fn type_of(&self) -> ValueType {
        match self {
            Value::Null => ValueType::Null,
            Value::Bool(_) => ValueType::Bool,
            Value::Int(_) => ValueType::Int,
            Value::Float(_) => ValueType::Float,
            Value::Str(_) => ValueType::Str,
        }
    }

    /// Numeric view of the value, used by `repair-key ... weight by`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(f.0),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_values_are_ordered_and_hashable() {
        let a = Value::float(1.0);
        let b = Value::float(2.0);
        assert!(a < b);
        assert_eq!(a, Value::float(1.0));
    }

    #[test]
    fn as_f64_widens_ints() {
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::str("x").as_f64(), None);
    }
}
