//! Observability: per-query trace spans and a process-wide metrics registry.
//!
//! Two complementary instruments live here, both dependency-free:
//!
//! * [`Tracer`] — a per-run recorder producing a [`QueryTrace`]: a tree of
//!   spans, one per plan node (plus leaf *phase* spans for interesting
//!   sub-steps such as canonical sorts or the confidence solve). Each span
//!   records wall time, output rows, and a delta of the run's counters
//!   ([`ObsCounters`]) between span enter and exit, so pool traffic, morsel
//!   fan-out, and conf-solver work are *attributed to the node that incurred
//!   them* instead of being pooled run-wide. Traces render as an annotated
//!   plan tree (`EXPLAIN ANALYZE`) and export as Chrome trace-event JSON
//!   ([`QueryTrace::to_json`]) loadable in `chrome://tracing` or Perfetto.
//! * [`Metrics`] — a process-wide registry of monotonic counters and
//!   log-linear histograms on plain `AtomicU64`s, reachable from anywhere
//!   via [`metrics`]. Every executor run publishes its `ExecStats` into it,
//!   making the per-run struct a *view* over the durable registry — the
//!   substrate a future server's `/metrics` endpoint will render.
//!
//! The tracer is built to be cheap when disabled: every instrumentation
//! site first checks [`Tracer::is_enabled`] (one branch on a bool) and only
//! then materializes labels or counter snapshots. A disabled run performs a
//! handful of such branches per plan node — noise next to evaluating even a
//! single morsel.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

// ---------------------------------------------------------------------------
// Counter snapshots
// ---------------------------------------------------------------------------

/// A point-in-time snapshot of the run-scoped (and one global) counters the
/// tracer attributes to spans. Spans store the *delta* between the enter and
/// exit snapshots, so each node is charged only for what happened inside it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ObsCounters {
    /// Morsels (parallel tasks) dispatched.
    pub morsels: u64,
    /// Pool entries (descriptors + strings) minted in worker shards and
    /// merged back.
    pub shard_entries: u64,
    /// Nanoseconds spent in deterministic shard merge/remap steps.
    pub merge_nanos: u64,
    /// Descriptor-pool intern calls.
    pub intern_calls: u64,
    /// Descriptor-pool intern calls answered from the pool (hits).
    pub intern_hits: u64,
    /// Descriptor conjunction (`conjoin`) calls.
    pub conjoin_calls: u64,
    /// Confidence groups solved by the exact factorized path.
    pub exact_groups: u64,
    /// Confidence groups estimated by sampling.
    pub sampled_groups: u64,
    /// Monte Carlo / Karp–Luby draws performed.
    pub samples_drawn: u64,
    /// Worker busy nanoseconds (from the global registry — see
    /// [`Metrics::par_busy_nanos`]); drives the occupancy annotation.
    pub busy_nanos: u64,
}

impl ObsCounters {
    /// The per-field difference `self - earlier`, saturating at zero.
    /// (`busy_nanos` reads a *global* counter, so concurrent runs can make
    /// an individual window non-monotonic; saturation keeps deltas sane.)
    #[must_use]
    pub fn since(&self, earlier: &ObsCounters) -> ObsCounters {
        ObsCounters {
            morsels: self.morsels.saturating_sub(earlier.morsels),
            shard_entries: self.shard_entries.saturating_sub(earlier.shard_entries),
            merge_nanos: self.merge_nanos.saturating_sub(earlier.merge_nanos),
            intern_calls: self.intern_calls.saturating_sub(earlier.intern_calls),
            intern_hits: self.intern_hits.saturating_sub(earlier.intern_hits),
            conjoin_calls: self.conjoin_calls.saturating_sub(earlier.conjoin_calls),
            exact_groups: self.exact_groups.saturating_sub(earlier.exact_groups),
            sampled_groups: self.sampled_groups.saturating_sub(earlier.sampled_groups),
            samples_drawn: self.samples_drawn.saturating_sub(earlier.samples_drawn),
            busy_nanos: self.busy_nanos.saturating_sub(earlier.busy_nanos),
        }
    }

    fn add(&mut self, other: &ObsCounters) {
        self.morsels += other.morsels;
        self.shard_entries += other.shard_entries;
        self.merge_nanos += other.merge_nanos;
        self.intern_calls += other.intern_calls;
        self.intern_hits += other.intern_hits;
        self.conjoin_calls += other.conjoin_calls;
        self.exact_groups += other.exact_groups;
        self.sampled_groups += other.sampled_groups;
        self.samples_drawn += other.samples_drawn;
        self.busy_nanos += other.busy_nanos;
    }
}

// ---------------------------------------------------------------------------
// Tracer and spans
// ---------------------------------------------------------------------------

/// What a span describes: a plan node, or a sub-phase inside one.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpanKind {
    /// One operator of the executed plan tree.
    Node,
    /// A leaf phase inside an operator (e.g. `sort`, `solve`); its
    /// `rows_out` counts phase items, not relation rows.
    Phase,
}

/// One recorded span of a [`QueryTrace`].
#[derive(Clone, Debug)]
pub struct Span {
    /// Operator label (matches the `EXPLAIN` plan-tree line) or phase name.
    pub label: String,
    /// Index of the enclosing span within [`QueryTrace::spans`], if any.
    pub parent: Option<u32>,
    /// Nesting depth (roots are 0); equals the chain length to the root.
    pub depth: u32,
    /// Node vs phase — phases render indented with a `·` marker.
    pub kind: SpanKind,
    /// Start offset from the trace origin, in nanoseconds.
    pub start_nanos: u64,
    /// Inclusive wall-clock duration, in nanoseconds.
    pub dur_nanos: u64,
    /// Rows produced (for [`SpanKind::Node`]) or items processed (for
    /// [`SpanKind::Phase`]).
    pub rows_out: u64,
    /// Inclusive counter delta between span enter and exit.
    pub counters: ObsCounters,
}

/// Handle returned by [`Tracer::enter`]; pass it back to [`Tracer::exit`].
/// The sentinel [`SpanId::NONE`] makes the whole enter/exit pair a no-op,
/// which is how disabled tracing stays branch-cheap at call sites.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanId(u32);

impl SpanId {
    /// The no-op handle a disabled tracer hands out.
    pub const NONE: SpanId = SpanId(u32::MAX);
}

/// Records a tree of spans for one executor run. Construct with
/// [`Tracer::disabled`] (the default inside `EvalCtx`) or
/// [`Tracer::enabled`]; consume with [`Tracer::finish`].
#[derive(Debug)]
pub struct Tracer {
    enabled: bool,
    origin: Instant,
    spans: Vec<Span>,
    /// Open spans: (span index, counter snapshot at enter).
    stack: Vec<(u32, ObsCounters)>,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::disabled()
    }
}

impl Tracer {
    /// A tracer that records nothing; every method is a cheap no-op.
    pub fn disabled() -> Self {
        Tracer {
            enabled: false,
            origin: Instant::now(),
            spans: Vec::new(),
            stack: Vec::new(),
        }
    }

    /// A recording tracer whose clock starts now.
    pub fn enabled() -> Self {
        Tracer {
            enabled: true,
            origin: Instant::now(),
            spans: Vec::new(),
            stack: Vec::new(),
        }
    }

    /// Whether spans are being recorded. Instrumentation sites branch on
    /// this before building labels or counter snapshots.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Open a span as a child of the currently open span (or as a root).
    /// Returns [`SpanId::NONE`] when disabled.
    pub fn enter(&mut self, label: String, snap: ObsCounters) -> SpanId {
        if !self.enabled {
            return SpanId::NONE;
        }
        let id = self.spans.len() as u32;
        let parent = self.stack.last().map(|&(p, _)| p);
        self.spans.push(Span {
            label,
            parent,
            depth: self.stack.len() as u32,
            kind: SpanKind::Node,
            start_nanos: nanos_u64(self.origin.elapsed()),
            dur_nanos: 0,
            rows_out: 0,
            counters: ObsCounters::default(),
        });
        self.stack.push((id, snap));
        SpanId(id)
    }

    /// Close the span `id`, recording its duration, output rows, and the
    /// counter delta since [`Tracer::enter`]. No-op for [`SpanId::NONE`].
    pub fn exit(&mut self, id: SpanId, rows_out: u64, snap: ObsCounters) {
        if id == SpanId::NONE {
            return;
        }
        let (top, entered) = self.stack.pop().expect("exit without a matching enter");
        debug_assert_eq!(top, id.0, "spans must exit in LIFO order");
        let span = &mut self.spans[top as usize];
        span.dur_nanos = nanos_u64(self.origin.elapsed()).saturating_sub(span.start_nanos);
        span.rows_out = rows_out;
        span.counters = snap.since(&entered);
    }

    /// A timestamp for a later [`Tracer::event`] call — `None` when
    /// disabled, so the phase being timed pays nothing.
    #[inline]
    pub fn now(&self) -> Option<Instant> {
        self.enabled.then(Instant::now)
    }

    /// Record a completed leaf phase (e.g. a sort that just finished) under
    /// the currently open span. `started` comes from [`Tracer::now`]; when
    /// it is `None` the call is a no-op.
    pub fn event(&mut self, label: &str, started: Option<Instant>, items: u64) {
        let Some(started) = started else { return };
        if !self.enabled {
            return;
        }
        let start_nanos = nanos_u64(started.duration_since(self.origin));
        self.spans.push(Span {
            label: label.to_owned(),
            parent: self.stack.last().map(|&(p, _)| p),
            depth: self.stack.len() as u32,
            kind: SpanKind::Phase,
            start_nanos,
            dur_nanos: nanos_u64(started.elapsed()),
            rows_out: items,
            counters: ObsCounters::default(),
        });
    }

    /// Finish recording and produce the trace. `threads` is the worker
    /// budget of the run (drives the occupancy annotation).
    pub fn finish(self, threads: usize) -> QueryTrace {
        debug_assert!(self.stack.is_empty(), "all spans must be closed");
        QueryTrace {
            total_nanos: nanos_u64(self.origin.elapsed()),
            threads: threads.max(1),
            spans: self.spans,
        }
    }
}

fn nanos_u64(d: std::time::Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

// ---------------------------------------------------------------------------
// QueryTrace: rendering and export
// ---------------------------------------------------------------------------

/// The finished trace of one executor run: spans in execution pre-order
/// (a span's index is its stable node id; parents precede children).
#[derive(Clone, Debug)]
pub struct QueryTrace {
    /// All spans, in the order they were entered.
    pub spans: Vec<Span>,
    /// Wall time from tracer construction to [`Tracer::finish`].
    pub total_nanos: u64,
    /// Worker budget of the traced run (≥ 1).
    pub threads: usize,
}

impl QueryTrace {
    /// The number of [`SpanKind::Node`] spans (one per evaluated plan node).
    pub fn node_span_count(&self) -> usize {
        self.spans
            .iter()
            .filter(|s| s.kind == SpanKind::Node)
            .count()
    }

    /// The root *plan node* span, if one was recorded. Root-level phase
    /// events (like the up-front `scan-convert`) are skipped: they are
    /// siblings of the plan root, not its operators.
    pub fn root(&self) -> Option<&Span> {
        self.spans
            .iter()
            .find(|s| s.parent.is_none() && s.kind == SpanKind::Node)
    }

    /// Counters of span `i` *exclusive* of its direct children — what the
    /// node itself incurred. (Children's inclusive counters are subtracted,
    /// saturating: the global busy counter can race across windows.)
    pub fn exclusive(&self, i: usize) -> ObsCounters {
        let mut child_sum = ObsCounters::default();
        let me = i as u32;
        for s in &self.spans {
            if s.parent == Some(me) {
                child_sum.add(&s.counters);
            }
        }
        self.spans[i].counters.since(&child_sum)
    }

    /// Rows flowing *into* span `i`: the sum of its direct node-children's
    /// output rows. `None` for leaves (scans, cached subtrees).
    pub fn rows_in(&self, i: usize) -> Option<u64> {
        let me = i as u32;
        let mut any = false;
        let mut sum = 0;
        for s in &self.spans {
            if s.parent == Some(me) && s.kind == SpanKind::Node {
                any = true;
                sum += s.rows_out;
            }
        }
        any.then_some(sum)
    }

    /// Render the annotated plan tree — the body of `EXPLAIN ANALYZE`.
    ///
    /// Each node line carries `time=` (inclusive wall time), `rows=` /
    /// `in=`, and its nonzero *exclusive* counters; phase lines are marked
    /// `·` and report `items=`. Occupancy (`occ=`) appears only on nodes
    /// that dispatched morsels themselves.
    pub fn render_tree(&self) -> String {
        let mut out = String::new();
        for (i, s) in self.spans.iter().enumerate() {
            for _ in 0..s.depth {
                out.push_str("  ");
            }
            match s.kind {
                SpanKind::Phase => {
                    out.push_str("· ");
                    out.push_str(&s.label);
                    out.push_str(&format!(
                        "  (time={} items={})",
                        fmt_ms(s.dur_nanos),
                        s.rows_out
                    ));
                }
                SpanKind::Node => {
                    out.push_str(&s.label);
                    let excl = self.exclusive(i);
                    let mut ann = format!("time={} rows={}", fmt_ms(s.dur_nanos), s.rows_out);
                    if let Some(rows_in) = self.rows_in(i) {
                        ann.push_str(&format!(" in={rows_in}"));
                    }
                    push_nonzero(&mut ann, "morsels", excl.morsels);
                    push_nonzero(&mut ann, "shard_entries", excl.shard_entries);
                    push_nonzero(&mut ann, "interns", excl.intern_calls);
                    push_nonzero(&mut ann, "intern_hits", excl.intern_hits);
                    push_nonzero(&mut ann, "conjoins", excl.conjoin_calls);
                    push_nonzero(&mut ann, "exact_groups", excl.exact_groups);
                    push_nonzero(&mut ann, "sampled_groups", excl.sampled_groups);
                    push_nonzero(&mut ann, "draws", excl.samples_drawn);
                    if excl.morsels > 0 && s.dur_nanos > 0 {
                        let denom = s.dur_nanos.saturating_mul(self.threads as u64);
                        let occ = 100.0 * excl.busy_nanos as f64 / denom as f64;
                        ann.push_str(&format!(" occ={occ:.0}%"));
                    }
                    out.push_str(&format!("  ({ann})"));
                }
            }
            out.push('\n');
        }
        out
    }

    /// Serialize as Chrome trace-event JSON (the `traceEvents` array of
    /// complete `"X"` events, microsecond timestamps). The output loads
    /// directly in `chrome://tracing` and Perfetto; span containment is
    /// expressed through timestamp nesting on one thread lane.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let cat = match s.kind {
                SpanKind::Node => "plan",
                SpanKind::Phase => "phase",
            };
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\
                 \"ts\":{:.3},\"dur\":{:.3},\"args\":{{",
                json_escape(&s.label),
                cat,
                s.start_nanos as f64 / 1e3,
                s.dur_nanos as f64 / 1e3,
            ));
            out.push_str(&format!("\"node\":{i},\"rows_out\":{}", s.rows_out));
            if let Some(p) = s.parent {
                out.push_str(&format!(",\"parent\":{p}"));
            }
            let c = &s.counters;
            for (key, v) in [
                ("morsels", c.morsels),
                ("shard_entries", c.shard_entries),
                ("merge_nanos", c.merge_nanos),
                ("intern_calls", c.intern_calls),
                ("intern_hits", c.intern_hits),
                ("conjoin_calls", c.conjoin_calls),
                ("exact_groups", c.exact_groups),
                ("sampled_groups", c.sampled_groups),
                ("samples_drawn", c.samples_drawn),
                ("busy_nanos", c.busy_nanos),
            ] {
                if v != 0 {
                    out.push_str(&format!(",\"{key}\":{v}"));
                }
            }
            out.push_str("}}");
        }
        out.push_str(&format!(
            "],\"otherData\":{{\"total_nanos\":{},\"threads\":{}}}}}",
            self.total_nanos, self.threads
        ));
        out
    }
}

fn fmt_ms(nanos: u64) -> String {
    format!("{:.3}ms", nanos as f64 / 1e6)
}

fn push_nonzero(ann: &mut String, key: &str, v: u64) {
    if v != 0 {
        ann.push_str(&format!(" {key}={v}"));
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------------

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A zeroed counter (`const`, so registries can be `static`).
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Add `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        if n != 0 {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Linear buckets below `2^LINEAR_BITS`; above that, each power-of-two
/// octave splits into `1 << SUB_BITS` sub-buckets (HdrHistogram-style
/// log-linear layout). Relative bucket width is ≤ 25% everywhere.
const LINEAR_BITS: u32 = 2;
const SUB_BITS: u32 = 2;
const SUBS: usize = 1 << SUB_BITS; // 4 sub-buckets per octave
const BUCKETS: usize = SUBS + (64 - LINEAR_BITS as usize) * SUBS; // 252

/// A lock-free log-linear histogram of `u64` samples (no deps: fixed
/// `AtomicU64` buckets). Records exact `count`/`sum` and bucketed
/// quantiles with ≤ 25% relative error.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    fn new() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    fn bucket_index(v: u64) -> usize {
        if v < (1 << LINEAR_BITS) {
            return v as usize;
        }
        let octave = 63 - v.leading_zeros(); // >= LINEAR_BITS
        let sub = ((v >> (octave - SUB_BITS)) & (SUBS as u64 - 1)) as usize;
        SUBS + (octave - LINEAR_BITS) as usize * SUBS + sub
    }

    /// The smallest value mapping to bucket `idx` (used as the reported
    /// quantile value — a ≤ 25% underestimate by construction).
    fn bucket_floor(idx: usize) -> u64 {
        if idx < SUBS {
            return idx as u64;
        }
        let octave = LINEAR_BITS + ((idx - SUBS) / SUBS) as u32;
        let sub = ((idx - SUBS) % SUBS) as u64;
        (1u64 << octave) + sub * (1u64 << (octave - SUB_BITS))
    }

    /// Record one sample.
    pub fn observe(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.buckets[Self::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Approximate `q`-quantile (0 ≤ q ≤ 1): the floor of the first bucket
    /// whose cumulative count reaches `q · count`. Zero when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (idx, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                return Self::bucket_floor(idx);
            }
        }
        Self::bucket_floor(BUCKETS - 1)
    }
}

/// The process-wide metrics registry. Obtain the global instance with
/// [`metrics`]; all fields are lock-free and safe to touch from worker
/// threads. Counter names follow prometheus conventions so a future server
/// can expose [`Metrics::render`] at `/metrics` unchanged.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Executor runs completed.
    pub queries_total: Counter,
    /// Rows produced by completed runs.
    pub query_rows_total: Counter,
    /// Wall time per run, nanoseconds.
    pub query_wall_nanos: Histogram,
    /// Output rows per run.
    pub query_rows: Histogram,
    /// Parallel tasks (morsels) executed by the worker pool.
    pub par_tasks_total: Counter,
    /// Nanoseconds workers spent busy inside [`crate::parallel::run_tasks`]
    /// fan-outs (only counted when a stage actually went parallel).
    pub par_busy_nanos: Counter,
    /// Descriptor-pool intern calls across all runs.
    pub pool_intern_calls_total: Counter,
    /// Descriptor-pool intern hits across all runs.
    pub pool_intern_hits_total: Counter,
    /// Descriptor conjoin calls across all runs.
    pub pool_conjoin_calls_total: Counter,
    /// Confidence groups solved exactly.
    pub conf_exact_groups_total: Counter,
    /// Confidence groups estimated by sampling.
    pub conf_sampled_groups_total: Counter,
    /// Sampling draws performed by the confidence solver.
    pub conf_samples_drawn_total: Counter,
    /// Normalization passes run.
    pub normalize_runs_total: Counter,
    /// Rows entering normalization passes.
    pub normalize_rows_total: Counter,
    /// Cardinality-estimation error per analyzed plan node, as the q-error
    /// `max(est/actual, actual/est)` scaled by 1000 (so the histogram's
    /// integer buckets resolve sub-10% mis-estimates; 1000 = perfect).
    /// Fed by `EXPLAIN ANALYZE`, which is where estimates meet actuals.
    pub plan_q_error_milli: Histogram,
    /// Bloom filters built for sideways information passing.
    pub sip_filters_built_total: Counter,
    /// Probe-side rows tested against a pushed-down SIP Bloom filter.
    pub sip_rows_tested_total: Counter,
    /// Probe-side rows pruned by a SIP Bloom filter before reaching a join.
    pub sip_rows_pruned_total: Counter,
}

impl Metrics {
    /// Render the registry in prometheus-flavoured text: `name value` lines
    /// for counters; `_count`/`_sum` plus `quantile`-labelled lines for
    /// histograms.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let counters: [(&str, &Counter); 14] = [
            ("maybms_queries_total", &self.queries_total),
            ("maybms_query_rows_total", &self.query_rows_total),
            ("maybms_par_tasks_total", &self.par_tasks_total),
            ("maybms_par_busy_nanos", &self.par_busy_nanos),
            (
                "maybms_pool_intern_calls_total",
                &self.pool_intern_calls_total,
            ),
            (
                "maybms_pool_intern_hits_total",
                &self.pool_intern_hits_total,
            ),
            (
                "maybms_pool_conjoin_calls_total",
                &self.pool_conjoin_calls_total,
            ),
            (
                "maybms_conf_exact_groups_total",
                &self.conf_exact_groups_total,
            ),
            (
                "maybms_conf_sampled_groups_total",
                &self.conf_sampled_groups_total,
            ),
            (
                "maybms_conf_samples_drawn_total",
                &self.conf_samples_drawn_total,
            ),
            ("maybms_normalize_runs_total", &self.normalize_runs_total),
            (
                "maybms_sip_filters_built_total",
                &self.sip_filters_built_total,
            ),
            ("maybms_sip_rows_tested_total", &self.sip_rows_tested_total),
            ("maybms_sip_rows_pruned_total", &self.sip_rows_pruned_total),
        ];
        for (name, c) in counters {
            out.push_str(&format!("{name} {}\n", c.get()));
        }
        out.push_str(&format!(
            "maybms_normalize_rows_total {}\n",
            self.normalize_rows_total.get()
        ));
        let histograms: [(&str, &Histogram); 3] = [
            ("maybms_query_wall_nanos", &self.query_wall_nanos),
            ("maybms_query_rows", &self.query_rows),
            ("maybms_plan_q_error_milli", &self.plan_q_error_milli),
        ];
        for (name, h) in histograms {
            out.push_str(&format!("{name}_count {}\n", h.count()));
            out.push_str(&format!("{name}_sum {}\n", h.sum()));
            for q in [0.5, 0.9, 0.99] {
                out.push_str(&format!("{name}{{quantile=\"{q}\"}} {}\n", h.quantile(q)));
            }
        }
        out
    }
}

static METRICS: OnceLock<Metrics> = OnceLock::new();

/// The process-wide [`Metrics`] registry (created on first use).
pub fn metrics() -> &'static Metrics {
    METRICS.get_or_init(Metrics::default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_monotonic() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        c.add(0);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn histogram_buckets_are_monotone_and_cover_u64() {
        // Bucket index must be non-decreasing in the value and the floor of
        // each bucket must map back into it.
        let mut values: Vec<u64> = (0..64)
            .flat_map(|shift| [0u64, 1, 3].map(|off| (1u64 << shift).saturating_add(off)))
            .collect();
        values.extend(0..16u64);
        values.sort_unstable();
        let mut prev = 0;
        for v in values {
            let idx = Histogram::bucket_index(v);
            assert!(idx >= prev, "monotone at {v}");
            prev = idx;
            assert!(idx < BUCKETS);
            let floor = Histogram::bucket_floor(idx);
            assert_eq!(Histogram::bucket_index(floor), idx, "floor of {v}");
            assert!(floor <= v, "floor {floor} exceeds {v}");
        }
    }

    #[test]
    fn histogram_quantiles_have_bounded_relative_error() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.observe(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.sum(), 500_500);
        for (q, exact) in [(0.5, 500u64), (0.9, 900), (0.99, 990)] {
            let got = h.quantile(q);
            let err = (got as f64 - exact as f64).abs() / exact as f64;
            assert!(err <= 0.25, "q={q}: got {got}, exact {exact}");
        }
    }

    #[test]
    fn spans_nest_and_attribute_counter_deltas() {
        let mut t = Tracer::enabled();
        let root = t.enter(
            "join".into(),
            ObsCounters {
                intern_calls: 10,
                ..ObsCounters::default()
            },
        );
        let child = t.enter(
            "scan".into(),
            ObsCounters {
                intern_calls: 10,
                ..ObsCounters::default()
            },
        );
        t.exit(
            child,
            3,
            ObsCounters {
                intern_calls: 12,
                ..ObsCounters::default()
            },
        );
        let started = t.now();
        t.event("probe", started, 7);
        t.exit(
            root,
            5,
            ObsCounters {
                intern_calls: 17,
                ..ObsCounters::default()
            },
        );
        let trace = t.finish(2);
        assert_eq!(trace.spans.len(), 3);
        assert_eq!(trace.node_span_count(), 2);
        let root_span = trace.root().expect("root exists");
        assert_eq!(root_span.label, "join");
        assert_eq!(root_span.rows_out, 5);
        assert_eq!(root_span.counters.intern_calls, 7); // 17 - 10 inclusive
        assert_eq!(trace.spans[1].parent, Some(0));
        assert_eq!(trace.spans[1].depth, 1);
        assert_eq!(trace.spans[2].kind, SpanKind::Phase);
        assert_eq!(trace.spans[2].parent, Some(0));
        // Exclusive root counters subtract the child's two interns.
        assert_eq!(trace.exclusive(0).intern_calls, 5);
        assert_eq!(trace.rows_in(0), Some(3));
        assert_eq!(trace.rows_in(1), None);
        let tree = trace.render_tree();
        assert!(tree.contains("join  (time="));
        assert!(tree.contains("  scan  (time="));
        assert!(tree.contains("· probe"));
        assert!(tree.contains("items=7"));
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut t = Tracer::disabled();
        let id = t.enter("x".into(), ObsCounters::default());
        assert_eq!(id, SpanId::NONE);
        t.event("y", t.now(), 1);
        t.exit(id, 9, ObsCounters::default());
        assert!(t.finish(1).spans.is_empty());
    }

    /// Minimal recursive-descent JSON validity check — enough to catch
    /// escaping or bracket mistakes in the trace export without a JSON
    /// dependency.
    fn validate_json(s: &str) {
        fn skip_ws(b: &[u8], mut i: usize) -> usize {
            while i < b.len() && (b[i] as char).is_ascii_whitespace() {
                i += 1;
            }
            i
        }
        fn value(b: &[u8], i: usize) -> usize {
            let i = skip_ws(b, i);
            match b[i] {
                b'{' => {
                    let mut i = skip_ws(b, i + 1);
                    if b[i] == b'}' {
                        return i + 1;
                    }
                    loop {
                        i = string(b, skip_ws(b, i));
                        i = skip_ws(b, i);
                        assert_eq!(b[i], b':', "object colon at {i}");
                        i = value(b, i + 1);
                        i = skip_ws(b, i);
                        match b[i] {
                            b',' => i += 1,
                            b'}' => return i + 1,
                            c => panic!("bad object separator {:?} at {i}", c as char),
                        }
                    }
                }
                b'[' => {
                    let mut i = skip_ws(b, i + 1);
                    if b[i] == b']' {
                        return i + 1;
                    }
                    loop {
                        i = value(b, i);
                        i = skip_ws(b, i);
                        match b[i] {
                            b',' => i += 1,
                            b']' => return i + 1,
                            c => panic!("bad array separator {:?} at {i}", c as char),
                        }
                    }
                }
                b'"' => string(b, i),
                _ => {
                    let mut j = i;
                    while j < b.len()
                        && !matches!(b[j], b',' | b'}' | b']')
                        && !(b[j] as char).is_ascii_whitespace()
                    {
                        j += 1;
                    }
                    let tok = std::str::from_utf8(&b[i..j]).unwrap();
                    assert!(
                        tok == "true"
                            || tok == "false"
                            || tok == "null"
                            || tok.parse::<f64>().is_ok(),
                        "bad literal {tok:?}"
                    );
                    j
                }
            }
        }
        fn string(b: &[u8], i: usize) -> usize {
            assert_eq!(b[i], b'"', "string start at {i}");
            let mut i = i + 1;
            while b[i] != b'"' {
                if b[i] == b'\\' {
                    i += 1;
                }
                i += 1;
            }
            i + 1
        }
        let b = s.as_bytes();
        let end = value(b, 0);
        assert_eq!(skip_ws(b, end), b.len(), "trailing garbage");
    }

    #[test]
    fn trace_json_is_valid_chrome_trace_format() {
        let mut t = Tracer::enabled();
        let root = t.enter("select[name = 'O\"Brien\\']".into(), ObsCounters::default());
        let child = t.enter("scan[r]".into(), ObsCounters::default());
        t.exit(
            child,
            2,
            ObsCounters {
                morsels: 4,
                busy_nanos: 123,
                ..ObsCounters::default()
            },
        );
        t.exit(root, 1, ObsCounters::default());
        let json = t.finish(4).to_json();
        validate_json(&json);
        assert!(json.contains("\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"morsels\":4"));
        assert!(json.contains("O\\\"Brien\\\\"));
    }

    #[test]
    fn registry_renders_every_series() {
        let m = Metrics::default();
        m.queries_total.inc();
        m.query_wall_nanos.observe(1_000_000);
        let text = m.render();
        assert!(text.contains("maybms_queries_total 1\n"));
        assert!(text.contains("maybms_query_wall_nanos_count 1\n"));
        assert!(text.contains("maybms_query_wall_nanos{quantile=\"0.5\"}"));
        // The global registry is reachable and monotonic.
        let before = metrics().queries_total.get();
        metrics().queries_total.inc();
        assert!(metrics().queries_total.get() > before);
    }
}
