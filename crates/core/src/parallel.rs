//! Morsel-driven parallelism primitives shared by the executor and the
//! normalization pipeline.
//!
//! The container this project builds in has no registry access, so there is
//! no rayon: everything here is built on [`std::thread::scope`]. The model
//! is deliberately simple and deterministic:
//!
//! * work is split into **tasks** (usually contiguous row ranges — morsels,
//!   or per-partition jobs);
//! * a small pool of scoped worker threads pulls task indices from one
//!   atomic counter ([`run_tasks`]);
//! * each task produces a self-contained result (including, for stages that
//!   mint descriptors or strings, its own pool shard delta), and results are
//!   returned **in task order** — so the output of a parallel stage never
//!   depends on which OS thread happened to run which task.
//!
//! Determinism is the load-bearing property. Every parallel stage in the
//! engine is written so that, for a fixed input, its output is byte-identical
//! for *any* thread count — the differential test machinery is the oracle
//! (see the `parallel_differential` suite). Numeric descriptor handles and
//! string codes may differ across thread counts; everything downstream
//! compares descriptor and string *content*, and only the final
//! row-oriented conversion is observable.

use std::cmp::Ordering;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering as AtomicOrdering};

/// Default minimum row count before a stage bothers to go parallel:
/// below this, thread spawn and merge overhead dominates any win.
pub const DEFAULT_MIN_ROWS: usize = 4096;

/// Parallel execution knobs threaded through the executor and normalizer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParCfg {
    /// Worker thread budget. `1` disables parallelism entirely (every stage
    /// runs inline on the calling thread).
    pub threads: usize,
    /// Minimum number of rows (or tasks) a stage must process before it
    /// fans out. Tests set this to `1` to force the parallel code paths on
    /// tiny generated inputs.
    pub min_rows: usize,
}

impl Default for ParCfg {
    fn default() -> Self {
        ParCfg::from_env()
    }
}

impl ParCfg {
    /// The configuration the environment asks for: `MAYBMS_THREADS` when
    /// set (and ≥ 1), otherwise the machine's available parallelism.
    pub fn from_env() -> Self {
        let threads = std::env::var("MAYBMS_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&t| t >= 1)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(1)
            });
        ParCfg {
            threads,
            min_rows: DEFAULT_MIN_ROWS,
        }
    }

    /// Single-threaded configuration (all stages inline).
    pub fn sequential() -> Self {
        ParCfg {
            threads: 1,
            min_rows: DEFAULT_MIN_ROWS,
        }
    }

    /// A configuration with an explicit thread budget and the default
    /// morsel threshold.
    pub fn with_threads(threads: usize) -> Self {
        ParCfg {
            threads: threads.max(1),
            min_rows: DEFAULT_MIN_ROWS,
        }
    }

    /// How many workers a stage over `rows` rows should use: `1` (inline)
    /// when parallelism is off or the input is below the morsel threshold,
    /// the full thread budget otherwise.
    pub fn workers_for(&self, rows: usize) -> usize {
        if self.threads <= 1 || rows < self.min_rows {
            1
        } else {
            self.threads
        }
    }
}

/// Parallelism counters of one executor run, surfaced through `ExecStats`
/// and the REPL's `\stats` meta-command.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ParStats {
    /// Maximum number of workers any stage fanned out to (1 = everything
    /// ran inline).
    pub workers_used: usize,
    /// Total morsels (tasks) dispatched across all parallel stages.
    pub morsels: u64,
    /// Pool entries (descriptors + strings) minted inside worker shards and
    /// merged back into the run-global pools.
    pub shard_entries: u64,
    /// Nanoseconds spent in the deterministic shard merge/remap steps.
    pub merge_nanos: u64,
}

impl ParStats {
    /// Record one parallel stage's fan-out.
    pub fn note_stage(&mut self, workers: usize, morsels: usize) {
        self.workers_used = self.workers_used.max(workers);
        self.morsels += morsels as u64;
    }

    /// Record one shard merge (entries re-interned, time spent).
    pub fn note_merge(&mut self, entries: u64, nanos: u64) {
        self.shard_entries += entries;
        self.merge_nanos += nanos;
    }

    /// Fold another run's counters into this one.
    pub fn absorb(&mut self, other: &ParStats) {
        self.workers_used = self.workers_used.max(other.workers_used);
        self.morsels += other.morsels;
        self.shard_entries += other.shard_entries;
        self.merge_nanos += other.merge_nanos;
    }
}

/// Split `0..n` into at most `parts` contiguous, non-empty, near-equal
/// ranges (fewer when `n < parts`).
pub fn chunk_ranges(n: usize, parts: usize) -> Vec<Range<usize>> {
    if n == 0 {
        return Vec::new();
    }
    let parts = parts.clamp(1, n);
    let base = n / parts;
    let extra = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let len = base + usize::from(p < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Run `tasks` task closures on up to `workers` scoped threads, returning
/// the results **in task order**.
///
/// Workers pull task indices from one shared atomic counter, so load
/// balances dynamically; but because each task's result depends only on its
/// own index (tasks own their state — e.g. a fresh pool shard per task, not
/// per worker), the returned vector is identical no matter how tasks were
/// scheduled. With `workers <= 1` or a single task everything runs inline on
/// the calling thread. A panicking task propagates the panic.
pub fn run_tasks<R, F>(workers: usize, tasks: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if workers <= 1 || tasks <= 1 {
        return (0..tasks).map(f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::new();
    slots.resize_with(tasks, || None);
    let workers = workers.min(tasks);
    let mut busy_nanos = 0u64;
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let cursor = &cursor;
            let f = &f;
            handles.push(scope.spawn(move || {
                let started = std::time::Instant::now();
                let mut done: Vec<(usize, R)> = Vec::new();
                loop {
                    let t = cursor.fetch_add(1, AtomicOrdering::Relaxed);
                    if t >= tasks {
                        break;
                    }
                    done.push((t, f(t)));
                }
                (done, started.elapsed())
            }));
        }
        for h in handles {
            let (done, elapsed) = h.join().expect("worker task panicked");
            busy_nanos += u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
            for (t, r) in done {
                slots[t] = Some(r);
            }
        }
    });
    // One registry update per fan-out (not per task): worker occupancy and
    // task throughput for the tracer's `occ=` annotation and `/metrics`.
    let m = crate::obs::metrics();
    m.par_tasks_total.add(tasks as u64);
    m.par_busy_nanos.add(busy_nanos);
    slots
        .into_iter()
        .map(|r| r.expect("every task index below `tasks` was claimed"))
        .collect()
}

/// Sort `v` with up to `workers` threads. The result is exactly what
/// `v.sort_by(cmp)` produces (a **stable** sort): chunks are stable-sorted
/// in parallel, then adjacent sorted runs are merged pairwise with a
/// left-biased merge, which preserves the original relative order of
/// elements the comparator considers equal. Callers that need the
/// single-thread fast path of `sort_unstable_by` should branch on
/// `workers <= 1` themselves.
pub fn par_sort_by<T, F>(v: &mut Vec<T>, workers: usize, cmp: F)
where
    T: Send + Sync + Copy,
    F: Fn(&T, &T) -> Ordering + Sync,
{
    let n = v.len();
    if workers <= 1 || n < 2 {
        v.sort_by(|a, b| cmp(a, b));
        return;
    }
    let chunk = n.div_ceil(workers.min(n));
    std::thread::scope(|scope| {
        for part in v.chunks_mut(chunk) {
            let cmp = &cmp;
            scope.spawn(move || part.sort_by(|a, b| cmp(a, b)));
        }
    });
    let mut runs: Vec<Vec<T>> = v.chunks(chunk).map(<[T]>::to_vec).collect();
    while runs.len() > 1 {
        // Merge adjacent pairs left-to-right; a trailing odd run carries
        // over unchanged, keeping the run sequence order-preserving (and
        // with it the stability of the whole sort).
        let mut next: Vec<Option<Vec<T>>> = Vec::new();
        let pairs = runs.len() / 2;
        let merged = run_tasks(workers, pairs, |p| {
            merge_sorted(&runs[2 * p], &runs[2 * p + 1], &cmp)
        });
        next.extend(merged.into_iter().map(Some));
        if runs.len() % 2 == 1 {
            next.push(runs.pop());
        }
        runs = next.into_iter().map(|r| r.expect("run present")).collect();
    }
    *v = runs.pop().expect("at least one run");
}

/// Left-biased merge of two sorted slices (equal elements keep `a` first).
fn merge_sorted<T: Copy>(a: &[T], b: &[T], cmp: &impl Fn(&T, &T) -> Ordering) -> Vec<T> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if cmp(&a[i], &b[j]) != Ordering::Greater {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn chunk_ranges_cover_exactly() {
        for n in [0usize, 1, 5, 16, 17, 1000] {
            for parts in [1usize, 2, 3, 4, 7] {
                let ranges = chunk_ranges(n, parts);
                let mut expect = 0;
                for r in &ranges {
                    assert_eq!(r.start, expect, "contiguous");
                    assert!(!r.is_empty(), "no empty morsels");
                    expect = r.end;
                }
                assert_eq!(expect, n, "ranges cover 0..{n}");
                assert!(ranges.len() <= parts.max(1));
            }
        }
    }

    #[test]
    fn run_tasks_returns_in_task_order() {
        let results = run_tasks(4, 37, |t| t * t);
        assert_eq!(results, (0..37).map(|t| t * t).collect::<Vec<_>>());
        // Inline path agrees.
        assert_eq!(run_tasks(1, 5, |t| t + 1), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn par_sort_matches_stable_sort() {
        let mut rng = Rng::new(0x5027);
        for n in [0usize, 1, 2, 100, 4097] {
            // Key with few distinct values so ties (and thus stability) are
            // actually exercised; the payload records the original index.
            let data: Vec<(u64, u32)> = (0..n).map(|i| (rng.next_u64() % 7, i as u32)).collect();
            let mut expect = data.clone();
            expect.sort_by_key(|e| e.0);
            for workers in [2usize, 3, 4] {
                let mut got = data.clone();
                par_sort_by(&mut got, workers, |a, b| a.0.cmp(&b.0));
                assert_eq!(got, expect, "n={n} workers={workers}");
            }
        }
    }

    #[test]
    fn workers_for_honors_threshold() {
        let par = ParCfg {
            threads: 4,
            min_rows: 100,
        };
        assert_eq!(par.workers_for(99), 1);
        assert_eq!(par.workers_for(100), 4);
        assert_eq!(ParCfg::sequential().workers_for(1_000_000), 1);
    }
}
