//! A fast, deterministic, non-cryptographic hasher for the engine's
//! internal hot-path maps (descriptor interning, hash joins).
//!
//! `std`'s default `SipHash13` is DoS-resistant but costs an order of
//! magnitude more than multiply-rotate hashing on the small fixed-size keys
//! these maps use (interned term lists, join-key value slices). The engine's
//! maps are process-internal and never keyed by attacker-controlled input
//! across a trust boundary, so we trade the flooding resistance for raw
//! speed, using the multiply-rotate-xor scheme popularized by the Firefox
//! and rustc "FxHash" (one multiply per 8-byte word, no finalizer).
//!
//! The registry-offline build environment is also why this is hand-rolled
//! here rather than a dependency.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier from the FxHash scheme: a 64-bit constant derived from π,
/// chosen so that multiplication mixes low-entropy integer keys well.
const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The hasher state. One `rotate ^ word` then multiply per 8-byte word.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_u128(&mut self, v: u128) {
        self.add(v as u64);
        self.add((v >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }

    #[inline]
    fn write_i64(&mut self, v: i64) {
        self.add(v as u64);
    }
}

/// `BuildHasher` for [`FxHasher`] (deterministic: no per-map seed).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::BuildHasher;

    #[test]
    fn deterministic_and_discriminating() {
        let b = FxBuildHasher::default();
        let h = |v: &[u8]| b.hash_one(v);
        assert_eq!(h(b"hello"), h(b"hello"));
        assert_ne!(h(b"hello"), h(b"hellp"));
        assert_ne!(h(b""), h(b"\0"));
    }

    #[test]
    fn usable_as_map() {
        let mut m: FxHashMap<Vec<u32>, usize> = FxHashMap::default();
        m.insert(vec![1, 2, 3], 1);
        m.insert(vec![1, 2], 2);
        assert_eq!(m.get([1u32, 2, 3].as_slice()), Some(&1));
        assert_eq!(m.len(), 2);
    }
}
