//! Relation schemas and the shared natural-join planning logic.

use crate::error::MayError;
use crate::rel::Tuple;
use crate::value::{Value, ValueType};

/// A named, typed column.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Column {
    /// Column name, unique within a schema.
    pub name: String,
    /// Column type; `Null` values are accepted in any column.
    pub ty: ValueType,
}

impl Column {
    /// Create a column.
    pub fn new(name: impl Into<String>, ty: ValueType) -> Self {
        Column {
            name: name.into(),
            ty,
        }
    }
}

/// An ordered list of uniquely named columns.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Schema {
    columns: Vec<Column>,
}

impl Schema {
    /// Build a schema, rejecting duplicate column names.
    pub fn new(columns: Vec<Column>) -> Result<Self, MayError> {
        for (i, c) in columns.iter().enumerate() {
            if columns[..i].iter().any(|o| o.name == c.name) {
                return Err(MayError::UnknownColumn(format!(
                    "duplicate column {}",
                    c.name
                )));
            }
        }
        Ok(Schema { columns })
    }

    /// Shorthand for building a schema from `(name, type)` pairs.
    pub fn of(cols: &[(&str, ValueType)]) -> Result<Self, MayError> {
        Schema::new(cols.iter().map(|(n, t)| Column::new(*n, *t)).collect())
    }

    /// The columns in order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Index of the named column.
    pub fn col_index(&self, name: &str) -> Result<usize, MayError> {
        self.columns
            .iter()
            .position(|c| c.name == name)
            .ok_or_else(|| MayError::UnknownColumn(name.to_string()))
    }

    /// One-line rendering of the schema, e.g. `(a int, b str)` — used by
    /// error messages so mismatches name the schemas involved, not just
    /// their lengths.
    pub fn describe(&self) -> String {
        let cols: Vec<String> = self
            .columns
            .iter()
            .map(|c| format!("{} {}", c.name, c.ty))
            .collect();
        format!("({})", cols.join(", "))
    }

    /// Check a tuple against this schema (arity and types; `Null` matches any
    /// column type). Errors name the offending attribute and the schema.
    pub fn check(&self, tuple: &Tuple) -> Result<(), MayError> {
        if tuple.arity() != self.arity() {
            let detail = if tuple.arity() < self.arity() {
                format!(
                    "; no value for column `{}`",
                    self.columns[tuple.arity()].name
                )
            } else {
                format!(
                    "; {} extra value(s) past the last column",
                    tuple.arity() - self.arity()
                )
            };
            return Err(MayError::TupleMismatch(format!(
                "tuple {tuple} has arity {} but schema {} has arity {}{detail}",
                tuple.arity(),
                self.describe(),
                self.arity()
            )));
        }
        for (v, c) in tuple.values().iter().zip(&self.columns) {
            if !matches!(v, Value::Null) && v.type_of() != c.ty {
                return Err(MayError::TupleMismatch(format!(
                    "column `{}` of schema {} expects {}, got {} in tuple {tuple}",
                    c.name,
                    self.describe(),
                    c.ty,
                    v.type_of()
                )));
            }
        }
        Ok(())
    }

    /// Resolve a projection: returns the output schema and the source column
    /// indices, in output order.
    pub fn project(&self, names: &[String]) -> Result<(Schema, Vec<usize>), MayError> {
        let mut cols = Vec::with_capacity(names.len());
        let mut idx = Vec::with_capacity(names.len());
        for n in names {
            let i = self.col_index(n)?;
            cols.push(self.columns[i].clone());
            idx.push(i);
        }
        Ok((Schema::new(cols)?, idx))
    }

    /// Apply `(old, new)` column renamings, keeping order and types.
    pub fn rename(&self, renames: &[(String, String)]) -> Result<Schema, MayError> {
        let mut cols = self.columns.clone();
        for (old, new) in renames {
            let i = self.col_index(old)?;
            cols[i].name = new.clone();
        }
        Schema::new(cols)
    }

    /// Check that another schema is union-compatible (same names and types in
    /// the same order). Errors pinpoint the first offending attribute and
    /// show both full schemas.
    pub fn union_compatible(&self, other: &Schema) -> Result<(), MayError> {
        if self == other {
            return Ok(());
        }
        let both = format!("left {}, right {}", self.describe(), other.describe());
        for (i, (l, r)) in self.columns.iter().zip(&other.columns).enumerate() {
            if l.name != r.name {
                return Err(MayError::SchemaMismatch(format!(
                    "column {} is named `{}` on the left but `{}` on the right; {both}",
                    i + 1,
                    l.name,
                    r.name
                )));
            }
            if l.ty != r.ty {
                return Err(MayError::SchemaMismatch(format!(
                    "column `{}` is {} on the left but {} on the right; {both}",
                    l.name, l.ty, r.ty
                )));
            }
        }
        // Same prefix, different arity.
        Err(MayError::SchemaMismatch(format!(
            "left has {} column(s) but right has {}; {both}",
            self.arity(),
            other.arity()
        )))
    }

    /// Column names in order.
    pub fn names(&self) -> Vec<&str> {
        self.columns.iter().map(|c| c.name.as_str()).collect()
    }

    /// Plan a natural join with `right`: shared columns are matched by name,
    /// the output keeps all left columns followed by the non-shared right
    /// columns. Shared columns must agree on type.
    pub fn natural_join(&self, right: &Schema) -> Result<JoinPlan, MayError> {
        let mut shared = Vec::new();
        for (li, lc) in self.columns.iter().enumerate() {
            if let Ok(ri) = right.col_index(&lc.name) {
                if right.columns[ri].ty != lc.ty {
                    return Err(MayError::SchemaMismatch(format!(
                        "join column {} has type {} on the left but {} on the right",
                        lc.name, lc.ty, right.columns[ri].ty
                    )));
                }
                shared.push((li, ri));
            }
        }
        let right_keep: Vec<usize> = (0..right.arity())
            .filter(|ri| !shared.iter().any(|(_, r)| r == ri))
            .collect();
        let mut cols = self.columns.clone();
        cols.extend(right_keep.iter().map(|&ri| right.columns[ri].clone()));
        Ok(JoinPlan {
            shared,
            right_keep,
            schema: Schema::new(cols)?,
        })
    }
}

/// Precomputed structure of a natural join between two schemas.
#[derive(Clone, Debug)]
pub struct JoinPlan {
    /// Pairs of `(left index, right index)` of columns shared by name.
    pub shared: Vec<(usize, usize)>,
    /// Right-side column indices that are not shared and appear in the output.
    pub right_keep: Vec<usize>,
    /// The output schema: left columns, then kept right columns.
    pub schema: Schema,
}

impl JoinPlan {
    /// The join key of a left tuple (values of the shared columns).
    pub fn left_key(&self, t: &Tuple) -> Vec<Value> {
        self.shared
            .iter()
            .map(|&(l, _)| t.values()[l].clone())
            .collect()
    }

    /// The join key of a right tuple.
    pub fn right_key(&self, t: &Tuple) -> Vec<Value> {
        self.shared
            .iter()
            .map(|&(_, r)| t.values()[r].clone())
            .collect()
    }

    /// Whether two tuples agree on every shared column — the join condition,
    /// checked in place without materializing either key vector. Hash joins
    /// that bucket rows by a *hash* of the key use this to verify candidate
    /// pairs, so the equi-join needs no per-row key allocation at all.
    pub fn tuples_match(&self, l: &Tuple, r: &Tuple) -> bool {
        self.shared
            .iter()
            .all(|&(li, ri)| l.values()[li] == r.values()[ri])
    }

    /// Combine a matching pair of tuples into an output tuple. Allocates the
    /// output at its exact final arity (one allocation per row, not an
    /// allocate-then-grow).
    pub fn combine(&self, l: &Tuple, r: &Tuple) -> Tuple {
        let mut vs = Vec::with_capacity(l.arity() + self.right_keep.len());
        vs.extend_from_slice(l.values());
        vs.extend(self.right_keep.iter().map(|&ri| r.values()[ri].clone()));
        Tuple::new(vs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_duplicate_columns() {
        assert!(Schema::of(&[("a", ValueType::Int), ("a", ValueType::Int)]).is_err());
    }

    #[test]
    fn mismatch_errors_name_attribute_and_schemas() {
        let s = Schema::of(&[("a", ValueType::Int), ("b", ValueType::Str)]).unwrap();
        let short = Tuple::new(vec![1.into()]);
        let err = s.check(&short).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("(a int, b str)"), "{msg}");
        assert!(msg.contains("no value for column `b`"), "{msg}");

        let wrong_ty = Tuple::new(vec![1.into(), 2.into()]);
        let msg = s.check(&wrong_ty).unwrap_err().to_string();
        assert!(msg.contains("column `b`"), "{msg}");
        assert!(msg.contains("expects str, got int"), "{msg}");

        let other = Schema::of(&[("a", ValueType::Int), ("b", ValueType::Int)]).unwrap();
        let msg = s.union_compatible(&other).unwrap_err().to_string();
        assert!(
            msg.contains("column `b` is str on the left but int on the right"),
            "{msg}"
        );
        assert!(
            msg.contains("left (a int, b str), right (a int, b int)"),
            "{msg}"
        );

        let renamed = Schema::of(&[("a", ValueType::Int), ("c", ValueType::Str)]).unwrap();
        let msg = s.union_compatible(&renamed).unwrap_err().to_string();
        assert!(
            msg.contains("column 2 is named `b` on the left but `c` on the right"),
            "{msg}"
        );

        let wider = Schema::of(&[
            ("a", ValueType::Int),
            ("b", ValueType::Str),
            ("c", ValueType::Int),
        ])
        .unwrap();
        let msg = s.union_compatible(&wider).unwrap_err().to_string();
        assert!(
            msg.contains("left has 2 column(s) but right has 3"),
            "{msg}"
        );
    }

    #[test]
    fn natural_join_plan_shares_by_name() {
        let l = Schema::of(&[("a", ValueType::Int), ("b", ValueType::Int)]).unwrap();
        let r = Schema::of(&[("b", ValueType::Int), ("c", ValueType::Int)]).unwrap();
        let jp = l.natural_join(&r).unwrap();
        assert_eq!(jp.shared, vec![(1, 0)]);
        assert_eq!(jp.schema.names(), vec!["a", "b", "c"]);
        let t = jp.combine(
            &Tuple::new(vec![1.into(), 2.into()]),
            &Tuple::new(vec![2.into(), 3.into()]),
        );
        assert_eq!(t, Tuple::new(vec![1.into(), 2.into(), 3.into()]));
    }
}
