//! Columnar u-relation storage: one typed vector per attribute plus a dense
//! descriptor column.
//!
//! The row-oriented [`URelation`] stores `Vec<(Tuple, WsDescriptor)>` — every
//! row is its own heap allocation and every scan chases one pointer per row.
//! The execution core instead operates on a [`ColumnarURelation`]: per
//! attribute one contiguous typed vector ([`ColumnVec`]) — `i64` for ints,
//! `f64` for floats, `bool` for booleans, dictionary codes for strings — and
//! one dense [`DescId`] vector for the world-set-descriptor column. Operators
//! sweep whole columns (predicate evaluation, hash-key computation, gathers)
//! instead of re-materializing tuples per row, which is exactly the access
//! pattern the flat U-relational representation of the paper rewards: the
//! annotation column and the value columns are scanned independently.
//!
//! Two interning pools give the columnar form its compact cells:
//!
//! * descriptors are handles into a [`DescriptorPool`] (see [`crate::intern`]);
//! * strings are codes into a [`StrPool`] shared by *all* columns of a run,
//!   so string equality — in joins, dedup, and group detection — is a `u32`
//!   compare, never a byte compare.
//!
//! `Null` is represented out of band: a column carries an optional validity
//! mask, allocated lazily the first time a null is stored. The typed data
//! slot under a null holds an unobservable sentinel. Pure `null`-typed
//! columns (schema type [`ValueType::Null`]) store only their length.
//!
//! Row order is part of the representation (operators preserve and exploit
//! it), and [`ColumnarURelation::from_urelation`] /
//! [`ColumnarURelation::to_urelation`] round-trip rows exactly — the
//! conversion boundary the per-world oracle and the REPL display sit behind.

use std::cmp::Ordering;
use std::hash::{Hash, Hasher};

use crate::intern::{DescId, DescriptorPool, ShardDelta};
use crate::parallel::{chunk_ranges, run_tasks, ParCfg, ParStats};
use crate::rel::Tuple;
use crate::schema::Schema;
use crate::urel::URelation;
use crate::value::{Value, ValueType, F64};

/// A sink for string interning: implemented by the run-global [`StrPool`]
/// and the per-worker [`StrShard`], so columnar appends
/// ([`ColumnVec::push`]) work identically inside and outside parallel
/// stages.
pub trait InternStr {
    /// Intern a string, returning its stable code.
    fn intern_str(&mut self, s: &str) -> u32;
}

/// FxHash of a string's bytes — the probe key for the pool's
/// open-addressing tables. Computed once per intern and *stored* per code,
/// so probes compare hashes before touching string bytes.
///
/// The xor-fold finalizer matters: FxHash's last step is a multiply, whose
/// low bits depend only on the low bytes of the input, and the tables mask
/// the *low* bits for the bucket index. Folding the well-mixed high half
/// down keeps short common-prefix keys ("k123"…) from collapsing into a
/// handful of probe chains.
#[inline]
fn str_hash(s: &str) -> u64 {
    use std::hash::Hasher as _;
    let mut h = crate::fxhash::FxHasher::default();
    h.write(s.as_bytes());
    let h = h.finish();
    h ^ (h >> 32)
}

/// Probe an open-addressing code table for `s` (hash `h`). `slots` holds
/// codes into `hashes`/`strings` (`u32::MAX` = empty), linear probing.
#[inline]
fn table_lookup(
    slots: &[u32],
    hashes: &[u64],
    strings: &[Box<str>],
    h: u64,
    s: &str,
) -> Option<u32> {
    if slots.is_empty() {
        return None;
    }
    let mask = slots.len() - 1;
    let mut i = (h as usize) & mask;
    loop {
        let e = slots[i];
        if e == u32::MAX {
            return None;
        }
        let c = e as usize;
        if hashes[c] == h && &*strings[c] == s {
            return Some(e);
        }
        i = (i + 1) & mask;
    }
}

/// Place `code` (hash `h`) into the first free slot of its probe sequence.
#[inline]
fn table_place(slots: &mut [u32], h: u64, code: u32) {
    let mask = slots.len() - 1;
    let mut i = (h as usize) & mask;
    while slots[i] != u32::MAX {
        i = (i + 1) & mask;
    }
    slots[i] = code;
}

/// Rebuild the table over all current codes at ≤ 50% load.
fn table_rebuild(slots: &mut Vec<u32>, hashes: &[u64]) {
    let cap = (hashes.len() * 2).next_power_of_two().max(16);
    slots.clear();
    slots.resize(cap, u32::MAX);
    for (c, &h) in hashes.iter().enumerate() {
        table_place(slots, h, c as u32);
    }
}

/// Append a new string to parallel `strings`/`hashes` columns and index it,
/// growing the table at 7/8 load. Returns the new code.
fn table_insert(
    slots: &mut Vec<u32>,
    hashes: &mut Vec<u64>,
    strings: &mut Vec<Box<str>>,
    h: u64,
    s: &str,
) -> u32 {
    let code = strings.len() as u32;
    strings.push(s.into());
    hashes.push(h);
    if (strings.len() + 1) * 8 > slots.len() * 7 {
        table_rebuild(slots, hashes);
    } else {
        table_place(slots, h, code);
    }
    code
}

/// A run-scoped string dictionary: every distinct string is stored once and
/// addressed by a dense `u32` code. Codes are only meaningful relative to
/// the pool that issued them; within one pool, code equality *is* string
/// equality, which is what makes string joins and dedup integer-cheap.
///
/// The index is a hand-rolled open-addressing table (codes only; the
/// strings and their hashes live in parallel dense columns) rather than a
/// `HashMap<Box<str>, u32>`: interning is the hot inner loop of every
/// scan conversion, and the table halves the per-probe cache misses (hash
/// compare before byte compare, no duplicate boxed key) — worth ~2× on
/// string-heavy scans.
#[derive(Clone, Debug, Default)]
pub struct StrPool {
    strings: Vec<Box<str>>,
    hashes: Vec<u64>,
    slots: Vec<u32>,
}

impl StrPool {
    /// An empty pool.
    pub fn new() -> Self {
        StrPool::default()
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// True when no string has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Intern a string, returning its stable code.
    pub fn intern(&mut self, s: &str) -> u32 {
        let h = str_hash(s);
        match table_lookup(&self.slots, &self.hashes, &self.strings, h, s) {
            Some(code) => code,
            None => table_insert(&mut self.slots, &mut self.hashes, &mut self.strings, h, s),
        }
    }

    /// The string behind a code.
    pub fn get(&self, code: u32) -> &str {
        &self.strings[code as usize]
    }

    /// A fresh per-worker append arena over this pool (the string analog of
    /// [`DescriptorPool::shard`]): reads resolve against the base first,
    /// new strings get codes numbered from `self.len()` upward.
    pub fn shard(&self) -> StrShard<'_> {
        StrShard {
            base: self,
            strings: Vec::new(),
            hashes: Vec::new(),
            slots: Vec::new(),
        }
    }

    /// Deterministically merge worker shard deltas back into the pool, in
    /// the order given (task order). Each shard string is re-interned, so
    /// cross-shard duplicates converge to one global code; the returned
    /// remaps translate each shard's local codes.
    pub fn absorb(&mut self, deltas: Vec<StrDelta>) -> Vec<StrRemap> {
        deltas
            .into_iter()
            .map(|delta| {
                debug_assert!(
                    delta.base_len as usize <= self.strings.len(),
                    "shard built over a different (larger) pool"
                );
                let map = delta.strings.iter().map(|s| self.intern(s)).collect();
                StrRemap {
                    base_len: delta.base_len,
                    map,
                }
            })
            .collect()
    }
}

impl InternStr for StrPool {
    fn intern_str(&mut self, s: &str) -> u32 {
        self.intern(s)
    }
}

/// A per-worker append arena over a frozen [`StrPool`]; see
/// [`StrPool::shard`].
#[derive(Debug)]
pub struct StrShard<'p> {
    base: &'p StrPool,
    strings: Vec<Box<str>>,
    hashes: Vec<u64>,
    slots: Vec<u32>,
}

impl StrShard<'_> {
    /// Intern a string, returning its (base- or shard-) code. The shard's
    /// own table stores *local* indices; codes are offset by the frozen
    /// base length.
    pub fn intern(&mut self, s: &str) -> u32 {
        let h = str_hash(s);
        if let Some(code) = table_lookup(
            &self.base.slots,
            &self.base.hashes,
            &self.base.strings,
            h,
            s,
        ) {
            return code;
        }
        let local = match table_lookup(&self.slots, &self.hashes, &self.strings, h, s) {
            Some(local) => local,
            None => table_insert(&mut self.slots, &mut self.hashes, &mut self.strings, h, s),
        };
        self.base.strings.len() as u32 + local
    }

    /// The string behind a base or shard-local code.
    pub fn get(&self, code: u32) -> &str {
        let i = code as usize;
        let b = self.base.strings.len();
        if i < b {
            &self.base.strings[i]
        } else {
            &self.strings[i - b]
        }
    }

    /// Detach the locally minted strings for [`StrPool::absorb`].
    pub fn into_delta(self) -> StrDelta {
        StrDelta {
            base_len: self.base.strings.len() as u32,
            strings: self.strings,
        }
    }
}

impl InternStr for StrShard<'_> {
    fn intern_str(&mut self, s: &str) -> u32 {
        self.intern(s)
    }
}

/// The detached local arena of one [`StrShard`].
#[derive(Debug)]
pub struct StrDelta {
    base_len: u32,
    strings: Vec<Box<str>>,
}

impl StrDelta {
    /// Number of locally minted strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// True when the shard minted nothing.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }
}

/// Translation of one shard's local string codes to global codes, as
/// produced by [`StrPool::absorb`].
#[derive(Clone, Debug)]
pub struct StrRemap {
    base_len: u32,
    map: Vec<u32>,
}

impl StrRemap {
    /// The global code for a (base or shard-local) code.
    #[inline]
    pub fn remap(&self, code: u32) -> u32 {
        if code < self.base_len {
            code
        } else {
            self.map[(code - self.base_len) as usize]
        }
    }

    /// True when the shard minted nothing (every code passes through).
    pub fn is_identity(&self) -> bool {
        self.map.is_empty()
    }
}

/// Typed contiguous storage for one column's values.
#[derive(Clone, Debug)]
pub enum ColumnData {
    /// A `null`-typed column: every cell is `NULL`, only the length matters.
    Null(usize),
    /// Booleans.
    Bool(Vec<bool>),
    /// 64-bit signed integers.
    Int(Vec<i64>),
    /// 64-bit floats (compared and hashed via their bits / `total_cmp`, the
    /// same semantics as [`F64`]).
    Float(Vec<f64>),
    /// Dictionary codes into the run's [`StrPool`].
    Str(Vec<u32>),
}

/// One column: typed data plus an optional validity mask (`false` marks a
/// `NULL` cell; `None` means no cell is null). The sentinel stored in the
/// data slot under a null cell is never observed — every accessor checks
/// validity first.
#[derive(Clone, Debug)]
pub struct ColumnVec {
    data: ColumnData,
    validity: Option<Vec<bool>>,
}

impl ColumnVec {
    /// An empty column for a declared schema type.
    pub fn new(ty: ValueType) -> Self {
        let data = match ty {
            ValueType::Null => ColumnData::Null(0),
            ValueType::Bool => ColumnData::Bool(Vec::new()),
            ValueType::Int => ColumnData::Int(Vec::new()),
            ValueType::Float => ColumnData::Float(Vec::new()),
            ValueType::Str => ColumnData::Str(Vec::new()),
        };
        ColumnVec {
            data,
            validity: None,
        }
    }

    /// A float column built from raw values (no nulls) — used e.g. for the
    /// appended `conf` column.
    pub fn from_floats(values: Vec<f64>) -> Self {
        ColumnVec {
            data: ColumnData::Float(values),
            validity: None,
        }
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        match &self.data {
            ColumnData::Null(n) => *n,
            ColumnData::Bool(v) => v.len(),
            ColumnData::Int(v) => v.len(),
            ColumnData::Float(v) => v.len(),
            ColumnData::Str(v) => v.len(),
        }
    }

    /// True when the column has no cells.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The typed data vector.
    pub fn data(&self) -> &ColumnData {
        &self.data
    }

    /// Whether the cell at `i` is `NULL`.
    #[inline]
    pub fn is_null(&self, i: usize) -> bool {
        matches!(self.data, ColumnData::Null(_)) || self.validity.as_ref().is_some_and(|v| !v[i])
    }

    /// Reserve capacity for `additional` more cells.
    pub fn reserve(&mut self, additional: usize) {
        match &mut self.data {
            ColumnData::Null(_) => {}
            ColumnData::Bool(v) => v.reserve(additional),
            ColumnData::Int(v) => v.reserve(additional),
            ColumnData::Float(v) => v.reserve(additional),
            ColumnData::Str(v) => v.reserve(additional),
        }
        if let Some(v) = &mut self.validity {
            v.reserve(additional);
        }
    }

    fn push_validity(&mut self, valid: bool) {
        let len_before = self.len() - 1; // data slot already pushed
        match (&mut self.validity, valid) {
            (Some(v), _) => v.push(valid),
            (None, true) => {}
            (None, false) => {
                let mut v = vec![true; len_before];
                v.push(false);
                self.validity = Some(v);
            }
        }
    }

    /// Append a value. The value must match the column's storage type or be
    /// `Null`; anything else is a caller bug (the row was schema-checked).
    /// Strings intern through any [`InternStr`] sink — the run-global
    /// [`StrPool`] or a worker's [`StrShard`].
    pub fn push<S: InternStr>(&mut self, v: &Value, strings: &mut S) {
        match (&mut self.data, v) {
            (ColumnData::Null(n), Value::Null) => {
                *n += 1;
                return; // pure-null columns carry no mask
            }
            (ColumnData::Bool(c), Value::Bool(b)) => c.push(*b),
            (ColumnData::Int(c), Value::Int(i)) => c.push(*i),
            (ColumnData::Float(c), Value::Float(f)) => c.push(f.get()),
            (ColumnData::Str(c), Value::Str(s)) => c.push(strings.intern_str(s)),
            (data, Value::Null) => {
                // A null in a typed column: push the sentinel, mark invalid.
                match data {
                    ColumnData::Bool(c) => c.push(false),
                    ColumnData::Int(c) => c.push(0),
                    ColumnData::Float(c) => c.push(0.0),
                    ColumnData::Str(c) => c.push(0),
                    ColumnData::Null(_) => unreachable!("handled above"),
                }
                self.push_validity(false);
                return;
            }
            (data, v) => {
                unreachable!("schema-checked value {v:?} does not match column storage {data:?}")
            }
        }
        self.push_validity(true);
    }

    /// The cell at `i` as an owned [`Value`] (allocates for strings).
    pub fn value(&self, i: usize, strings: &StrPool) -> Value {
        if self.is_null(i) {
            return Value::Null;
        }
        match &self.data {
            ColumnData::Null(_) => Value::Null,
            ColumnData::Bool(v) => Value::Bool(v[i]),
            ColumnData::Int(v) => Value::Int(v[i]),
            ColumnData::Float(v) => Value::Float(F64(v[i])),
            ColumnData::Str(v) => Value::str(strings.get(v[i])),
        }
    }

    /// Numeric view of the cell (`None` for nulls and non-numeric types) —
    /// the columnar counterpart of [`Value::as_f64`].
    pub fn cell_f64(&self, i: usize) -> Option<f64> {
        if self.is_null(i) {
            return None;
        }
        match &self.data {
            ColumnData::Int(v) => Some(v[i] as f64),
            ColumnData::Float(v) => Some(v[i]),
            _ => None,
        }
    }

    /// The [`Value`] variant rank of the cell (`Null < Bool < Int < Float <
    /// Str`), which is what the derived total order on `Value` compares
    /// first.
    #[inline]
    fn rank(&self, i: usize) -> u8 {
        if self.is_null(i) {
            return 0;
        }
        match &self.data {
            ColumnData::Null(_) => 0,
            ColumnData::Bool(_) => 1,
            ColumnData::Int(_) => 2,
            ColumnData::Float(_) => 3,
            ColumnData::Str(_) => 4,
        }
    }

    /// Whether cell `i` equals cell `j` of `other`, under [`Value`] equality
    /// (`NULL = NULL`; strings by code — both columns must encode into the
    /// same [`StrPool`], which one run's columns always do).
    #[inline]
    pub fn eq_cells(&self, i: usize, other: &ColumnVec, j: usize) -> bool {
        match (self.is_null(i), other.is_null(j)) {
            (true, true) => return true,
            (false, false) => {}
            _ => return false,
        }
        match (&self.data, &other.data) {
            (ColumnData::Bool(a), ColumnData::Bool(b)) => a[i] == b[j],
            (ColumnData::Int(a), ColumnData::Int(b)) => a[i] == b[j],
            (ColumnData::Float(a), ColumnData::Float(b)) => a[i].to_bits() == b[j].to_bits(),
            (ColumnData::Str(a), ColumnData::Str(b)) => a[i] == b[j],
            _ => false, // distinct non-null variants are never equal
        }
    }

    /// Compare cell `i` against cell `j` of `other` under the total [`Value`]
    /// order: variant rank first, then the typed comparison (`total_cmp` for
    /// floats, lexicographic via the pool for strings).
    pub fn cmp_cells(&self, i: usize, other: &ColumnVec, j: usize, strings: &StrPool) -> Ordering {
        let (ra, rb) = (self.rank(i), other.rank(j));
        if ra != rb {
            return ra.cmp(&rb);
        }
        if ra == 0 {
            return Ordering::Equal; // NULL = NULL
        }
        match (&self.data, &other.data) {
            (ColumnData::Bool(a), ColumnData::Bool(b)) => a[i].cmp(&b[j]),
            (ColumnData::Int(a), ColumnData::Int(b)) => a[i].cmp(&b[j]),
            (ColumnData::Float(a), ColumnData::Float(b)) => a[i].total_cmp(&b[j]),
            (ColumnData::Str(a), ColumnData::Str(b)) => {
                if a[i] == b[j] {
                    Ordering::Equal
                } else {
                    strings.get(a[i]).cmp(strings.get(b[j]))
                }
            }
            _ => unreachable!("equal ranks imply equal storage variants"),
        }
    }

    /// Compare cell `i` against a literal [`Value`], under the same total
    /// order as [`ColumnVec::cmp_cells`].
    pub fn cmp_cell_value(&self, i: usize, v: &Value, strings: &StrPool) -> Ordering {
        let rank_of = |v: &Value| match v {
            Value::Null => 0u8,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Float(_) => 3,
            Value::Str(_) => 4,
        };
        let (ra, rb) = (self.rank(i), rank_of(v));
        if ra != rb {
            return ra.cmp(&rb);
        }
        match (&self.data, v) {
            (_, Value::Null) => Ordering::Equal,
            (ColumnData::Bool(a), Value::Bool(b)) => a[i].cmp(b),
            (ColumnData::Int(a), Value::Int(b)) => a[i].cmp(b),
            (ColumnData::Float(a), Value::Float(b)) => a[i].total_cmp(&b.get()),
            (ColumnData::Str(a), Value::Str(b)) => strings.get(a[i]).cmp(b.as_str()),
            _ => unreachable!("equal ranks imply equal storage variants"),
        }
    }

    /// An order-preserving coarse `u64` key of the cell: if
    /// `sort_prefix(i) < sort_prefix(j)` then cell `i` orders strictly
    /// before cell `j` under the total [`Value`] order (the converse does
    /// not hold — equal prefixes must fall back to [`ColumnVec::cmp_cells`]).
    /// Sorting large permutations on `(prefix, row)` pairs turns almost
    /// every comparison into one integer compare.
    ///
    /// Layout: 3 high bits of variant rank, then 61 bits of value prefix
    /// (sign-flipped ints, `total_cmp`-ordered float bits, the first bytes
    /// of the string, truncated — truncation only loses *resolution*, never
    /// order).
    pub fn sort_prefix(&self, i: usize, strings: &StrPool) -> u64 {
        if self.is_null(i) {
            return 0;
        }
        let (rank, v) = match &self.data {
            ColumnData::Null(_) => (0u64, 0u64),
            ColumnData::Bool(b) => (1, b[i] as u64),
            ColumnData::Int(x) => (2, (x[i] as u64) ^ (1 << 63)),
            ColumnData::Float(f) => {
                let bits = f[i].to_bits();
                // The standard total_cmp-compatible monotone map.
                let ordered = if bits & (1 << 63) != 0 {
                    !bits
                } else {
                    bits | (1 << 63)
                };
                (3, ordered)
            }
            ColumnData::Str(c) => {
                let s = strings.get(c[i]).as_bytes();
                let mut buf = [0u8; 8];
                let take = s.len().min(8);
                buf[..take].copy_from_slice(&s[..take]);
                (4, u64::from_be_bytes(buf))
            }
        };
        (rank << 61) | (v >> 3)
    }

    /// Feed the cell at `i` into a hasher, consistently with
    /// [`ColumnVec::eq_cells`]: equal cells hash equally (nulls hash to a
    /// fixed tag; strings hash by code, valid within one pool).
    #[inline]
    pub fn hash_cell<H: Hasher>(&self, i: usize, state: &mut H) {
        if self.is_null(i) {
            state.write_u8(0);
            return;
        }
        match &self.data {
            ColumnData::Null(_) => state.write_u8(0),
            ColumnData::Bool(v) => v[i].hash(state),
            ColumnData::Int(v) => v[i].hash(state),
            ColumnData::Float(v) => v[i].to_bits().hash(state),
            ColumnData::Str(v) => v[i].hash(state),
        }
    }

    /// A new column holding the cells at `idx`, in that order (the
    /// vectorized shuffle joins and selection materialization are built on).
    pub fn gather(&self, idx: &[u32]) -> ColumnVec {
        let data = match &self.data {
            ColumnData::Null(_) => ColumnData::Null(idx.len()),
            ColumnData::Bool(v) => ColumnData::Bool(idx.iter().map(|&i| v[i as usize]).collect()),
            ColumnData::Int(v) => ColumnData::Int(idx.iter().map(|&i| v[i as usize]).collect()),
            ColumnData::Float(v) => ColumnData::Float(idx.iter().map(|&i| v[i as usize]).collect()),
            ColumnData::Str(v) => ColumnData::Str(idx.iter().map(|&i| v[i as usize]).collect()),
        };
        let validity = self
            .validity
            .as_ref()
            .map(|v| idx.iter().map(|&i| v[i as usize]).collect());
        ColumnVec { data, validity }
    }

    /// Append *all* cells of `src` to this column (the dense fast path of
    /// [`ColumnVec::extend_gather`]). Both columns must share the storage
    /// variant.
    pub fn extend_all(&mut self, src: &ColumnVec) {
        if self.validity.is_some() || src.validity.is_some() {
            let own_len = self.len();
            let mask = self.validity.get_or_insert_with(|| vec![true; own_len]);
            match &src.validity {
                Some(v) => mask.extend_from_slice(v),
                None => mask.extend(std::iter::repeat(true).take(src.len())),
            }
        }
        match (&mut self.data, &src.data) {
            (ColumnData::Null(n), ColumnData::Null(m)) => *n += m,
            (ColumnData::Bool(a), ColumnData::Bool(b)) => a.extend_from_slice(b),
            (ColumnData::Int(a), ColumnData::Int(b)) => a.extend_from_slice(b),
            (ColumnData::Float(a), ColumnData::Float(b)) => a.extend_from_slice(b),
            (ColumnData::Str(a), ColumnData::Str(b)) => a.extend_from_slice(b),
            (a, b) => unreachable!("union-compatible columns must share storage: {a:?} vs {b:?}"),
        }
    }

    /// Rewrite shard-local string codes to global ones after a
    /// [`StrPool::absorb`]. Non-string columns are untouched; null cells
    /// keep their unobservable sentinel.
    pub fn remap_str_codes(&mut self, remap: &StrRemap) {
        if remap.is_identity() {
            return;
        }
        if let ColumnData::Str(codes) = &mut self.data {
            match &self.validity {
                None => {
                    for c in codes.iter_mut() {
                        *c = remap.remap(*c);
                    }
                }
                Some(valid) => {
                    for (c, &ok) in codes.iter_mut().zip(valid) {
                        if ok {
                            *c = remap.remap(*c);
                        }
                    }
                }
            }
        }
    }

    /// Append the cells of `src` at `idx` (in that order) to this column.
    /// Both columns must share the storage variant (union-compatible
    /// schemas guarantee it).
    pub fn extend_gather(&mut self, src: &ColumnVec, idx: &[u32]) {
        // Growing a masked column (or appending masked cells to an unmasked
        // one) needs both masks materialized first.
        if self.validity.is_some() || src.validity.is_some() {
            let own_len = self.len();
            let mask = self.validity.get_or_insert_with(|| vec![true; own_len]);
            match &src.validity {
                Some(v) => mask.extend(idx.iter().map(|&i| v[i as usize])),
                None => mask.extend(std::iter::repeat(true).take(idx.len())),
            }
        }
        match (&mut self.data, &src.data) {
            (ColumnData::Null(n), ColumnData::Null(_)) => *n += idx.len(),
            (ColumnData::Bool(a), ColumnData::Bool(b)) => {
                a.extend(idx.iter().map(|&i| b[i as usize]))
            }
            (ColumnData::Int(a), ColumnData::Int(b)) => {
                a.extend(idx.iter().map(|&i| b[i as usize]))
            }
            (ColumnData::Float(a), ColumnData::Float(b)) => {
                a.extend(idx.iter().map(|&i| b[i as usize]))
            }
            (ColumnData::Str(a), ColumnData::Str(b)) => {
                a.extend(idx.iter().map(|&i| b[i as usize]))
            }
            (a, b) => unreachable!("union-compatible columns must share storage: {a:?} vs {b:?}"),
        }
    }
}

/// A read-only view of a column through an optional rowid indirection —
/// the composable unit of **late materialization**. `ids = None` views the
/// column as stored; `ids = Some(v)` views virtual row `i` as physical row
/// `v[i]`, which is exactly what a deferred join gather denotes. Every
/// accessor mirrors its [`ColumnVec`] counterpart so operators (predicate
/// sweeps, hash/dedup passes, join-key probes) can read through the view
/// without ever materializing the gather; the single fused gather happens
/// at a pipeline breaker, from the composed index, not from the view.
///
/// Lifetime rule: a view borrows both the column and the id vector, so it
/// is strictly a *within-operator* read handle — batches store the `Arc`'d
/// id vectors and hand out fresh views per sweep.
#[derive(Clone, Copy, Debug)]
pub struct ColView<'a> {
    col: &'a ColumnVec,
    ids: Option<&'a [u32]>,
}

impl<'a> ColView<'a> {
    /// View a column directly (no indirection).
    pub fn dense(col: &'a ColumnVec) -> ColView<'a> {
        ColView { col, ids: None }
    }

    /// View a column through a rowid vector: virtual row `i` reads physical
    /// row `ids[i]`.
    pub fn with_ids(col: &'a ColumnVec, ids: Option<&'a [u32]>) -> ColView<'a> {
        ColView { col, ids }
    }

    /// The underlying physical row of virtual row `i`.
    #[inline]
    pub fn phys(&self, i: usize) -> usize {
        match self.ids {
            Some(v) => v[i] as usize,
            None => i,
        }
    }

    /// The underlying column.
    pub fn col(&self) -> &'a ColumnVec {
        self.col
    }

    /// Whether the cell at virtual row `i` is `NULL`.
    #[inline]
    pub fn is_null(&self, i: usize) -> bool {
        self.col.is_null(self.phys(i))
    }

    /// Numeric view of the cell at virtual row `i`.
    #[inline]
    pub fn cell_f64(&self, i: usize) -> Option<f64> {
        self.col.cell_f64(self.phys(i))
    }

    /// The cell at virtual row `i` as an owned [`Value`].
    pub fn value(&self, i: usize, strings: &StrPool) -> Value {
        self.col.value(self.phys(i), strings)
    }

    /// Hash the cell at virtual row `i` (consistent with
    /// [`ColumnVec::hash_cell`]).
    #[inline]
    pub fn hash_cell<H: Hasher>(&self, i: usize, state: &mut H) {
        self.col.hash_cell(self.phys(i), state)
    }

    /// Whether the cell at virtual row `i` equals `other`'s cell at virtual
    /// row `j`, under [`Value`] equality.
    #[inline]
    pub fn eq_cells(&self, i: usize, other: &ColView<'_>, j: usize) -> bool {
        self.col.eq_cells(self.phys(i), other.col, other.phys(j))
    }

    /// Compare the cell at virtual row `i` against `other`'s cell at
    /// virtual row `j` under the total [`Value`] order.
    #[inline]
    pub fn cmp_cells(
        &self,
        i: usize,
        other: &ColView<'_>,
        j: usize,
        strings: &StrPool,
    ) -> Ordering {
        self.col
            .cmp_cells(self.phys(i), other.col, other.phys(j), strings)
    }

    /// Compare the cell at virtual row `i` against a literal [`Value`].
    #[inline]
    pub fn cmp_cell_value(&self, i: usize, v: &Value, strings: &StrPool) -> Ordering {
        self.col.cmp_cell_value(self.phys(i), v, strings)
    }
}

/// A u-relation in columnar form: the schema, one [`ColumnVec`] per
/// attribute, and the dense descriptor column as [`DescId`] handles into a
/// [`DescriptorPool`]. String cells are codes into a [`StrPool`]. Both pools
/// are supplied by the owner (one pool pair per executor run, or per
/// normalization pass) — the relation itself stays plain data.
#[derive(Clone, Debug)]
pub struct ColumnarURelation {
    schema: Schema,
    cols: Vec<ColumnVec>,
    descs: Vec<DescId>,
}

impl ColumnarURelation {
    /// An empty columnar relation over a schema.
    pub fn new(schema: Schema) -> Self {
        let cols = schema
            .columns()
            .iter()
            .map(|c| ColumnVec::new(c.ty))
            .collect();
        ColumnarURelation {
            schema,
            cols,
            descs: Vec::new(),
        }
    }

    /// Assemble from parts. The columns must agree with the schema's arity
    /// and all share the descriptor column's length.
    pub fn from_parts(schema: Schema, cols: Vec<ColumnVec>, descs: Vec<DescId>) -> Self {
        debug_assert_eq!(schema.arity(), cols.len(), "arity mismatch");
        debug_assert!(
            cols.iter().all(|c| c.len() == descs.len()),
            "ragged columns"
        );
        ColumnarURelation {
            schema,
            cols,
            descs,
        }
    }

    /// Convert a row-oriented u-relation, interning descriptors and strings
    /// into the supplied pools. Row order is preserved exactly.
    pub fn from_urelation(u: &URelation, pool: &mut DescriptorPool, strings: &mut StrPool) -> Self {
        let mut out = ColumnarURelation::new(u.schema().clone());
        for c in &mut out.cols {
            c.reserve(u.len());
        }
        out.descs.reserve(u.len());
        for (t, d) in u.rows() {
            for (c, v) in out.cols.iter_mut().zip(t.values()) {
                c.push(v, strings);
            }
            out.descs.push(pool.intern(d));
        }
        out
    }

    /// Parallel [`ColumnarURelation::from_urelation`]: rows are split into
    /// contiguous chunks, each chunk is converted by a worker into its own
    /// [`PoolShard`](crate::intern::PoolShard)/[`StrShard`] pair, the shards
    /// are absorbed **in chunk order**, and the chunks' handles/codes are
    /// remapped and concatenated — so the result (row order *and*, because
    /// absorption hash-conses, the canonicality of every descriptor handle)
    /// is identical to the sequential conversion up to handle numbering.
    pub fn from_urelation_with(
        u: &URelation,
        pool: &mut DescriptorPool,
        strings: &mut StrPool,
        par: &ParCfg,
        stats: &mut ParStats,
    ) -> Self {
        let workers = par.workers_for(u.len());
        if workers <= 1 {
            return ColumnarURelation::from_urelation(u, pool, strings);
        }
        let schema = u.schema().clone();
        let rows = u.rows();
        let ranges = chunk_ranges(rows.len(), workers);
        stats.note_stage(workers, ranges.len());
        let parts = run_tasks(workers, ranges.len(), |t| {
            let mut ps = pool.shard();
            let mut ss = strings.shard();
            let range = ranges[t].clone();
            let mut cols: Vec<ColumnVec> = schema
                .columns()
                .iter()
                .map(|c| ColumnVec::new(c.ty))
                .collect();
            let mut descs = Vec::with_capacity(range.len());
            for c in &mut cols {
                c.reserve(range.len());
            }
            for (tuple, d) in &rows[range] {
                for (c, v) in cols.iter_mut().zip(tuple.values()) {
                    c.push(v, &mut ss);
                }
                descs.push(ps.intern(d));
            }
            (cols, descs, ps.into_delta(), ss.into_delta())
        });

        let merge_start = std::time::Instant::now();
        let mut pool_deltas: Vec<ShardDelta> = Vec::with_capacity(parts.len());
        let mut str_deltas: Vec<StrDelta> = Vec::with_capacity(parts.len());
        let mut chunks: Vec<(Vec<ColumnVec>, Vec<DescId>)> = Vec::with_capacity(parts.len());
        for (cols, descs, pd, sd) in parts {
            pool_deltas.push(pd);
            str_deltas.push(sd);
            chunks.push((cols, descs));
        }
        let entries: u64 = pool_deltas.iter().map(|d| d.len() as u64).sum::<u64>()
            + str_deltas.iter().map(|d| d.len() as u64).sum::<u64>();
        let desc_remaps = pool.absorb(pool_deltas);
        let str_remaps = strings.absorb(str_deltas);

        let mut out = ColumnarURelation::new(schema);
        for c in &mut out.cols {
            c.reserve(rows.len());
        }
        out.descs.reserve(rows.len());
        for (i, (mut cols, descs)) in chunks.into_iter().enumerate() {
            for c in &mut cols {
                c.remap_str_codes(&str_remaps[i]);
            }
            for (oc, c) in out.cols.iter_mut().zip(&cols) {
                oc.extend_all(c);
            }
            if desc_remaps[i].is_identity() {
                out.descs.extend_from_slice(&descs);
            } else {
                out.descs
                    .extend(descs.iter().map(|&d| desc_remaps[i].remap(d)));
            }
        }
        stats.note_merge(entries, merge_start.elapsed().as_nanos() as u64);
        out
    }

    /// Convert back to the row-oriented form, resolving descriptor handles
    /// and string codes. Row order is preserved exactly, so
    /// `to_urelation(from_urelation(u)) == u`.
    pub fn to_urelation(&self, pool: &DescriptorPool, strings: &StrPool) -> URelation {
        let rows = (0..self.len())
            .map(|i| (self.tuple_at(i, strings), pool.to_descriptor(self.descs[i])))
            .collect();
        URelation::from_rows_unchecked(self.schema.clone(), rows)
    }

    /// Decompose into schema, value columns, and descriptor column (used by
    /// the executor to take ownership without cloning).
    pub fn into_parts(self) -> (Schema, Vec<ColumnVec>, Vec<DescId>) {
        (self.schema, self.cols, self.descs)
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The value columns, in schema order.
    pub fn columns(&self) -> &[ColumnVec] {
        &self.cols
    }

    /// One value column.
    pub fn column(&self, i: usize) -> &ColumnVec {
        &self.cols[i]
    }

    /// The descriptor column.
    pub fn descs(&self) -> &[DescId] {
        &self.descs
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.descs.len()
    }

    /// True when there are no rows.
    pub fn is_empty(&self) -> bool {
        self.descs.is_empty()
    }

    /// True when every row holds in all worlds. Handle-based: every interned
    /// tautology is [`DescId::TAUTOLOGY`] (conjunction can only shrink world
    /// sets, never produce a fresh tautology handle).
    pub fn is_certain(&self) -> bool {
        self.descs.iter().all(|d| d.is_tautology())
    }

    /// Materialize row `i` as an owned [`Tuple`].
    pub fn tuple_at(&self, i: usize, strings: &StrPool) -> Tuple {
        Tuple::new(self.cols.iter().map(|c| c.value(i, strings)).collect())
    }

    /// Compare two rows' value columns (not descriptors) under the
    /// lexicographic [`Tuple`] order.
    pub fn cmp_rows(&self, i: usize, j: usize, strings: &StrPool) -> Ordering {
        for c in &self.cols {
            let o = c.cmp_cells(i, c, j, strings);
            if o != Ordering::Equal {
                return o;
            }
        }
        Ordering::Equal
    }

    /// Whether two rows agree on every value column.
    pub fn rows_eq(&self, i: usize, j: usize) -> bool {
        self.cols.iter().all(|c| c.eq_cells(i, c, j))
    }

    /// A new relation holding the rows at `idx` in that order, with a
    /// replacement descriptor column (`descs.len()` must equal `idx.len()`).
    pub fn gather_with_descs(&self, idx: &[u32], descs: Vec<DescId>) -> Self {
        debug_assert_eq!(idx.len(), descs.len());
        ColumnarURelation {
            schema: self.schema.clone(),
            cols: self.cols.iter().map(|c| c.gather(idx)).collect(),
            descs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptor::{ComponentId, WsDescriptor};
    use crate::value::ValueType;

    fn mixed_relation() -> URelation {
        let schema = Schema::of(&[
            ("i", ValueType::Int),
            ("f", ValueType::Float),
            ("s", ValueType::Str),
            ("b", ValueType::Bool),
        ])
        .unwrap();
        let mut u = URelation::new(schema);
        u.push(
            Tuple::new(vec![1.into(), Value::float(1.5), "x".into(), true.into()]),
            WsDescriptor::single(ComponentId(0), 1),
        )
        .unwrap();
        u.push(
            Tuple::new(vec![Value::Null, Value::Null, "x".into(), false.into()]),
            WsDescriptor::tautology(),
        )
        .unwrap();
        u.push(
            Tuple::new(vec![2.into(), Value::float(-0.0), Value::Null, Value::Null]),
            WsDescriptor::single(ComponentId(1), 0),
        )
        .unwrap();
        u
    }

    #[test]
    fn roundtrip_preserves_rows_exactly() {
        let u = mixed_relation();
        let mut pool = DescriptorPool::new();
        let mut strings = StrPool::new();
        let c = ColumnarURelation::from_urelation(&u, &mut pool, &mut strings);
        assert_eq!(c.len(), u.len());
        assert_eq!(c.to_urelation(&pool, &strings), u);
    }

    #[test]
    fn cell_comparisons_mirror_value_order() {
        let u = mixed_relation();
        let mut pool = DescriptorPool::new();
        let mut strings = StrPool::new();
        let c = ColumnarURelation::from_urelation(&u, &mut pool, &mut strings);
        for i in 0..u.len() {
            for j in 0..u.len() {
                let (ti, tj) = (&u.rows()[i].0, &u.rows()[j].0);
                assert_eq!(c.cmp_rows(i, j, &strings), ti.cmp(tj), "rows {i},{j}");
                assert_eq!(c.rows_eq(i, j), ti == tj);
                for (k, col) in c.columns().iter().enumerate() {
                    assert_eq!(
                        col.cmp_cell_value(i, tj.get(k), &strings),
                        ti.get(k).cmp(tj.get(k)),
                        "cell ({i},{k}) vs value ({j},{k})"
                    );
                }
            }
        }
    }

    #[test]
    fn gather_and_extend_respect_validity() {
        let u = mixed_relation();
        let mut pool = DescriptorPool::new();
        let mut strings = StrPool::new();
        let c = ColumnarURelation::from_urelation(&u, &mut pool, &mut strings);
        let g = c.gather_with_descs(&[2, 0], vec![c.descs()[2], c.descs()[0]]);
        assert_eq!(g.tuple_at(0, &strings), u.rows()[2].0);
        assert_eq!(g.tuple_at(1, &strings), u.rows()[0].0);

        let mut col = c.column(0).clone();
        col.extend_gather(c.column(0), &[1]);
        assert_eq!(col.len(), 4);
        assert!(col.is_null(3));
        assert_eq!(col.value(3, &strings), Value::Null);
    }

    #[test]
    fn parallel_conversion_matches_sequential() {
        // Enough rows (with duplicated strings across chunks) to exercise
        // shard creation, cross-shard convergence, and remapping.
        let schema = Schema::of(&[("s", ValueType::Str), ("i", ValueType::Int)]).unwrap();
        let mut u = URelation::new(schema);
        for i in 0..257i64 {
            let (t, d) = (
                Tuple::new(vec![Value::str(format!("s{}", i % 7)), i.into()]),
                WsDescriptor::single(ComponentId((i % 5) as u32), 1),
            );
            u.push(t, d).unwrap();
        }
        u.push(
            Tuple::new(vec![Value::Null, Value::Null]),
            WsDescriptor::tautology(),
        )
        .unwrap();

        let mut pool_seq = DescriptorPool::new();
        let mut strings_seq = StrPool::new();
        let seq = ColumnarURelation::from_urelation(&u, &mut pool_seq, &mut strings_seq);

        let mut pool_par = DescriptorPool::new();
        let mut strings_par = StrPool::new();
        let par = crate::parallel::ParCfg {
            threads: 4,
            min_rows: 1,
        };
        let mut stats = crate::parallel::ParStats::default();
        let got = ColumnarURelation::from_urelation_with(
            &u,
            &mut pool_par,
            &mut strings_par,
            &par,
            &mut stats,
        );
        assert_eq!(got.len(), seq.len());
        // Row-oriented round trips agree exactly (the observable contract).
        assert_eq!(
            got.to_urelation(&pool_par, &strings_par),
            seq.to_urelation(&pool_seq, &strings_seq)
        );
        // Handles stay canonical: re-interning an existing descriptor must
        // not mint a new entry.
        let before = pool_par.len();
        pool_par.intern(&WsDescriptor::single(ComponentId(3), 1));
        assert_eq!(pool_par.len(), before);
        assert!(stats.workers_used > 1 && stats.morsels > 0);
    }

    #[test]
    fn str_shard_roundtrip() {
        let mut pool = StrPool::new();
        let base_a = pool.intern("a");
        let mut s1 = pool.shard();
        let mut s2 = pool.shard();
        assert_eq!(s1.intern("a"), base_a);
        let x1 = s1.intern("x");
        let x2 = s2.intern("x");
        let y2 = s2.intern("y");
        assert_eq!(s1.get(x1), "x");
        assert_eq!(s2.get(y2), "y");
        let remaps = pool.absorb(vec![s1.into_delta(), s2.into_delta()]);
        assert_eq!(remaps[0].remap(x1), remaps[1].remap(x2));
        assert_eq!(pool.get(remaps[1].remap(y2)), "y");
        assert_eq!(remaps[0].remap(base_a), base_a);
        // Re-interning after absorb stays canonical.
        assert_eq!(pool.intern("x"), remaps[0].remap(x1));
    }

    #[test]
    fn str_codes_share_one_pool() {
        let mut strings = StrPool::new();
        assert_eq!(strings.intern("a"), strings.intern("a"));
        assert_ne!(strings.intern("a"), strings.intern("b"));
        let b = strings.intern("b");
        assert_eq!(strings.get(b), "b");
        assert_eq!(strings.len(), 2);
    }
}
