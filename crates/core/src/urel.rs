//! U-relations: relations whose tuples carry world-set descriptors.

use std::collections::BTreeMap;
use std::fmt;

use crate::component::WorldPick;
use crate::descriptor::WsDescriptor;
use crate::error::MayError;
use crate::rel::{Relation, Tuple};
use crate::schema::Schema;

/// An uncertain relation: each row is a tuple plus the world-set descriptor
/// of the worlds in which the tuple appears.
///
/// The same tuple may occur in several rows with different descriptors; its
/// world set is then the *disjunction* of the descriptors. Instantiating a
/// u-relation in a world yields a plain set-semantics [`Relation`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct URelation {
    schema: Schema,
    rows: Vec<(Tuple, WsDescriptor)>,
}

impl URelation {
    /// An empty u-relation over the given schema.
    pub fn new(schema: Schema) -> Self {
        URelation {
            schema,
            rows: Vec::new(),
        }
    }

    /// Lift a certain relation: every tuple holds in all worlds.
    pub fn from_certain(r: &Relation) -> Self {
        URelation {
            schema: r.schema().clone(),
            rows: r
                .tuples()
                .map(|t| (t.clone(), WsDescriptor::tautology()))
                .collect(),
        }
    }

    /// Append a row, checking the tuple against the schema.
    pub fn push(&mut self, tuple: Tuple, desc: WsDescriptor) -> Result<(), MayError> {
        self.schema.check(&tuple)?;
        self.rows.push((tuple, desc));
        Ok(())
    }

    /// Append a row *without* re-checking the tuple against the schema.
    ///
    /// The bulk path for hot loops whose tuples are schema-correct by
    /// construction — projections of checked tuples, join combinations of
    /// checked tuples, or rows taken from a relation with the same schema.
    /// The caller is responsible for that invariant; it is re-verified in
    /// debug builds only.
    pub fn push_unchecked(&mut self, tuple: Tuple, desc: WsDescriptor) {
        debug_assert!(
            self.schema.check(&tuple).is_ok(),
            "push_unchecked received a tuple that violates the schema"
        );
        self.rows.push((tuple, desc));
    }

    /// Build a u-relation from rows that are schema-correct by construction
    /// (see [`URelation::push_unchecked`]); re-verified in debug builds only.
    pub fn from_rows_unchecked(schema: Schema, rows: Vec<(Tuple, WsDescriptor)>) -> Self {
        debug_assert!(
            rows.iter().all(|(t, _)| schema.check(t).is_ok()),
            "from_rows_unchecked received a tuple that violates the schema"
        );
        URelation { schema, rows }
    }

    /// Decompose into schema and rows (used by the zero-copy executor to
    /// move extension-operator results without cloning).
    pub fn into_parts(self) -> (Schema, Vec<(Tuple, WsDescriptor)>) {
        (self.schema, self.rows)
    }

    /// Reserve capacity for at least `additional` more rows (e.g. before a
    /// bulk union).
    pub fn reserve(&mut self, additional: usize) {
        self.rows.reserve(additional);
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The annotated rows.
    pub fn rows(&self) -> &[(Tuple, WsDescriptor)] {
        &self.rows
    }

    /// Number of annotated rows (not distinct tuples).
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// True when every row holds in all worlds.
    pub fn is_certain(&self) -> bool {
        self.rows.iter().all(|(_, d)| d.is_tautology())
    }

    /// Sort rows canonically and drop exact duplicates.
    pub fn dedup(&mut self) {
        self.rows.sort_unstable();
        self.rows.dedup();
    }

    /// Group the descriptors of each distinct tuple (the tuple's world set is
    /// their disjunction).
    pub fn grouped(&self) -> BTreeMap<&Tuple, Vec<&WsDescriptor>> {
        let mut m: BTreeMap<&Tuple, Vec<&WsDescriptor>> = BTreeMap::new();
        for (t, d) in &self.rows {
            m.entry(t).or_default().push(d);
        }
        m
    }

    /// The plain relation this u-relation denotes in the world picked by
    /// `pick`.
    pub fn instantiate(&self, pick: &WorldPick) -> Relation {
        let mut r = Relation::new(self.schema.clone());
        for (t, d) in &self.rows {
            if d.satisfied_by(pick) {
                // Tuples were schema-checked on the way in.
                let _ = r.insert(t.clone());
            }
        }
        r
    }

    /// Replace the rows wholesale (used by normalization).
    pub(crate) fn set_rows(&mut self, rows: Vec<(Tuple, WsDescriptor)>) {
        self.rows = rows;
    }

    /// Move the rows out (used by normalization).
    pub(crate) fn take_rows(&mut self) -> Vec<(Tuple, WsDescriptor)> {
        std::mem::take(&mut self.rows)
    }
}

impl fmt::Display for URelation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} | ws-descriptor", self.schema.names().join(" | "))?;
        for (t, d) in &self.rows {
            writeln!(f, "{t} | {d}")?;
        }
        Ok(())
    }
}
