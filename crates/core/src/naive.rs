//! Plain single-world implementations of the positive relational algebra.
//!
//! These operate on fully instantiated [`Relation`]s and are deliberately
//! simple (nested loops, no indexes): combined with
//! [`crate::world::WorldSet::enumerate`] they form the enumerate-all-worlds
//! oracle that the compact WSD-level executor in `maybms-algebra` is
//! differentially tested against.

use crate::error::MayError;
use crate::rel::{Relation, Tuple};

/// Selection with an arbitrary predicate.
pub fn select(r: &Relation, pred: impl Fn(&Tuple) -> bool) -> Relation {
    let mut out = Relation::new(r.schema().clone());
    for t in r.tuples() {
        if pred(t) {
            out.insert(t.clone())
                .expect("tuple already checked against schema");
        }
    }
    out
}

/// Projection onto named columns (set semantics: duplicates collapse).
pub fn project(r: &Relation, columns: &[String]) -> Result<Relation, MayError> {
    let (schema, idx) = r.schema().project(columns)?;
    let mut out = Relation::new(schema);
    for t in r.tuples() {
        out.insert(t.project(&idx))?;
    }
    Ok(out)
}

/// Natural join: match on all columns shared by name.
pub fn natural_join(l: &Relation, r: &Relation) -> Result<Relation, MayError> {
    let jp = l.schema().natural_join(r.schema())?;
    let mut out = Relation::new(jp.schema.clone());
    for lt in l.tuples() {
        for rt in r.tuples() {
            if jp.left_key(lt) == jp.right_key(rt) {
                out.insert(jp.combine(lt, rt))?;
            }
        }
    }
    Ok(out)
}

/// Set union of two union-compatible relations.
pub fn union(l: &Relation, r: &Relation) -> Result<Relation, MayError> {
    l.schema().union_compatible(r.schema())?;
    let mut out = l.clone();
    for t in r.tuples() {
        out.insert(t.clone())?;
    }
    Ok(out)
}

/// Rename columns via `(old, new)` pairs.
pub fn rename(r: &Relation, renames: &[(String, String)]) -> Result<Relation, MayError> {
    let schema = r.schema().rename(renames)?;
    Relation::from_rows(schema, r.tuples().cloned().collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::value::ValueType;

    fn rel(names: &[&str], rows: &[&[i64]]) -> Relation {
        let schema = Schema::of(
            &names
                .iter()
                .map(|n| (*n, ValueType::Int))
                .collect::<Vec<_>>(),
        )
        .unwrap();
        Relation::from_rows(
            schema,
            rows.iter()
                .map(|r| Tuple::new(r.iter().map(|&v| v.into()).collect()))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn join_project_union_roundtrip() {
        let r = rel(&["a", "b"], &[&[1, 2], &[3, 4]]);
        let s = rel(&["b", "c"], &[&[2, 5], &[4, 6], &[9, 9]]);
        let j = natural_join(&r, &s).unwrap();
        assert_eq!(j, rel(&["a", "b", "c"], &[&[1, 2, 5], &[3, 4, 6]]));
        let p = project(&j, &["a".into()]).unwrap();
        assert_eq!(p, rel(&["a"], &[&[1], &[3]]));
        let u = union(&p, &rel(&["a"], &[&[1], &[7]])).unwrap();
        assert_eq!(u, rel(&["a"], &[&[1], &[3], &[7]]));
    }
}
