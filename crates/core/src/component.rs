//! Components: the independent factors of a world-set decomposition.

use std::borrow::Borrow;
use std::collections::BTreeSet;
use std::ops::ControlFlow;

use crate::descriptor::{merge_sorted_terms, ComponentId, WsDescriptor};
use crate::error::MayError;
use crate::fxhash::FxHashMap;

/// One independent component of a world-set decomposition: a finite
/// probability distribution over `alternatives()` local worlds.
///
/// In the paper's component tables, each component is a small relation whose
/// rows (local worlds) assign values to a set of tuple fields and carry a
/// probability. Here the value assignments live in the u-relations (tuples
/// annotated with descriptors referencing the component), and the component
/// itself keeps only the probability vector — the two views are equivalent
/// and this one keeps the algebra simple. See `ARCHITECTURE.md`.
#[derive(Clone, Debug, PartialEq)]
pub struct Component {
    probs: Vec<f64>,
}

impl Component {
    /// Build a component from positive weights; probabilities are the
    /// normalized weights.
    pub fn from_weights(weights: &[f64]) -> Result<Self, MayError> {
        if weights.is_empty() {
            return Err(MayError::InvalidComponent("no alternatives".into()));
        }
        if weights.len() > u16::MAX as usize {
            return Err(MayError::InvalidComponent(format!(
                "{} alternatives exceeds the u16 descriptor limit",
                weights.len()
            )));
        }
        let mut sum = 0.0;
        for &w in weights {
            if !w.is_finite() || w <= 0.0 {
                return Err(MayError::InvalidComponent(format!(
                    "weight {w} is not positive"
                )));
            }
            sum += w;
        }
        Ok(Component {
            probs: weights.iter().map(|w| w / sum).collect(),
        })
    }

    /// A uniform distribution over `n` alternatives.
    pub fn uniform(n: usize) -> Result<Self, MayError> {
        Component::from_weights(&vec![1.0; n])
    }

    /// Number of alternatives (local worlds).
    pub fn alternatives(&self) -> u16 {
        self.probs.len() as u16
    }

    /// Probability of one alternative.
    pub fn prob(&self, alternative: u16) -> f64 {
        self.probs[alternative as usize]
    }

    /// Map a uniform draw `u ∈ (0, 1]` to an alternative by walking the
    /// cumulative distribution. Used by the sampling confidence solver; with
    /// a deterministic `u` source the chosen alternative is deterministic.
    pub fn sample(&self, u: f64) -> u16 {
        let mut acc = 0.0;
        for (i, &p) in self.probs.iter().enumerate() {
            acc += p;
            if u <= acc {
                return i as u16;
            }
        }
        // Float rounding can leave the accumulated sum a hair below 1.0.
        (self.probs.len() - 1) as u16
    }
}

/// The set of all components of an uncertain database. The represented world
/// set is the product of the components' local worlds: one world per
/// combination of alternatives.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ComponentSet {
    comps: Vec<Component>,
}

/// One fully decomposed world: a choice of alternative for every component.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WorldPick {
    choices: Vec<u16>,
}

impl WorldPick {
    /// The alternative chosen for a component.
    pub fn choice(&self, c: ComponentId) -> u16 {
        self.choices[c.0 as usize]
    }
}

impl ComponentSet {
    /// An empty component set (exactly one world).
    pub fn new() -> Self {
        ComponentSet::default()
    }

    /// Register a component and return its id.
    pub fn add(&mut self, c: Component) -> ComponentId {
        let id = ComponentId(self.comps.len() as u32);
        self.comps.push(c);
        id
    }

    /// The component with the given id.
    pub fn get(&self, id: ComponentId) -> &Component {
        &self.comps[id.0 as usize]
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.comps.len()
    }

    /// True when there are no components (a single certain world).
    pub fn is_empty(&self) -> bool {
        self.comps.is_empty()
    }

    /// Iterate over `(id, component)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ComponentId, &Component)> {
        self.comps
            .iter()
            .enumerate()
            .map(|(i, c)| (ComponentId(i as u32), c))
    }

    /// Total number of represented worlds (the product of alternative
    /// counts), or `None` if the product overflows `u128`.
    pub fn world_count(&self) -> Option<u128> {
        let mut n: u128 = 1;
        for c in &self.comps {
            n = n.checked_mul(c.alternatives() as u128)?;
        }
        Some(n)
    }

    /// Enumerate every world as a [`WorldPick`], in lexicographic order.
    /// This is exponential by design — it is the naive oracle the compact
    /// evaluators are tested against. `limit` guards against blow-up.
    pub fn enumerate(&self, limit: u128) -> Result<Vec<WorldPick>, MayError> {
        let count = self.world_count().ok_or_else(|| {
            MayError::Unsupported("world count overflows u128; enumeration is impossible".into())
        })?;
        if count > limit {
            return Err(MayError::TooManyWorlds { count, limit });
        }
        let mut out = Vec::with_capacity(count as usize);
        let mut choices = vec![0u16; self.comps.len()];
        loop {
            out.push(WorldPick {
                choices: choices.clone(),
            });
            // Advance the odometer; the last component varies fastest.
            let mut i = self.comps.len();
            loop {
                if i == 0 {
                    return Ok(out);
                }
                i -= 1;
                choices[i] += 1;
                if choices[i] < self.comps[i].alternatives() {
                    break;
                }
                choices[i] = 0;
            }
        }
    }

    /// Probability of one world (product of its independent choices).
    pub fn prob_of_pick(&self, pick: &WorldPick) -> f64 {
        self.comps
            .iter()
            .zip(&pick.choices)
            .map(|(c, &a)| c.prob(a))
            .product()
    }

    /// Check that a descriptor only references components of this set, with
    /// in-range alternatives. This is the invariant every stored u-relation
    /// must satisfy (enforced by `WorldSet::insert`); evaluation preserves
    /// it because conjunction never invents terms.
    pub fn validate_descriptor(&self, d: &WsDescriptor) -> Result<(), MayError> {
        for &(c, a) in d.terms() {
            if c.0 as usize >= self.comps.len() {
                return Err(MayError::InvalidDescriptor(format!(
                    "{c} does not exist (only {} components)",
                    self.comps.len()
                )));
            }
            if a >= self.get(c).alternatives() {
                return Err(MayError::InvalidDescriptor(format!(
                    "{c}={a} is out of range ({c} has {} alternatives)",
                    self.get(c).alternatives()
                )));
            }
        }
        Ok(())
    }

    /// Probability of the world set denoted by a single descriptor: the
    /// product of the probabilities of its assignments (components are
    /// independent).
    pub fn prob_of_descriptor(&self, d: &WsDescriptor) -> f64 {
        d.terms()
            .iter()
            .map(|&(c, a)| self.get(c).prob(a))
            .product()
    }

    /// Exact probability of a disjunction of descriptors, *factorized*.
    ///
    /// The descriptors are partitioned into connected groups over shared
    /// components (two descriptors are connected when they mention a common
    /// component). Groups touch disjoint component sets, so by independence
    ///
    /// ```text
    /// P(d₁ ∨ … ∨ dₙ) = 1 − Π over groups g of (1 − P(g))
    /// ```
    ///
    /// and each group is solved exactly by whichever of two exact methods is
    /// cheaper for it: inclusion–exclusion over the group's `k` descriptors
    /// (`2ᵏ − 1` conjunction probabilities) or enumeration of the group's
    /// component assignments (`Π` alternative counts). The overall cost is
    /// exponential only in the largest *connected* group, never in the total
    /// number of relevant components — two disjoint groups of 10 components
    /// cost `2·cost(10)`, not `cost(20)`. Exact `conf` remains #P-hard in
    /// general; [`ComponentSet::prob_of_dnf_enumerate`] keeps the
    /// unfactorized brute force as the differential-testing oracle.
    pub fn prob_of_dnf<D: Borrow<WsDescriptor>>(&self, descs: &[D]) -> f64 {
        if descs.iter().any(|d| d.borrow().is_tautology()) {
            return 1.0;
        }
        let refs: Vec<&WsDescriptor> = descs.iter().map(Borrow::borrow).collect();
        if refs.is_empty() {
            return 0.0;
        }
        let mut prob_none = 1.0;
        for group in connected_groups(&refs) {
            prob_none *= 1.0 - self.prob_of_group(&group);
            if prob_none == 0.0 {
                break;
            }
        }
        1.0 - prob_none
    }

    /// Exact probability of a disjunction of descriptors by brute-force
    /// enumeration of every assignment of every relevant component — the
    /// original unfactorized algorithm, kept as the oracle that the
    /// factorized [`ComponentSet::prob_of_dnf`] is tested against.
    /// Exponential in the total number of relevant components.
    pub fn prob_of_dnf_enumerate<D: Borrow<WsDescriptor>>(&self, descs: &[D]) -> f64 {
        if descs.iter().any(|d| d.borrow().is_tautology()) {
            return 1.0;
        }
        let refs: Vec<&WsDescriptor> = descs.iter().map(Borrow::borrow).collect();
        let mut total = 0.0;
        self.for_each_relevant_assignment(&refs, |assignment, prob| {
            if refs.iter().any(|d| assignment_satisfies(assignment, d)) {
                total += prob;
            }
            ControlFlow::Continue(())
        });
        total
    }

    /// Whether the disjunction of `descs` covers *all* worlds — i.e. a tuple
    /// with these descriptors is certain. Purely possibilistic: probabilities
    /// are ignored, every combination of alternatives counts.
    ///
    /// Factorized like [`ComponentSet::prob_of_dnf`]: a disjunction over
    /// disjoint component groups covers all worlds iff *some single group*
    /// covers every assignment of its own components (if every group has a
    /// falsifying partial assignment, their union falsifies the whole
    /// disjunction). Each group check stops at the first uncovered
    /// assignment, so the common "not certain" case is cheap.
    pub fn covers_all_worlds<D: Borrow<WsDescriptor>>(&self, descs: &[D]) -> bool {
        if descs.iter().any(|d| d.borrow().is_tautology()) {
            return true;
        }
        let refs: Vec<&WsDescriptor> = descs.iter().map(Borrow::borrow).collect();
        if refs.is_empty() {
            return false;
        }
        connected_groups(&refs)
            .iter()
            .any(|group| self.group_covers_all(group))
    }

    /// Exact probability that at least one descriptor of one connected group
    /// holds, by the cheaper of inclusion–exclusion and assignment
    /// enumeration (both exact). Correct for any descriptor set (both
    /// methods are exact regardless of connectivity); connectivity only
    /// matters for cost, which is what [`ComponentSet::group_exact_cost`]
    /// bounds.
    pub fn prob_of_group(&self, group: &[&WsDescriptor]) -> f64 {
        let enum_cost = self.assignment_count(group);
        let ie_cost = if group.len() < 64 {
            1u128 << group.len()
        } else {
            u128::MAX
        };
        // The group-size check must stand on its own: when both costs
        // saturate (≥ 64 descriptors over enough components), the tie must
        // fall to enumeration — inclusion–exclusion's u64 subset masks
        // cannot represent ≥ 64 descriptors.
        if group.len() < 64 && ie_cost <= enum_cost {
            self.prob_by_inclusion_exclusion(group)
        } else {
            let mut total = 0.0;
            self.for_each_relevant_assignment(group, |assignment, prob| {
                if group.iter().any(|d| assignment_satisfies(assignment, d)) {
                    total += prob;
                }
                ControlFlow::Continue(())
            });
            total
        }
    }

    /// Cost bound for solving one connected group *exactly*: the cheaper of
    /// the two exact methods [`ComponentSet::prob_of_group`] chooses between,
    /// i.e. `min(2^descriptors, Π alternative counts)` (saturating; the
    /// inclusion–exclusion side saturates at `u128::MAX` for ≥ 64
    /// descriptors, whose subset masks are unrepresentable). The sampling
    /// confidence solver compares this bound against its cutover threshold:
    /// groups under the threshold keep the exact factorized path, groups
    /// over it are estimated.
    pub fn group_exact_cost(&self, group: &[&WsDescriptor]) -> u128 {
        let ie_cost = if group.len() < 64 {
            1u128 << group.len()
        } else {
            u128::MAX
        };
        ie_cost.min(self.assignment_count(group))
    }

    /// Number of assignments [`Self::for_each_relevant_assignment`] would
    /// visit for these descriptors (saturating).
    fn assignment_count(&self, descs: &[&WsDescriptor]) -> u128 {
        let vars: BTreeSet<ComponentId> = descs
            .iter()
            .flat_map(|d| d.terms().iter().map(|&(c, _)| c))
            .collect();
        let mut n: u128 = 1;
        for c in vars {
            n = n.saturating_mul(self.get(c).alternatives() as u128);
        }
        n
    }

    /// Inclusion–exclusion over the descriptors of one group:
    /// `P(∨dᵢ) = Σ over non-empty S of (−1)^{|S|+1} · P(∧_{i∈S} dᵢ)`, where
    /// each conjunction's probability is the product of its assignments'
    /// probabilities (0 when the conjunction is inconsistent). `2ᵏ − 1`
    /// subset merges, no allocation beyond two reused term buffers.
    fn prob_by_inclusion_exclusion(&self, descs: &[&WsDescriptor]) -> f64 {
        debug_assert!(descs.len() < 64, "subset masks are u64");
        let mut total = 0.0;
        let mut acc: Vec<(ComponentId, u16)> = Vec::new();
        let mut tmp: Vec<(ComponentId, u16)> = Vec::new();
        for mask in 1u64..(1u64 << descs.len()) {
            acc.clear();
            let mut consistent = true;
            let mut first = true;
            let mut bits = mask;
            while bits != 0 {
                let i = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                if first {
                    acc.extend_from_slice(descs[i].terms());
                    first = false;
                    continue;
                }
                tmp.clear();
                if !merge_sorted_terms(&acc, descs[i].terms(), &mut tmp) {
                    consistent = false;
                    break;
                }
                std::mem::swap(&mut acc, &mut tmp);
            }
            if !consistent {
                continue;
            }
            let p: f64 = acc.iter().map(|&(c, a)| self.get(c).prob(a)).product();
            if mask.count_ones() % 2 == 1 {
                total += p;
            } else {
                total -= p;
            }
        }
        total
    }

    /// Whether one connected group's descriptors cover every assignment of
    /// the group's components (early-exits on the first gap).
    fn group_covers_all(&self, group: &[&WsDescriptor]) -> bool {
        let mut all = true;
        self.for_each_relevant_assignment(group, |assignment, _| {
            if group.iter().any(|d| assignment_satisfies(assignment, d)) {
                ControlFlow::Continue(())
            } else {
                all = false;
                ControlFlow::Break(())
            }
        });
        all
    }

    /// Drive `f` over every combination of alternatives of the components
    /// mentioned in `descs`, with the combination's probability, until
    /// exhausted or `f` breaks.
    fn for_each_relevant_assignment(
        &self,
        descs: &[&WsDescriptor],
        mut f: impl FnMut(&[(ComponentId, u16)], f64) -> ControlFlow<()>,
    ) {
        let vars: Vec<ComponentId> = descs
            .iter()
            .flat_map(|d| d.terms().iter().map(|&(c, _)| c))
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect();
        if vars.is_empty() {
            let _ = f(&[], 1.0);
            return;
        }
        let mut assignment: Vec<(ComponentId, u16)> = vars.iter().map(|&c| (c, 0)).collect();
        loop {
            let prob: f64 = assignment
                .iter()
                .map(|&(c, a)| self.get(c).prob(a))
                .product();
            if f(&assignment, prob).is_break() {
                return;
            }
            let mut i = vars.len();
            loop {
                if i == 0 {
                    return;
                }
                i -= 1;
                assignment[i].1 += 1;
                if assignment[i].1 < self.get(vars[i]).alternatives() {
                    break;
                }
                assignment[i].1 = 0;
            }
        }
    }
}

/// Partition descriptors into connected groups: two descriptors share a
/// group iff they are linked by a chain of shared components. Union-find
/// over descriptor indices, linear in the total number of terms. Groups are
/// returned in first-occurrence order of their earliest descriptor, and
/// each group lists its descriptors in input order, so both the float
/// combination order and any content hashing downstream are deterministic
/// across processes and thread counts. Public because the sampling
/// confidence solver in `maybms-ql` partitions the same way and then
/// decides exact-vs-sample per group.
pub fn connected_groups<'d>(descs: &[&'d WsDescriptor]) -> Vec<Vec<&'d WsDescriptor>> {
    let mut parent: Vec<usize> = (0..descs.len()).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]]; // path halving
            x = parent[x];
        }
        x
    }
    let mut owner: FxHashMap<ComponentId, usize> = FxHashMap::default();
    for (i, d) in descs.iter().enumerate() {
        for &(c, _) in d.terms() {
            match owner.get(&c) {
                Some(&j) => {
                    let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                    parent[ri] = rj;
                }
                None => {
                    owner.insert(c, i);
                }
            }
        }
    }
    let mut slot_of_root: FxHashMap<usize, usize> = FxHashMap::default();
    let mut groups: Vec<Vec<&WsDescriptor>> = Vec::new();
    for (i, d) in descs.iter().enumerate() {
        let root = find(&mut parent, i);
        let slot = *slot_of_root.entry(root).or_insert_with(|| {
            groups.push(Vec::new());
            groups.len() - 1
        });
        groups[slot].push(d);
    }
    groups
}

/// Counters of one confidence-solver run (exact or sampling), surfaced
/// through `ExecStats` and the REPL's `\stats` meta-command. Defined here —
/// next to the group partition both solver paths share — so the executor
/// crate can carry the counters without depending on `maybms-ql`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ConfStats {
    /// Connected descriptor groups solved by the exact factorized path.
    pub exact_groups: u64,
    /// Connected descriptor groups solved by sampling.
    pub sampled_groups: u64,
    /// Total Monte Carlo / Karp–Luby draws across all sampled groups.
    pub samples_drawn: u64,
    /// Largest connected group seen, in descriptors.
    pub largest_group: u64,
}

impl ConfStats {
    /// Fold another run's counters into this one.
    pub fn absorb(&mut self, other: &ConfStats) {
        self.exact_groups += other.exact_groups;
        self.sampled_groups += other.sampled_groups;
        self.samples_drawn += other.samples_drawn;
        self.largest_group = self.largest_group.max(other.largest_group);
    }
}

/// Whether a (sorted) partial assignment satisfies a descriptor. Every
/// component of `d` is guaranteed to occur in `assignment` by construction.
fn assignment_satisfies(assignment: &[(ComponentId, u16)], d: &WsDescriptor) -> bool {
    d.terms().iter().all(|&(c, a)| {
        assignment
            .binary_search_by_key(&c, |&(id, _)| id)
            .map(|i| assignment[i].1 == a)
            .unwrap_or(false)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_probabilities_sum_to_one() {
        let mut cs = ComponentSet::new();
        cs.add(Component::from_weights(&[1.0, 3.0]).unwrap());
        cs.add(Component::uniform(3).unwrap());
        let worlds = cs.enumerate(1_000).unwrap();
        assert_eq!(worlds.len(), 6);
        let total: f64 = worlds.iter().map(|w| cs.prob_of_pick(w)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dnf_probability_matches_enumeration() {
        let mut cs = ComponentSet::new();
        let c0 = cs.add(Component::from_weights(&[1.0, 1.0]).unwrap());
        let c1 = cs.add(Component::from_weights(&[1.0, 2.0, 1.0]).unwrap());
        let descs = vec![
            WsDescriptor::single(c0, 0),
            WsDescriptor::single(c0, 1)
                .conjoin(&WsDescriptor::single(c1, 2))
                .unwrap(),
        ];
        let by_enum: f64 = cs
            .enumerate(1_000)
            .unwrap()
            .iter()
            .filter(|w| descs.iter().any(|d| d.satisfied_by(w)))
            .map(|w| cs.prob_of_pick(w))
            .sum();
        assert!((cs.prob_of_dnf(&descs) - by_enum).abs() < 1e-12);
    }

    #[test]
    fn coverage_detects_certain_tuples() {
        let mut cs = ComponentSet::new();
        let c0 = cs.add(Component::uniform(2).unwrap());
        let both = vec![WsDescriptor::single(c0, 0), WsDescriptor::single(c0, 1)];
        assert!(cs.covers_all_worlds(&both));
        assert!(!cs.covers_all_worlds(&both[..1]));
    }

    #[test]
    fn group_exact_cost_takes_the_cheaper_method() {
        let mut cs = ComponentSet::new();
        let c0 = cs.add(Component::uniform(2).unwrap());
        let c1 = cs.add(Component::uniform(3).unwrap());
        let d0 = WsDescriptor::single(c0, 0);
        let d1 = WsDescriptor::single(c1, 1);
        // Two descriptors over 2·3 assignments: IE (2² = 4) wins.
        assert_eq!(cs.group_exact_cost(&[&d0, &d1]), 4);
        // One descriptor over one binary component: enumeration (2) wins.
        assert_eq!(cs.group_exact_cost(&[&d0]), 2);
    }

    #[test]
    fn sample_walks_the_cdf() {
        let c = Component::from_weights(&[1.0, 2.0, 1.0]).unwrap();
        assert_eq!(c.sample(0.1), 0);
        assert_eq!(c.sample(0.25), 0);
        assert_eq!(c.sample(0.26), 1);
        assert_eq!(c.sample(0.75), 1);
        assert_eq!(c.sample(0.76), 2);
        assert_eq!(c.sample(1.0), 2);
    }

    #[test]
    fn rejects_bad_weights() {
        assert!(Component::from_weights(&[]).is_err());
        assert!(Component::from_weights(&[1.0, 0.0]).is_err());
        assert!(Component::from_weights(&[1.0, f64::NAN]).is_err());
    }
}
