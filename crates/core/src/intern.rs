//! Descriptor interning: map each distinct [`WsDescriptor`] to a dense
//! `u32` handle so the hot executor paths (conjoin, dedup, hash join)
//! key on integers instead of re-allocating sorted term vectors.
//!
//! A [`DescriptorPool`] canonicalizes descriptors: equal descriptors always
//! receive the same [`DescId`], so handle equality *is* descriptor equality.
//! The dominant 0-, 1-, and 2-term descriptors (tautologies, base-table
//! annotations, and binary-join conjunctions) are stored inline without any
//! heap allocation; longer descriptors spill to a boxed slice. Conjunction
//! of two interned descriptors merges their sorted term lists through a
//! reusable scratch buffer, so a consistent conjoin of small descriptors
//! performs no allocation at all unless it mints a brand-new pool entry
//! with more than [`INLINE_TERMS`] terms.

use std::cmp::Ordering;

use crate::descriptor::{merge_sorted_terms, ComponentId, WsDescriptor};
use crate::fxhash::FxHashMap;

/// Maximum number of terms stored inline in a pool entry.
pub const INLINE_TERMS: usize = 2;

/// A handle to an interned [`WsDescriptor`] in a [`DescriptorPool`].
///
/// Handles are only meaningful relative to the pool that issued them.
/// Within one pool, `a == b` iff the underlying descriptors are equal.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DescId(u32);

impl DescId {
    /// The handle of the tautology (the all-worlds descriptor). Every pool
    /// interns the tautology at slot 0 on construction.
    pub const TAUTOLOGY: DescId = DescId(0);

    /// True for the tautology handle.
    pub fn is_tautology(self) -> bool {
        self.0 == 0
    }

    /// The dense pool slot of this handle.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Compact storage for one interned descriptor. Construction is canonical:
/// term lists of length ≤ [`INLINE_TERMS`] are always `Inline` (padded with
/// a fixed sentinel), longer ones always `Spilled` — so the derived
/// `Eq`/`Hash` agree with logical term-list equality.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
enum Stored {
    /// Up to [`INLINE_TERMS`] terms, no heap allocation.
    Inline {
        len: u8,
        terms: [(ComponentId, u16); INLINE_TERMS],
    },
    /// More than [`INLINE_TERMS`] terms.
    Spilled(Box<[(ComponentId, u16)]>),
}

const PAD: (ComponentId, u16) = (ComponentId(0), 0);

impl Stored {
    fn from_terms(terms: &[(ComponentId, u16)]) -> Stored {
        if terms.len() <= INLINE_TERMS {
            let mut inline = [PAD; INLINE_TERMS];
            inline[..terms.len()].copy_from_slice(terms);
            Stored::Inline {
                len: terms.len() as u8,
                terms: inline,
            }
        } else {
            Stored::Spilled(terms.to_vec().into_boxed_slice())
        }
    }

    fn terms(&self) -> &[(ComponentId, u16)] {
        match self {
            Stored::Inline { len, terms } => &terms[..*len as usize],
            Stored::Spilled(b) => b,
        }
    }
}

/// Occupancy and hit statistics of a [`DescriptorPool`], exposed for
/// observability (the REPL's `\stats` meta-command) and for validating that
/// executor changes keep the interning behavior intact.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Calls to [`DescriptorPool::intern`] / [`DescriptorPool::intern_terms`]
    /// (tautology fast path included).
    pub intern_calls: u64,
    /// Intern calls answered from the index (or the tautology fast path)
    /// without minting a new entry.
    pub intern_hits: u64,
    /// Calls to [`DescriptorPool::conjoin`].
    pub conjoin_calls: u64,
    /// Conjoin calls resolved without minting an entry: tautology unit,
    /// equal handles, or one side subsuming the other.
    pub conjoin_shortcuts: u64,
    /// Conjoin calls whose inputs were inconsistent (empty world set).
    pub conjoin_inconsistent: u64,
}

/// An interner for world-set descriptors. See the module docs.
#[derive(Clone, Debug)]
pub struct DescriptorPool {
    entries: Vec<Stored>,
    index: FxHashMap<Stored, DescId>,
    /// Scratch buffer for conjunction, reused across calls.
    scratch: Vec<(ComponentId, u16)>,
    /// Running usage counters; see [`PoolStats`].
    stats: PoolStats,
    /// Number of entries stored as [`Stored::Spilled`].
    spilled: usize,
}

impl Default for DescriptorPool {
    fn default() -> Self {
        DescriptorPool::new()
    }
}

impl DescriptorPool {
    /// A fresh pool with the tautology pre-interned as [`DescId::TAUTOLOGY`].
    pub fn new() -> Self {
        let taut = Stored::from_terms(&[]);
        let mut index = FxHashMap::default();
        index.insert(taut.clone(), DescId::TAUTOLOGY);
        DescriptorPool {
            entries: vec![taut],
            index,
            scratch: Vec::new(),
            stats: PoolStats::default(),
            spilled: 0,
        }
    }

    /// Number of distinct interned descriptors (≥ 1: the tautology).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Always false: the tautology is pre-interned.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// A snapshot of the pool's usage counters.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// Number of entries that spilled to the heap (more than
    /// [`INLINE_TERMS`] terms). Maintained as a counter, so stats snapshots
    /// never sweep the pool.
    pub fn spilled(&self) -> usize {
        self.spilled
    }

    /// Intern a descriptor, returning its stable handle.
    pub fn intern(&mut self, d: &WsDescriptor) -> DescId {
        self.intern_terms(d.terms())
    }

    /// Intern a sorted, conflict-free term list (the caller guarantees the
    /// [`WsDescriptor`] invariants: strictly increasing component ids).
    pub fn intern_terms(&mut self, terms: &[(ComponentId, u16)]) -> DescId {
        debug_assert!(
            terms.windows(2).all(|w| w[0].0 < w[1].0),
            "intern_terms requires strictly sorted component ids"
        );
        self.stats.intern_calls += 1;
        if terms.is_empty() {
            self.stats.intern_hits += 1;
            return DescId::TAUTOLOGY;
        }
        let before = self.entries.len();
        let id = self.intern_stored(Stored::from_terms(terms));
        if id.index() < before {
            self.stats.intern_hits += 1;
        }
        id
    }

    /// Hash-cons a pre-built entry without touching the usage counters (the
    /// shared tail of [`DescriptorPool::intern_terms`] and the shard
    /// [`DescriptorPool::absorb`] path, which must not double-count the
    /// shard's already-recorded calls).
    fn intern_stored(&mut self, stored: Stored) -> DescId {
        if let Some(&id) = self.index.get(&stored) {
            return id;
        }
        let id = DescId(self.entries.len() as u32);
        self.spilled += matches!(stored, Stored::Spilled(_)) as usize;
        self.entries.push(stored.clone());
        self.index.insert(stored, id);
        id
    }

    /// Intern the single assignment `component = alternative`.
    pub fn single(&mut self, component: ComponentId, alternative: u16) -> DescId {
        self.intern_terms(&[(component, alternative)])
    }

    /// The term list of an interned descriptor, sorted by component id.
    pub fn terms(&self, id: DescId) -> &[(ComponentId, u16)] {
        self.entries[id.index()].terms()
    }

    /// Reconstruct the owned [`WsDescriptor`] for a handle.
    pub fn to_descriptor(&self, id: DescId) -> WsDescriptor {
        WsDescriptor::from_sorted_terms_unchecked(self.terms(id).to_vec())
    }

    /// Whether two handles denote the same descriptor. Handles minted by
    /// [`DescriptorPool::intern`] are canonical (equal descriptors share one
    /// handle), so `a == b` suffices for them; handles minted by
    /// [`DescriptorPool::conjoin`] may be fresh duplicates, which this
    /// resolves with a term-list comparison.
    pub fn same_descriptor(&self, a: DescId, b: DescId) -> bool {
        a == b || self.terms(a) == self.terms(b)
    }

    /// Canonical descriptor order on handles (by term list, the same order
    /// `WsDescriptor: Ord` uses) — so interned rows can be sorted into
    /// exactly the canonical order of their un-interned counterparts.
    pub fn cmp_terms(&self, a: DescId, b: DescId) -> Ordering {
        if a == b {
            return Ordering::Equal;
        }
        self.terms(a).cmp(self.terms(b))
    }

    /// Conjoin two interned descriptors. Returns `None` when they assign
    /// different alternatives to the same component (the empty world set).
    ///
    /// Merges through the pool's scratch buffer: no allocation unless the
    /// result is a descriptor with more than [`INLINE_TERMS`] terms. When one
    /// input subsumes the other, that input's handle is returned directly.
    /// Otherwise the result is *appended* to the pool without consulting the
    /// intern index: in join-heavy workloads conjunction results are almost
    /// always brand-new, so hash-consing each one costs a lookup-plus-insert
    /// per output row for nearly no sharing. The price is that an equal
    /// descriptor may exist under another handle — consumers that
    /// deduplicate must compare with [`DescriptorPool::same_descriptor`]
    /// (or hash/compare term lists), not raw handles.
    pub fn conjoin(&mut self, a: DescId, b: DescId) -> Option<DescId> {
        self.stats.conjoin_calls += 1;
        if a == b || b.is_tautology() {
            self.stats.conjoin_shortcuts += 1;
            return Some(a);
        }
        if a.is_tautology() {
            self.stats.conjoin_shortcuts += 1;
            return Some(b);
        }
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        let merged = merge_sorted_terms(self.terms(a), self.terms(b), &mut scratch);
        let result = if !merged {
            self.stats.conjoin_inconsistent += 1;
            None
        } else if scratch.len() == self.terms(a).len() {
            // merged ⊇ a and equal length ⟹ merged == a (b ⊆ a).
            self.stats.conjoin_shortcuts += 1;
            Some(a)
        } else if scratch.len() == self.terms(b).len() {
            self.stats.conjoin_shortcuts += 1;
            Some(b)
        } else {
            let id = DescId(self.entries.len() as u32);
            let stored = Stored::from_terms(&scratch);
            self.spilled += matches!(stored, Stored::Spilled(_)) as usize;
            self.entries.push(stored);
            Some(id)
        };
        self.scratch = scratch;
        result
    }

    /// True when every assignment of `a` also occurs in `b` — i.e. `b`
    /// denotes a subset of `a`'s worlds (`a` absorbs `b` in a disjunction).
    pub fn is_subset(&self, a: DescId, b: DescId) -> bool {
        let (ta, tb) = (self.terms(a), self.terms(b));
        ta.iter().all(|t| tb.binary_search(t).is_ok())
    }

    /// The canonical handle of `id` with any assignment to `c` removed.
    /// Goes through the intern index, so the result compares by handle.
    pub fn without(&mut self, id: DescId, c: ComponentId) -> DescId {
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        scratch.extend(self.terms(id).iter().copied().filter(|&(cc, _)| cc != c));
        let out = self.intern_terms(&scratch);
        self.scratch = scratch;
        out
    }

    /// A fresh per-worker append arena over this pool. The pool itself is
    /// frozen while shards exist (they hold `&self`); every shard hands out
    /// handles numbered from `self.len()` upward, so shard handles and base
    /// handles never collide. Collect the shards' deltas and fold them back
    /// with [`DescriptorPool::absorb`].
    pub fn shard(&self) -> PoolShard<'_> {
        PoolShard {
            base: self,
            entries: Vec::new(),
            index: FxHashMap::default(),
            scratch: Vec::new(),
            stats: PoolStats::default(),
        }
    }

    /// Deterministically merge worker shard deltas back into the pool.
    ///
    /// Deltas are absorbed **in the order given** (callers pass them in task
    /// order, never in thread-completion order): each shard entry is
    /// re-interned through the pool's hash-consing index, so two shards that
    /// minted the same descriptor independently converge to one global
    /// canonical handle. The returned remap tables translate each shard's
    /// local handles to global ones; handles below the shard's base length
    /// were global already and pass through unchanged.
    ///
    /// The shards' usage counters are folded into the pool's stats; the
    /// re-interning itself is not counted (it is bookkeeping, not workload).
    pub fn absorb(&mut self, deltas: Vec<ShardDelta>) -> Vec<DescRemap> {
        deltas
            .into_iter()
            .map(|delta| {
                debug_assert!(
                    delta.base_len as usize <= self.entries.len(),
                    "shard built over a different (larger) pool"
                );
                let map = delta
                    .entries
                    .into_iter()
                    .map(|s| self.intern_stored(s))
                    .collect();
                self.stats.accumulate(&delta.stats);
                DescRemap {
                    base_len: delta.base_len,
                    map,
                }
            })
            .collect()
    }
}

impl PoolStats {
    /// Fold another pool's (or shard's) counters into this one.
    pub fn accumulate(&mut self, other: &PoolStats) {
        self.intern_calls += other.intern_calls;
        self.intern_hits += other.intern_hits;
        self.conjoin_calls += other.conjoin_calls;
        self.conjoin_shortcuts += other.conjoin_shortcuts;
        self.conjoin_inconsistent += other.conjoin_inconsistent;
    }
}

/// A per-worker append arena over a frozen [`DescriptorPool`]: reads resolve
/// against the base pool first, new descriptors land in a local arena with
/// handles numbered from the base pool's length upward. Shards are cheap to
/// create, are `Send` (each worker task owns its own), and are folded back
/// into the base pool — deterministically — by [`DescriptorPool::absorb`].
///
/// The interning contract matches the pool's: [`PoolShard::intern_terms`]
/// is canonical *within the run's frozen base plus this shard* (it consults
/// the base index, then the local index), while [`PoolShard::conjoin`]
/// appends without hash-consing exactly like
/// [`DescriptorPool::conjoin`]. Absorption re-interns every shard entry, so
/// cross-shard duplicates of canonical entries converge to one global
/// handle.
#[derive(Debug)]
pub struct PoolShard<'p> {
    base: &'p DescriptorPool,
    entries: Vec<Stored>,
    index: FxHashMap<Stored, DescId>,
    scratch: Vec<(ComponentId, u16)>,
    stats: PoolStats,
}

impl PoolShard<'_> {
    /// Total descriptors visible through this shard (base + local).
    pub fn len(&self) -> usize {
        self.base.entries.len() + self.entries.len()
    }

    /// Never empty: the base pool holds at least the tautology.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The term list behind a base or shard-local handle.
    pub fn terms(&self, id: DescId) -> &[(ComponentId, u16)] {
        let i = id.index();
        let b = self.base.entries.len();
        if i < b {
            self.base.entries[i].terms()
        } else {
            self.entries[i - b].terms()
        }
    }

    /// Intern a descriptor, returning its (base- or shard-) handle.
    pub fn intern(&mut self, d: &WsDescriptor) -> DescId {
        self.intern_terms(d.terms())
    }

    /// Shard counterpart of [`DescriptorPool::intern_terms`].
    pub fn intern_terms(&mut self, terms: &[(ComponentId, u16)]) -> DescId {
        debug_assert!(
            terms.windows(2).all(|w| w[0].0 < w[1].0),
            "intern_terms requires strictly sorted component ids"
        );
        self.stats.intern_calls += 1;
        if terms.is_empty() {
            self.stats.intern_hits += 1;
            return DescId::TAUTOLOGY;
        }
        let stored = Stored::from_terms(terms);
        if let Some(&id) = self.base.index.get(&stored) {
            self.stats.intern_hits += 1;
            return id;
        }
        if let Some(&id) = self.index.get(&stored) {
            self.stats.intern_hits += 1;
            return id;
        }
        let id = DescId(self.len() as u32);
        self.entries.push(stored.clone());
        self.index.insert(stored, id);
        id
    }

    /// Intern the single assignment `component = alternative`.
    pub fn single(&mut self, component: ComponentId, alternative: u16) -> DescId {
        self.intern_terms(&[(component, alternative)])
    }

    /// Reconstruct the owned [`WsDescriptor`] for a handle.
    pub fn to_descriptor(&self, id: DescId) -> WsDescriptor {
        WsDescriptor::from_sorted_terms_unchecked(self.terms(id).to_vec())
    }

    /// Whether two handles denote the same descriptor (see
    /// [`DescriptorPool::same_descriptor`]).
    pub fn same_descriptor(&self, a: DescId, b: DescId) -> bool {
        a == b || self.terms(a) == self.terms(b)
    }

    /// Canonical descriptor order on handles (see
    /// [`DescriptorPool::cmp_terms`]).
    pub fn cmp_terms(&self, a: DescId, b: DescId) -> Ordering {
        if a == b {
            return Ordering::Equal;
        }
        self.terms(a).cmp(self.terms(b))
    }

    /// Shard counterpart of [`DescriptorPool::conjoin`]: identical
    /// shortcuts, and like the pool it *appends* a genuinely new result to
    /// the local arena without hash-consing (absorption canonicalizes).
    pub fn conjoin(&mut self, a: DescId, b: DescId) -> Option<DescId> {
        self.stats.conjoin_calls += 1;
        if a == b || b.is_tautology() {
            self.stats.conjoin_shortcuts += 1;
            return Some(a);
        }
        if a.is_tautology() {
            self.stats.conjoin_shortcuts += 1;
            return Some(b);
        }
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        let merged = merge_sorted_terms(self.terms(a), self.terms(b), &mut scratch);
        let result = if !merged {
            self.stats.conjoin_inconsistent += 1;
            None
        } else if scratch.len() == self.terms(a).len() {
            self.stats.conjoin_shortcuts += 1;
            Some(a)
        } else if scratch.len() == self.terms(b).len() {
            self.stats.conjoin_shortcuts += 1;
            Some(b)
        } else {
            let id = DescId(self.len() as u32);
            self.entries.push(Stored::from_terms(&scratch));
            Some(id)
        };
        self.scratch = scratch;
        result
    }

    /// See [`DescriptorPool::is_subset`].
    pub fn is_subset(&self, a: DescId, b: DescId) -> bool {
        let (ta, tb) = (self.terms(a), self.terms(b));
        ta.iter().all(|t| tb.binary_search(t).is_ok())
    }

    /// See [`DescriptorPool::without`] (canonical within base + shard).
    pub fn without(&mut self, id: DescId, c: ComponentId) -> DescId {
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        scratch.extend(self.terms(id).iter().copied().filter(|&(cc, _)| cc != c));
        let out = self.intern_terms(&scratch);
        self.scratch = scratch;
        out
    }

    /// Detach the shard's local entries and counters for
    /// [`DescriptorPool::absorb`]. Consumes the shard, releasing the base
    /// borrow.
    pub fn into_delta(self) -> ShardDelta {
        ShardDelta {
            base_len: self.base.entries.len() as u32,
            entries: self.entries,
            stats: self.stats,
        }
    }
}

/// The detached local arena of one [`PoolShard`], ready to be folded back
/// into the base pool by [`DescriptorPool::absorb`].
#[derive(Debug)]
pub struct ShardDelta {
    base_len: u32,
    entries: Vec<Stored>,
    stats: PoolStats,
}

impl ShardDelta {
    /// Number of locally minted entries this delta carries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the shard minted nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Translation of one shard's local handles to global pool handles, as
/// produced by [`DescriptorPool::absorb`].
#[derive(Clone, Debug)]
pub struct DescRemap {
    base_len: u32,
    map: Vec<DescId>,
}

impl DescRemap {
    /// The global handle for a (base or shard-local) handle.
    #[inline]
    pub fn remap(&self, id: DescId) -> DescId {
        if id.0 < self.base_len {
            id
        } else {
            self.map[(id.0 - self.base_len) as usize]
        }
    }

    /// True when the shard minted nothing (every handle passes through).
    pub fn is_identity(&self) -> bool {
        self.map.is_empty()
    }
}

/// The descriptor operations the normalization fixpoint needs, abstracted
/// over [`DescriptorPool`] and [`PoolShard`] so the per-tuple-group
/// simplification can run inside worker shards. Method names are distinct
/// from the inherent ones to keep concrete call sites unambiguous; the
/// provided combinators mirror the inherent implementations exactly.
pub trait DescInterner {
    /// The sorted term list behind a handle.
    fn terms_of(&self, id: DescId) -> &[(ComponentId, u16)];

    /// Intern a sorted, conflict-free term list, canonically.
    fn intern_sorted(&mut self, terms: &[(ComponentId, u16)]) -> DescId;

    /// Canonical descriptor order on handles (term-list order).
    fn order_terms(&self, a: DescId, b: DescId) -> Ordering {
        if a == b {
            return Ordering::Equal;
        }
        self.terms_of(a).cmp(self.terms_of(b))
    }

    /// True when every assignment of `a` also occurs in `b`.
    fn subset_terms(&self, a: DescId, b: DescId) -> bool {
        let (ta, tb) = (self.terms_of(a), self.terms_of(b));
        ta.iter().all(|t| tb.binary_search(t).is_ok())
    }

    /// The canonical handle of `id` with any assignment to `c` removed.
    fn drop_component(&mut self, id: DescId, c: ComponentId) -> DescId {
        let terms: Vec<(ComponentId, u16)> = self
            .terms_of(id)
            .iter()
            .copied()
            .filter(|&(cc, _)| cc != c)
            .collect();
        self.intern_sorted(&terms)
    }
}

impl DescInterner for DescriptorPool {
    fn terms_of(&self, id: DescId) -> &[(ComponentId, u16)] {
        self.terms(id)
    }

    fn intern_sorted(&mut self, terms: &[(ComponentId, u16)]) -> DescId {
        self.intern_terms(terms)
    }
}

impl DescInterner for PoolShard<'_> {
    fn terms_of(&self, id: DescId) -> &[(ComponentId, u16)] {
        self.terms(id)
    }

    fn intern_sorted(&mut self, terms: &[(ComponentId, u16)]) -> DescId {
        self.intern_terms(terms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_canonicalizes() {
        let mut pool = DescriptorPool::new();
        let d = WsDescriptor::single(ComponentId(3), 1);
        let a = pool.intern(&d);
        let b = pool.intern(&d.clone());
        assert_eq!(a, b);
        assert_ne!(a, DescId::TAUTOLOGY);
        assert_eq!(pool.to_descriptor(a), d);
        assert_eq!(pool.intern(&WsDescriptor::tautology()), DescId::TAUTOLOGY);
    }

    #[test]
    fn conjoin_matches_descriptor_conjoin() {
        let mut pool = DescriptorPool::new();
        let d1 = WsDescriptor::single(ComponentId(0), 1);
        let d2 = WsDescriptor::single(ComponentId(1), 0);
        let (a, b) = (pool.intern(&d1), pool.intern(&d2));
        let ab = pool.conjoin(a, b).expect("distinct components");
        assert_eq!(pool.to_descriptor(ab), d1.conjoin(&d2).expect("consistent"));
        // Conflicting assignment to the same component denotes no worlds.
        let conflict = pool.intern(&WsDescriptor::single(ComponentId(0), 2));
        assert_eq!(pool.conjoin(a, conflict), None);
        // Tautology is the unit.
        assert_eq!(pool.conjoin(a, DescId::TAUTOLOGY), Some(a));
        assert_eq!(pool.conjoin(DescId::TAUTOLOGY, b), Some(b));
    }

    #[test]
    fn spills_beyond_inline_capacity() {
        let mut pool = DescriptorPool::new();
        let terms: Vec<_> = (0..5).map(|i| (ComponentId(i), (i % 2) as u16)).collect();
        let d = WsDescriptor::from_terms(terms.clone()).expect("distinct components");
        let id = pool.intern(&d);
        assert_eq!(pool.terms(id), terms.as_slice());
        assert_eq!(pool.intern(&d), id);
        assert_eq!(pool.to_descriptor(id), d);
        assert_eq!(pool.spilled(), 1);
    }

    #[test]
    fn shards_merge_deterministically() {
        let mut pool = DescriptorPool::new();
        let base = pool.intern(&WsDescriptor::single(ComponentId(0), 1));

        let mut a = pool.shard();
        let mut b = pool.shard();
        // Both shards mint the same new descriptor plus one of their own.
        let shared = WsDescriptor::single(ComponentId(7), 2);
        let sa = a.intern(&shared);
        let sb = b.intern(&shared);
        let only_a = a.intern(&WsDescriptor::single(ComponentId(8), 0));
        let only_b = b.intern(&WsDescriptor::single(ComponentId(9), 0));
        // Base handles resolve through shards unchanged.
        assert_eq!(a.intern(&WsDescriptor::single(ComponentId(0), 1)), base);
        assert_eq!(a.terms(base), pool.terms(base));
        assert!(sa.index() >= pool.len() && sb.index() >= pool.len());

        let remaps = pool.absorb(vec![a.into_delta(), b.into_delta()]);
        // The shared descriptor converges to one canonical global handle...
        assert_eq!(remaps[0].remap(sa), remaps[1].remap(sb));
        // ...every remapped handle resolves to the shard's content...
        assert_eq!(
            pool.to_descriptor(remaps[0].remap(only_a)),
            WsDescriptor::single(ComponentId(8), 0)
        );
        assert_eq!(
            pool.to_descriptor(remaps[1].remap(only_b)),
            WsDescriptor::single(ComponentId(9), 0)
        );
        // ...base handles pass through, and the pool stays canonical.
        assert_eq!(remaps[0].remap(base), base);
        assert_eq!(remaps[0].remap(DescId::TAUTOLOGY), DescId::TAUTOLOGY);
        assert_eq!(pool.intern(&shared), remaps[0].remap(sa));
    }

    #[test]
    fn shard_conjoin_matches_pool_conjoin() {
        let mut pool = DescriptorPool::new();
        let d1 = pool.intern(&WsDescriptor::single(ComponentId(0), 1));
        let d2 = pool.intern(&WsDescriptor::single(ComponentId(1), 0));
        let conflict = pool.intern(&WsDescriptor::single(ComponentId(0), 2));

        let mut shard = pool.shard();
        let joined = shard.conjoin(d1, d2).expect("distinct components");
        assert_eq!(
            shard.to_descriptor(joined).terms(),
            &[(ComponentId(0), 1), (ComponentId(1), 0)]
        );
        assert_eq!(shard.conjoin(d1, conflict), None);
        assert_eq!(shard.conjoin(d1, DescId::TAUTOLOGY), Some(d1));
        assert_eq!(shard.conjoin(DescId::TAUTOLOGY, d2), Some(d2));
        // Subsumption shortcut returns the subsuming input's handle.
        assert_eq!(shard.conjoin(joined, d1), Some(joined));

        let remaps = pool.absorb(vec![shard.into_delta()]);
        let global = remaps[0].remap(joined);
        assert_eq!(
            pool.terms(global),
            &[(ComponentId(0), 1), (ComponentId(1), 0)]
        );
    }

    #[test]
    fn cmp_terms_matches_descriptor_order() {
        let mut pool = DescriptorPool::new();
        let d1 = WsDescriptor::single(ComponentId(0), 1);
        let d2 = WsDescriptor::from_terms(vec![(ComponentId(0), 1), (ComponentId(2), 0)])
            .expect("distinct components");
        let (a, b) = (pool.intern(&d1), pool.intern(&d2));
        assert_eq!(pool.cmp_terms(a, b), d1.cmp(&d2));
        assert_eq!(pool.cmp_terms(b, a), d2.cmp(&d1));
        assert_eq!(pool.cmp_terms(a, a), Ordering::Equal);
    }
}
