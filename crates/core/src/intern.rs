//! Descriptor interning: map each distinct [`WsDescriptor`] to a dense
//! `u32` handle so the hot executor paths (conjoin, dedup, hash join)
//! key on integers instead of re-allocating sorted term vectors.
//!
//! A [`DescriptorPool`] canonicalizes descriptors: equal descriptors always
//! receive the same [`DescId`], so handle equality *is* descriptor equality.
//! The dominant 0-, 1-, and 2-term descriptors (tautologies, base-table
//! annotations, and binary-join conjunctions) are stored inline without any
//! heap allocation; longer descriptors spill to a boxed slice. Conjunction
//! of two interned descriptors merges their sorted term lists through a
//! reusable scratch buffer, so a consistent conjoin of small descriptors
//! performs no allocation at all unless it mints a brand-new pool entry
//! with more than [`INLINE_TERMS`] terms.

use std::cmp::Ordering;

use crate::descriptor::{merge_sorted_terms, ComponentId, WsDescriptor};
use crate::fxhash::FxHashMap;

/// Maximum number of terms stored inline in a pool entry.
pub const INLINE_TERMS: usize = 2;

/// A handle to an interned [`WsDescriptor`] in a [`DescriptorPool`].
///
/// Handles are only meaningful relative to the pool that issued them.
/// Within one pool, `a == b` iff the underlying descriptors are equal.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DescId(u32);

impl DescId {
    /// The handle of the tautology (the all-worlds descriptor). Every pool
    /// interns the tautology at slot 0 on construction.
    pub const TAUTOLOGY: DescId = DescId(0);

    /// True for the tautology handle.
    pub fn is_tautology(self) -> bool {
        self.0 == 0
    }

    /// The dense pool slot of this handle.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Compact storage for one interned descriptor. Construction is canonical:
/// term lists of length ≤ [`INLINE_TERMS`] are always `Inline` (padded with
/// a fixed sentinel), longer ones always `Spilled` — so the derived
/// `Eq`/`Hash` agree with logical term-list equality.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
enum Stored {
    /// Up to [`INLINE_TERMS`] terms, no heap allocation.
    Inline {
        len: u8,
        terms: [(ComponentId, u16); INLINE_TERMS],
    },
    /// More than [`INLINE_TERMS`] terms.
    Spilled(Box<[(ComponentId, u16)]>),
}

const PAD: (ComponentId, u16) = (ComponentId(0), 0);

impl Stored {
    fn from_terms(terms: &[(ComponentId, u16)]) -> Stored {
        if terms.len() <= INLINE_TERMS {
            let mut inline = [PAD; INLINE_TERMS];
            inline[..terms.len()].copy_from_slice(terms);
            Stored::Inline {
                len: terms.len() as u8,
                terms: inline,
            }
        } else {
            Stored::Spilled(terms.to_vec().into_boxed_slice())
        }
    }

    fn terms(&self) -> &[(ComponentId, u16)] {
        match self {
            Stored::Inline { len, terms } => &terms[..*len as usize],
            Stored::Spilled(b) => b,
        }
    }
}

/// Occupancy and hit statistics of a [`DescriptorPool`], exposed for
/// observability (the REPL's `\stats` meta-command) and for validating that
/// executor changes keep the interning behavior intact.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Calls to [`DescriptorPool::intern`] / [`DescriptorPool::intern_terms`]
    /// (tautology fast path included).
    pub intern_calls: u64,
    /// Intern calls answered from the index (or the tautology fast path)
    /// without minting a new entry.
    pub intern_hits: u64,
    /// Calls to [`DescriptorPool::conjoin`].
    pub conjoin_calls: u64,
    /// Conjoin calls resolved without minting an entry: tautology unit,
    /// equal handles, or one side subsuming the other.
    pub conjoin_shortcuts: u64,
    /// Conjoin calls whose inputs were inconsistent (empty world set).
    pub conjoin_inconsistent: u64,
}

/// An interner for world-set descriptors. See the module docs.
#[derive(Clone, Debug)]
pub struct DescriptorPool {
    entries: Vec<Stored>,
    index: FxHashMap<Stored, DescId>,
    /// Scratch buffer for conjunction, reused across calls.
    scratch: Vec<(ComponentId, u16)>,
    /// Running usage counters; see [`PoolStats`].
    stats: PoolStats,
    /// Number of entries stored as [`Stored::Spilled`].
    spilled: usize,
}

impl Default for DescriptorPool {
    fn default() -> Self {
        DescriptorPool::new()
    }
}

impl DescriptorPool {
    /// A fresh pool with the tautology pre-interned as [`DescId::TAUTOLOGY`].
    pub fn new() -> Self {
        let taut = Stored::from_terms(&[]);
        let mut index = FxHashMap::default();
        index.insert(taut.clone(), DescId::TAUTOLOGY);
        DescriptorPool {
            entries: vec![taut],
            index,
            scratch: Vec::new(),
            stats: PoolStats::default(),
            spilled: 0,
        }
    }

    /// Number of distinct interned descriptors (≥ 1: the tautology).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Always false: the tautology is pre-interned.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// A snapshot of the pool's usage counters.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// Number of entries that spilled to the heap (more than
    /// [`INLINE_TERMS`] terms). Maintained as a counter, so stats snapshots
    /// never sweep the pool.
    pub fn spilled(&self) -> usize {
        self.spilled
    }

    /// Intern a descriptor, returning its stable handle.
    pub fn intern(&mut self, d: &WsDescriptor) -> DescId {
        self.intern_terms(d.terms())
    }

    /// Intern a sorted, conflict-free term list (the caller guarantees the
    /// [`WsDescriptor`] invariants: strictly increasing component ids).
    pub fn intern_terms(&mut self, terms: &[(ComponentId, u16)]) -> DescId {
        debug_assert!(
            terms.windows(2).all(|w| w[0].0 < w[1].0),
            "intern_terms requires strictly sorted component ids"
        );
        self.stats.intern_calls += 1;
        if terms.is_empty() {
            self.stats.intern_hits += 1;
            return DescId::TAUTOLOGY;
        }
        let stored = Stored::from_terms(terms);
        if let Some(&id) = self.index.get(&stored) {
            self.stats.intern_hits += 1;
            return id;
        }
        let id = DescId(self.entries.len() as u32);
        self.spilled += matches!(stored, Stored::Spilled(_)) as usize;
        self.entries.push(stored.clone());
        self.index.insert(stored, id);
        id
    }

    /// Intern the single assignment `component = alternative`.
    pub fn single(&mut self, component: ComponentId, alternative: u16) -> DescId {
        self.intern_terms(&[(component, alternative)])
    }

    /// The term list of an interned descriptor, sorted by component id.
    pub fn terms(&self, id: DescId) -> &[(ComponentId, u16)] {
        self.entries[id.index()].terms()
    }

    /// Reconstruct the owned [`WsDescriptor`] for a handle.
    pub fn to_descriptor(&self, id: DescId) -> WsDescriptor {
        WsDescriptor::from_sorted_terms_unchecked(self.terms(id).to_vec())
    }

    /// Whether two handles denote the same descriptor. Handles minted by
    /// [`DescriptorPool::intern`] are canonical (equal descriptors share one
    /// handle), so `a == b` suffices for them; handles minted by
    /// [`DescriptorPool::conjoin`] may be fresh duplicates, which this
    /// resolves with a term-list comparison.
    pub fn same_descriptor(&self, a: DescId, b: DescId) -> bool {
        a == b || self.terms(a) == self.terms(b)
    }

    /// Canonical descriptor order on handles (by term list, the same order
    /// `WsDescriptor: Ord` uses) — so interned rows can be sorted into
    /// exactly the canonical order of their un-interned counterparts.
    pub fn cmp_terms(&self, a: DescId, b: DescId) -> Ordering {
        if a == b {
            return Ordering::Equal;
        }
        self.terms(a).cmp(self.terms(b))
    }

    /// Conjoin two interned descriptors. Returns `None` when they assign
    /// different alternatives to the same component (the empty world set).
    ///
    /// Merges through the pool's scratch buffer: no allocation unless the
    /// result is a descriptor with more than [`INLINE_TERMS`] terms. When one
    /// input subsumes the other, that input's handle is returned directly.
    /// Otherwise the result is *appended* to the pool without consulting the
    /// intern index: in join-heavy workloads conjunction results are almost
    /// always brand-new, so hash-consing each one costs a lookup-plus-insert
    /// per output row for nearly no sharing. The price is that an equal
    /// descriptor may exist under another handle — consumers that
    /// deduplicate must compare with [`DescriptorPool::same_descriptor`]
    /// (or hash/compare term lists), not raw handles.
    pub fn conjoin(&mut self, a: DescId, b: DescId) -> Option<DescId> {
        self.stats.conjoin_calls += 1;
        if a == b || b.is_tautology() {
            self.stats.conjoin_shortcuts += 1;
            return Some(a);
        }
        if a.is_tautology() {
            self.stats.conjoin_shortcuts += 1;
            return Some(b);
        }
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        let merged = merge_sorted_terms(self.terms(a), self.terms(b), &mut scratch);
        let result = if !merged {
            self.stats.conjoin_inconsistent += 1;
            None
        } else if scratch.len() == self.terms(a).len() {
            // merged ⊇ a and equal length ⟹ merged == a (b ⊆ a).
            self.stats.conjoin_shortcuts += 1;
            Some(a)
        } else if scratch.len() == self.terms(b).len() {
            self.stats.conjoin_shortcuts += 1;
            Some(b)
        } else {
            let id = DescId(self.entries.len() as u32);
            let stored = Stored::from_terms(&scratch);
            self.spilled += matches!(stored, Stored::Spilled(_)) as usize;
            self.entries.push(stored);
            Some(id)
        };
        self.scratch = scratch;
        result
    }

    /// True when every assignment of `a` also occurs in `b` — i.e. `b`
    /// denotes a subset of `a`'s worlds (`a` absorbs `b` in a disjunction).
    pub fn is_subset(&self, a: DescId, b: DescId) -> bool {
        let (ta, tb) = (self.terms(a), self.terms(b));
        ta.iter().all(|t| tb.binary_search(t).is_ok())
    }

    /// The canonical handle of `id` with any assignment to `c` removed.
    /// Goes through the intern index, so the result compares by handle.
    pub fn without(&mut self, id: DescId, c: ComponentId) -> DescId {
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        scratch.extend(self.terms(id).iter().copied().filter(|&(cc, _)| cc != c));
        let out = self.intern_terms(&scratch);
        self.scratch = scratch;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_canonicalizes() {
        let mut pool = DescriptorPool::new();
        let d = WsDescriptor::single(ComponentId(3), 1);
        let a = pool.intern(&d);
        let b = pool.intern(&d.clone());
        assert_eq!(a, b);
        assert_ne!(a, DescId::TAUTOLOGY);
        assert_eq!(pool.to_descriptor(a), d);
        assert_eq!(pool.intern(&WsDescriptor::tautology()), DescId::TAUTOLOGY);
    }

    #[test]
    fn conjoin_matches_descriptor_conjoin() {
        let mut pool = DescriptorPool::new();
        let d1 = WsDescriptor::single(ComponentId(0), 1);
        let d2 = WsDescriptor::single(ComponentId(1), 0);
        let (a, b) = (pool.intern(&d1), pool.intern(&d2));
        let ab = pool.conjoin(a, b).expect("distinct components");
        assert_eq!(pool.to_descriptor(ab), d1.conjoin(&d2).expect("consistent"));
        // Conflicting assignment to the same component denotes no worlds.
        let conflict = pool.intern(&WsDescriptor::single(ComponentId(0), 2));
        assert_eq!(pool.conjoin(a, conflict), None);
        // Tautology is the unit.
        assert_eq!(pool.conjoin(a, DescId::TAUTOLOGY), Some(a));
        assert_eq!(pool.conjoin(DescId::TAUTOLOGY, b), Some(b));
    }

    #[test]
    fn spills_beyond_inline_capacity() {
        let mut pool = DescriptorPool::new();
        let terms: Vec<_> = (0..5).map(|i| (ComponentId(i), (i % 2) as u16)).collect();
        let d = WsDescriptor::from_terms(terms.clone()).expect("distinct components");
        let id = pool.intern(&d);
        assert_eq!(pool.terms(id), terms.as_slice());
        assert_eq!(pool.intern(&d), id);
        assert_eq!(pool.to_descriptor(id), d);
        assert_eq!(pool.spilled(), 1);
    }

    #[test]
    fn cmp_terms_matches_descriptor_order() {
        let mut pool = DescriptorPool::new();
        let d1 = WsDescriptor::single(ComponentId(0), 1);
        let d2 = WsDescriptor::from_terms(vec![(ComponentId(0), 1), (ComponentId(2), 0)])
            .expect("distinct components");
        let (a, b) = (pool.intern(&d1), pool.intern(&d2));
        assert_eq!(pool.cmp_terms(a, b), d1.cmp(&d2));
        assert_eq!(pool.cmp_terms(b, a), d2.cmp(&d1));
        assert_eq!(pool.cmp_terms(a, a), Ordering::Equal);
    }
}
