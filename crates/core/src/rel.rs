//! Tuples and plain (single-world) relations with set semantics.

use std::collections::BTreeSet;
use std::fmt;

use crate::error::MayError;
use crate::schema::Schema;
use crate::value::Value;

/// An ordered list of values; one row of a relation.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Tuple(Vec<Value>);

impl Tuple {
    /// Create a tuple from values.
    pub fn new(values: Vec<Value>) -> Self {
        Tuple(values)
    }

    /// The values in order.
    pub fn values(&self) -> &[Value] {
        &self.0
    }

    /// Number of fields.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// The value at a column index.
    pub fn get(&self, i: usize) -> &Value {
        &self.0[i]
    }

    /// Project onto the given column indices, in that order.
    pub fn project(&self, idx: &[usize]) -> Tuple {
        Tuple(idx.iter().map(|&i| self.0[i].clone()).collect())
    }

    /// Append a value, returning the extended tuple.
    pub fn extended(&self, v: Value) -> Tuple {
        let mut vs = self.0.clone();
        vs.push(v);
        Tuple(vs)
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl<const N: usize> From<[Value; N]> for Tuple {
    fn from(vs: [Value; N]) -> Self {
        Tuple(vs.into())
    }
}

/// A plain relation: a schema plus a *set* of tuples. This is what a
/// u-relation instantiates to in one particular world, and the data type the
/// naive per-world oracle computes on.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Relation {
    schema: Schema,
    tuples: BTreeSet<Tuple>,
}

impl Relation {
    /// An empty relation over the given schema.
    pub fn new(schema: Schema) -> Self {
        Relation {
            schema,
            tuples: BTreeSet::new(),
        }
    }

    /// Build a relation from rows, checking each against the schema.
    pub fn from_rows(schema: Schema, rows: Vec<Tuple>) -> Result<Self, MayError> {
        let mut r = Relation::new(schema);
        for t in rows {
            r.insert(t)?;
        }
        Ok(r)
    }

    /// Insert a tuple (set semantics: duplicates are absorbed).
    pub fn insert(&mut self, t: Tuple) -> Result<(), MayError> {
        self.schema.check(&t)?;
        self.tuples.insert(t);
        Ok(())
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The tuples, in canonical order.
    pub fn tuples(&self) -> impl Iterator<Item = &Tuple> {
        self.tuples.iter()
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True when the relation holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Membership test.
    pub fn contains(&self, t: &Tuple) -> bool {
        self.tuples.contains(t)
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.schema.names().join(" | "))?;
        for t in &self.tuples {
            writeln!(f, "{t}")?;
        }
        Ok(())
    }
}
