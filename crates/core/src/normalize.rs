//! Normalization of world-set decompositions.
//!
//! The rewrites below preserve the *instance distribution* of the world set
//! ([`WorldSet::instance_distribution`]): the induced probability
//! distribution over database contents is exactly the same before and after,
//! even though the raw number of worlds may shrink (dropping an unreferenced
//! component merges worlds that were indistinguishable anyway).
//!
//! Per relation, to a fixpoint:
//!
//! 1. **Trivial-assignment stripping** — assignments to single-alternative
//!    components always hold and are removed from descriptors.
//! 2. **Duplicate elimination** — identical `(tuple, descriptor)` rows are
//!    merged (set semantics).
//! 3. **Absorption** — if one of a tuple's descriptors is a subset (as a set
//!    of assignments) of another, the larger one denotes a subset of the
//!    smaller one's worlds and is dropped.
//! 4. **Coverage merging** — if a tuple carries `D ∧ c=a` for *every*
//!    alternative `a` of component `c`, those rows merge into the single row
//!    `D`: the tuple's presence no longer depends on `c`. This is how
//!    components that an operation has made irrelevant become independent of
//!    the relation again.
//!
//! Finally, components referenced by no relation are **garbage collected**
//! and the remaining components are renumbered densely.

use std::cmp::Ordering;

use crate::columnar::{ColumnarURelation, StrPool};
use crate::component::ComponentSet;
use crate::descriptor::{ComponentId, WsDescriptor};
use crate::fxhash::FxHashMap;
use crate::intern::{DescId, DescInterner, DescriptorPool, ShardDelta};
use crate::parallel::{chunk_ranges, par_sort_by, run_tasks, ParCfg, ParStats};
use crate::rel::Tuple;
use crate::urel::URelation;
use crate::world::WorldSet;

/// Normalize a world set in place. See the module docs for the rewrites.
///
/// Each relation goes through the *columnar* pipeline
/// ([`normalize_relation`]); the row-oriented [`normalize_rows`] is kept as
/// the reference implementation the columnar path is differentially tested
/// against. The thread budget comes from the environment
/// ([`ParCfg::from_env`], i.e. `MAYBMS_THREADS`); [`normalize_with`] takes
/// it explicitly.
pub fn normalize(ws: &mut WorldSet) {
    normalize_with(ws, &ParCfg::from_env());
}

/// [`normalize`] with an explicit parallelism configuration. The result is
/// byte-identical for every thread count: the parallel stages (conversion,
/// canonical sort, per-tuple-group fixpoint) are deterministic, and the
/// tuple groups the rewrites act on are independent by construction.
pub fn normalize_with(ws: &mut WorldSet, par: &ParCfg) {
    let components = ws.components.clone();
    for rel in ws.relations.values_mut() {
        normalize_relation_with(rel, &components, par);
    }
    gc_components(ws);
}

/// Columnar normalization of one relation, in place. Equivalent to
/// `normalize_rows` on the same rows, but engineered for large relations:
///
/// 1. the relation is converted to [`ColumnarURelation`] form once, interning
///    every descriptor into a run-local [`DescriptorPool`];
/// 2. trivial-assignment stripping is **memoized per distinct descriptor
///    handle** instead of re-filtering term vectors per row;
/// 3. the canonical sort orders a `u32` permutation vector with column-wise
///    typed comparisons — rows are never moved, and no `(Tuple, WsDescriptor)`
///    pairs are shuffled through memory;
/// 4. the per-tuple-group fixpoint (dedup, absorption, coverage merging)
///    runs on canonical [`DescId`]s, so descriptor equality inside a group is
///    an integer compare;
/// 5. the surviving rows are emitted in one pass, in the same canonical
///    `(tuple, descriptor)` order the reference path produces — *moving* the
///    original tuples (and, where a row survived unchanged, its original
///    descriptor) instead of re-materializing them from the columns.
pub fn normalize_relation(rel: &mut URelation, components: &ComponentSet) {
    normalize_relation_with(rel, components, &ParCfg::sequential());
}

/// [`normalize_relation`] with an explicit parallelism configuration.
///
/// Above the morsel threshold three stages fan out, each deterministic:
/// the columnar conversion (per-morsel pool shards, merged in task order),
/// the canonical sort key build plus [`par_sort_by`] (which reproduces a
/// stable sort exactly — and the comparator is a *total* order on surviving
/// rows, so it equals the sequential unstable sort's output too), and the
/// per-tuple-group fixpoint (groups are independent; each task simplifies
/// its groups against a private [`PoolShard`](crate::intern::PoolShard) and
/// the resulting handles are remapped after a task-ordered absorb). The
/// strip memo and the emit pass stay sequential — both are cheap relative
/// to the sort and fixpoint.
pub fn normalize_relation_with(rel: &mut URelation, components: &ComponentSet, par: &ParCfg) {
    if rel.is_empty() {
        return;
    }
    let registry = crate::obs::metrics();
    registry.normalize_runs_total.inc();
    registry.normalize_rows_total.add(rel.len() as u64);
    let mut pool = DescriptorPool::new();
    let mut strings = StrPool::new();
    let mut par_stats = ParStats::default();
    let col =
        ColumnarURelation::from_urelation_with(rel, &mut pool, &mut strings, par, &mut par_stats);
    let orig_ids: Vec<DescId> = col.descs().to_vec();
    let n = col.len();
    let workers = par.workers_for(n);
    // The original rows, each taken at most once during the emit pass below
    // (the columns hold independent copies of the values).
    let mut rows: Vec<Option<(Tuple, WsDescriptor)>> =
        rel.take_rows().into_iter().map(Some).collect();

    // Memoized trivial-assignment stripping: handles are canonical, so each
    // distinct descriptor is stripped (and re-interned) exactly once.
    let mut strip_memo: FxHashMap<DescId, DescId> = FxHashMap::default();
    let mut strip_buf: Vec<(ComponentId, u16)> = Vec::new();
    let descs: Vec<DescId> = orig_ids
        .iter()
        .map(|&d| {
            if let Some(&s) = strip_memo.get(&d) {
                return s;
            }
            let stripped = if pool
                .terms(d)
                .iter()
                .all(|&(c, _)| components.get(c).alternatives() > 1)
            {
                d
            } else {
                strip_buf.clear();
                strip_buf.extend(
                    pool.terms(d)
                        .iter()
                        .copied()
                        .filter(|&(c, _)| components.get(c).alternatives() > 1),
                );
                pool.intern_terms(&strip_buf)
            };
            strip_memo.insert(d, stripped);
            stripped
        })
        .collect();

    // Canonical (tuple, descriptor) order on a permutation vector. Each row
    // is paired with the first column's order-preserving prefix key, so the
    // bulk of the comparisons is one integer compare on data that travels
    // with the permutation entry; ties fall back to the full column-wise
    // comparison.
    let mut keyed: Vec<(u64, u32)> = match col.columns().first() {
        Some(first) => {
            if workers <= 1 {
                (0..n)
                    .map(|i| (first.sort_prefix(i, &strings), i as u32))
                    .collect()
            } else {
                let morsels = chunk_ranges(n, workers * 4);
                par_stats.note_stage(workers, morsels.len());
                run_tasks(workers, morsels.len(), |t| {
                    morsels[t]
                        .clone()
                        .map(|i| (first.sort_prefix(i, &strings), i as u32))
                        .collect::<Vec<_>>()
                })
                .concat()
            }
        }
        // Zero-arity relation: every tuple is ().
        None => (0..n).map(|i| (0, i as u32)).collect(),
    };
    let by_canonical = |&(ka, i): &(u64, u32), &(kb, j): &(u64, u32)| {
        ka.cmp(&kb).then_with(|| {
            col.cmp_rows(i as usize, j as usize, &strings)
                .then_with(|| pool.cmp_terms(descs[i as usize], descs[j as usize]))
        })
    };
    if workers <= 1 {
        keyed.sort_unstable_by(by_canonical);
    } else {
        // Rows that compare equal here are full `(tuple, descriptor)`
        // duplicates (the very rows the dedup below removes), so the
        // stable parallel sort and the sequential unstable sort produce
        // the same surviving permutation.
        par_sort_by(&mut keyed, workers, by_canonical);
    }
    let mut perm: Vec<u32> = keyed.into_iter().map(|(_, i)| i).collect();
    perm.dedup_by(|&mut i, &mut j| {
        descs[i as usize] == descs[j as usize] && col.rows_eq(i as usize, j as usize)
    });

    // Tuple-group boundaries over the canonical permutation.
    let mut groups: Vec<(usize, usize)> = Vec::new();
    {
        let mut start = 0;
        while start < perm.len() {
            let mut end = start + 1;
            while end < perm.len() && col.rows_eq(perm[start] as usize, perm[end] as usize) {
                end += 1;
            }
            groups.push((start, end));
            start = end;
        }
    }

    // Per-tuple-group local fixpoint, exactly as in `normalize_rows` but on
    // canonical handles. Only groups with more than one descriptor need it;
    // they are independent of each other, so tasks simplify disjoint group
    // ranges against private pool shards and the surviving handles are
    // remapped into the global pool afterwards.
    let multi: Vec<usize> = groups
        .iter()
        .enumerate()
        .filter(|&(_, &(s, e))| e - s > 1)
        .map(|(g, _)| g)
        .collect();
    let mut resolved: Vec<Vec<DescId>> = Vec::with_capacity(multi.len());
    let group_ids = |g: usize| -> Vec<DescId> {
        let (s, e) = groups[g];
        perm[s..e].iter().map(|&i| descs[i as usize]).collect()
    };
    if workers <= 1 || multi.len() < 2 {
        for &g in &multi {
            let mut ids = group_ids(g);
            loop {
                ids.sort_unstable_by(|&a, &b| pool.cmp_terms(a, b));
                ids.dedup();
                if !simplify_disjunction_ids(&mut ids, &mut pool, components) {
                    break;
                }
            }
            resolved.push(ids);
        }
    } else {
        let morsels = chunk_ranges(multi.len(), workers * 4);
        par_stats.note_stage(workers, morsels.len());
        let results: Vec<(Vec<Vec<DescId>>, ShardDelta)> = run_tasks(workers, morsels.len(), |t| {
            let mut shard = pool.shard();
            let lists: Vec<Vec<DescId>> = morsels[t]
                .clone()
                .map(|m| {
                    let mut ids = group_ids(multi[m]);
                    loop {
                        ids.sort_unstable_by(|&a, &b| shard.cmp_terms(a, b));
                        ids.dedup();
                        if !simplify_disjunction_ids(&mut ids, &mut shard, components) {
                            break;
                        }
                    }
                    ids
                })
                .collect();
            (lists, shard.into_delta())
        });
        let started = std::time::Instant::now();
        let (lists, deltas): (Vec<_>, Vec<_>) = results.into_iter().unzip();
        let entries: u64 = deltas.iter().map(|d| d.len() as u64).sum();
        let remaps = pool.absorb(deltas);
        for (task_lists, remap) in lists.into_iter().zip(&remaps) {
            for mut ids in task_lists {
                for id in &mut ids {
                    *id = remap.remap(*id);
                }
                resolved.push(ids);
            }
        }
        par_stats.note_merge(entries, started.elapsed().as_nanos() as u64);
    }

    let mut out: Vec<(Tuple, WsDescriptor)> = Vec::with_capacity(perm.len());
    let mut mi = 0;
    for (g, &(start, end)) in groups.iter().enumerate() {
        let single;
        let ids: &[DescId] = if mi < multi.len() && multi[mi] == g {
            mi += 1;
            &resolved[mi - 1]
        } else {
            // Singleton group: its one stripped descriptor survives as-is.
            single = [descs[perm[start] as usize]];
            &single
        };
        // Move the representative row out; its tuple is the group's tuple.
        let (tuple, rep_desc) = rows[perm[start] as usize]
            .take()
            .expect("each source row is taken at most once");
        let mut rep_desc = Some(rep_desc);
        // Emit the group's descriptors in canonical order, reusing an
        // original descriptor whenever a surviving id belongs to a source
        // row whose descriptor was not rewritten by stripping. Group rows
        // and surviving ids are both sorted by term list, so one forward
        // pointer finds each reusable row.
        let mut p = start;
        let last = ids.len() - 1;
        for (k, &id) in ids.iter().enumerate() {
            while p < end && pool.cmp_terms(descs[perm[p] as usize], id) == Ordering::Less {
                p += 1;
            }
            let mut reused = None;
            if p < end && descs[perm[p] as usize] == id {
                let row = perm[p] as usize;
                p += 1;
                if orig_ids[row] == id {
                    reused = if row == perm[start] as usize {
                        rep_desc.take()
                    } else {
                        rows[row].take().map(|(_, d)| d)
                    };
                }
            }
            let desc = reused.unwrap_or_else(|| pool.to_descriptor(id));
            if k == last {
                out.push((tuple, desc));
                break;
            }
            out.push((tuple.clone(), desc));
        }
    }
    rel.set_rows(out);
}

/// Absorption and coverage merging on canonical descriptor handles — the
/// handle-level mirror of [`simplify_disjunction`]. All ids must be interned
/// (canonical in `pool`), so id equality is descriptor equality. Generic
/// over [`DescInterner`] so the parallel fixpoint can run it against a
/// per-task [`PoolShard`](crate::intern::PoolShard). Returns true when
/// anything changed.
fn simplify_disjunction_ids<P: DescInterner>(
    ids: &mut Vec<DescId>,
    pool: &mut P,
    components: &ComponentSet,
) -> bool {
    let mut changed = false;

    // Absorption: drop any descriptor that a strictly more general one
    // subsumes.
    let mut keep = vec![true; ids.len()];
    for a in 0..ids.len() {
        if !keep[a] {
            continue;
        }
        for b in 0..ids.len() {
            if a != b && keep[b] && ids[a] != ids[b] && pool.subset_terms(ids[a], ids[b]) {
                keep[b] = false;
                changed = true;
            }
        }
    }
    if changed {
        let mut it = keep.iter();
        ids.retain(|_| *it.next().expect("keep mask matches ids length"));
    }

    // Coverage merging: if `base ∧ c=a` is present for every alternative `a`
    // of some component `c`, those ids merge into `base`. Variants are
    // detected by direct term-slice comparison (same terms as `d` with the
    // `c`-assignment swapped) — no descriptor is constructed or interned
    // until a merge actually fires.
    'restart: loop {
        for idx in 0..ids.len() {
            let d = ids[idx];
            for ti in 0..pool.terms_of(d).len() {
                let c = pool.terms_of(d)[ti].0;
                let is_variant = |pool: &P, x: DescId, a: u16| {
                    let (tx, td) = (pool.terms_of(x), pool.terms_of(d));
                    tx.len() == td.len()
                        && tx.iter().zip(td).enumerate().all(|(k, (&xt, &dt))| {
                            if k == ti {
                                xt == (c, a)
                            } else {
                                xt == dt
                            }
                        })
                };
                let n = components.get(c).alternatives();
                if (0..n).all(|a| ids.iter().any(|&x| is_variant(pool, x, a))) {
                    ids.retain(|&x| !(0..n).any(|a| is_variant(pool, x, a)));
                    ids.push(pool.drop_component(d, c));
                    changed = true;
                    continue 'restart;
                }
            }
        }
        break;
    }
    changed
}

/// Normalize one relation's rows against a component set.
///
/// The rewrites (dedup, absorption, coverage merging) only ever relate rows
/// carrying the *same* tuple, so after one global sort each tuple group can
/// be simplified to its own local fixpoint independently — the relation is
/// never re-sorted or rebuilt per iteration, and tuples are moved (cloned
/// only when a tuple keeps several descriptors), which is what keeps
/// normalization linearithmic-plus-local-work on large relations.
pub fn normalize_rows(
    rows: Vec<(Tuple, WsDescriptor)>,
    components: &ComponentSet,
) -> Vec<(Tuple, WsDescriptor)> {
    let mut rows: Vec<(Tuple, WsDescriptor)> = rows
        .into_iter()
        .map(|(t, d)| (t, strip_trivial(d, components)))
        .collect();
    rows.sort_unstable();
    rows.dedup();

    let mut out: Vec<(Tuple, WsDescriptor)> = Vec::with_capacity(rows.len());
    let mut it = rows.into_iter().peekable();
    while let Some((tuple, first_desc)) = it.next() {
        let mut descs = vec![first_desc];
        while it.peek().is_some_and(|(t, _)| *t == tuple) {
            descs.push(it.next().expect("peeked").1);
        }
        if descs.len() > 1 {
            // Local fixpoint: each pass re-sorts and dedups only this
            // tuple's descriptors before trying the rewrites again.
            loop {
                descs.sort_unstable();
                descs.dedup();
                if !simplify_disjunction(&mut descs, components) {
                    break;
                }
            }
        }
        // Emit in canonical (tuple, descriptor) order; the tuple is moved
        // into the group's last row and cloned only for the rows before it.
        let last = descs.len() - 1;
        let mut ds = descs.into_iter();
        for _ in 0..last {
            out.push((tuple.clone(), ds.next().expect("before last")));
        }
        out.push((tuple, ds.next().expect("last descriptor")));
    }
    out
}

/// Remove assignments to components with a single alternative.
fn strip_trivial(d: WsDescriptor, components: &ComponentSet) -> WsDescriptor {
    if d.terms()
        .iter()
        .all(|&(c, _)| components.get(c).alternatives() > 1)
    {
        return d;
    }
    let terms: Vec<_> = d
        .terms()
        .iter()
        .copied()
        .filter(|&(c, _)| components.get(c).alternatives() > 1)
        .collect();
    WsDescriptor::from_terms(terms).expect("filtering terms cannot introduce conflicts")
}

/// Apply absorption and coverage merging to the descriptors of one tuple.
/// Returns true when anything changed.
fn simplify_disjunction(descs: &mut Vec<WsDescriptor>, components: &ComponentSet) -> bool {
    let mut changed = false;

    // Absorption: drop any descriptor that another (strictly more general)
    // descriptor subsumes.
    let mut keep = vec![true; descs.len()];
    for a in 0..descs.len() {
        if !keep[a] {
            continue;
        }
        for b in 0..descs.len() {
            if a != b && keep[b] && descs[a].is_subset_of(&descs[b]) && descs[a] != descs[b] {
                keep[b] = false;
                changed = true;
            }
        }
    }
    if changed {
        let mut it = keep.iter();
        descs.retain(|_| *it.next().expect("keep mask matches descs length"));
    }

    // Coverage merging: if `base ∧ c=a` is present for every alternative `a`
    // of some component `c`, replace those rows with `base`.
    'restart: loop {
        for idx in 0..descs.len() {
            let d = descs[idx].clone();
            for &(c, _) in d.terms() {
                let base = d.without(c);
                let n = components.get(c).alternatives();
                let variant = |a: u16| {
                    base.conjoin(&WsDescriptor::single(c, a))
                        .expect("base has no assignment for c")
                };
                if (0..n).all(|a| descs.contains(&variant(a))) {
                    descs.retain(|x| !(0..n).any(|a| *x == variant(a)));
                    descs.push(base);
                    changed = true;
                    continue 'restart;
                }
            }
        }
        break;
    }
    changed
}

/// Drop components no relation references and renumber the rest densely.
/// Reference detection is a linear sweep over a dense mark vector (one flag
/// per component) — no ordered-set construction on the hot path.
fn gc_components(ws: &mut WorldSet) {
    let total = ws.components.len();
    let mut used = vec![false; total];
    let mut used_count = 0;
    for rel in ws.relations.values() {
        for (_, d) in rel.rows() {
            for &(c, _) in d.terms() {
                let slot = &mut used[c.0 as usize];
                if !*slot {
                    *slot = true;
                    used_count += 1;
                }
            }
        }
    }
    if used_count == total {
        return;
    }
    // Dense renumbering in ascending component order.
    let mut remap_table = vec![u32::MAX; total];
    let mut new_set = ComponentSet::new();
    for (old, &is_used) in used.iter().enumerate() {
        if is_used {
            let new = new_set.add(ws.components.get(ComponentId(old as u32)).clone());
            remap_table[old] = new.0;
        }
    }
    let remap = |c: ComponentId| ComponentId(remap_table[c.0 as usize]);
    for rel in ws.relations.values_mut() {
        let rows = rel
            .take_rows()
            .into_iter()
            .map(|(t, d)| {
                let terms: Vec<_> = d.terms().iter().map(|&(c, a)| (remap(c), a)).collect();
                (
                    t,
                    WsDescriptor::from_terms(terms).expect("renumbering keeps consistency"),
                )
            })
            .collect();
        rel.set_rows(rows);
    }
    ws.components = new_set;
}
