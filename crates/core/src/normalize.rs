//! Normalization of world-set decompositions.
//!
//! The rewrites below preserve the *instance distribution* of the world set
//! ([`WorldSet::instance_distribution`]): the induced probability
//! distribution over database contents is exactly the same before and after,
//! even though the raw number of worlds may shrink (dropping an unreferenced
//! component merges worlds that were indistinguishable anyway).
//!
//! Per relation, to a fixpoint:
//!
//! 1. **Trivial-assignment stripping** — assignments to single-alternative
//!    components always hold and are removed from descriptors.
//! 2. **Duplicate elimination** — identical `(tuple, descriptor)` rows are
//!    merged (set semantics).
//! 3. **Absorption** — if one of a tuple's descriptors is a subset (as a set
//!    of assignments) of another, the larger one denotes a subset of the
//!    smaller one's worlds and is dropped.
//! 4. **Coverage merging** — if a tuple carries `D ∧ c=a` for *every*
//!    alternative `a` of component `c`, those rows merge into the single row
//!    `D`: the tuple's presence no longer depends on `c`. This is how
//!    components that an operation has made irrelevant become independent of
//!    the relation again.
//!
//! Finally, components referenced by no relation are **garbage collected**
//! and the remaining components are renumbered densely.

use std::collections::{BTreeMap, BTreeSet};

use crate::component::ComponentSet;
use crate::descriptor::{ComponentId, WsDescriptor};
use crate::rel::Tuple;
use crate::world::WorldSet;

/// Normalize a world set in place. See the module docs for the rewrites.
pub fn normalize(ws: &mut WorldSet) {
    let components = ws.components.clone();
    for rel in ws.relations.values_mut() {
        let rows = rel.take_rows();
        rel.set_rows(normalize_rows(rows, &components));
    }
    gc_components(ws);
}

/// Normalize one relation's rows against a component set.
///
/// The rewrites (dedup, absorption, coverage merging) only ever relate rows
/// carrying the *same* tuple, so after one global sort each tuple group can
/// be simplified to its own local fixpoint independently — the relation is
/// never re-sorted or rebuilt per iteration, and tuples are moved (cloned
/// only when a tuple keeps several descriptors), which is what keeps
/// normalization linearithmic-plus-local-work on large relations.
pub fn normalize_rows(
    rows: Vec<(Tuple, WsDescriptor)>,
    components: &ComponentSet,
) -> Vec<(Tuple, WsDescriptor)> {
    let mut rows: Vec<(Tuple, WsDescriptor)> = rows
        .into_iter()
        .map(|(t, d)| (t, strip_trivial(d, components)))
        .collect();
    rows.sort_unstable();
    rows.dedup();

    let mut out: Vec<(Tuple, WsDescriptor)> = Vec::with_capacity(rows.len());
    let mut it = rows.into_iter().peekable();
    while let Some((tuple, first_desc)) = it.next() {
        let mut descs = vec![first_desc];
        while it.peek().is_some_and(|(t, _)| *t == tuple) {
            descs.push(it.next().expect("peeked").1);
        }
        if descs.len() > 1 {
            // Local fixpoint: each pass re-sorts and dedups only this
            // tuple's descriptors before trying the rewrites again.
            loop {
                descs.sort_unstable();
                descs.dedup();
                if !simplify_disjunction(&mut descs, components) {
                    break;
                }
            }
        }
        // Emit in canonical (tuple, descriptor) order; the tuple is moved
        // into the group's last row and cloned only for the rows before it.
        let last = descs.len() - 1;
        let mut ds = descs.into_iter();
        for _ in 0..last {
            out.push((tuple.clone(), ds.next().expect("before last")));
        }
        out.push((tuple, ds.next().expect("last descriptor")));
    }
    out
}

/// Remove assignments to components with a single alternative.
fn strip_trivial(d: WsDescriptor, components: &ComponentSet) -> WsDescriptor {
    if d.terms()
        .iter()
        .all(|&(c, _)| components.get(c).alternatives() > 1)
    {
        return d;
    }
    let terms: Vec<_> = d
        .terms()
        .iter()
        .copied()
        .filter(|&(c, _)| components.get(c).alternatives() > 1)
        .collect();
    WsDescriptor::from_terms(terms).expect("filtering terms cannot introduce conflicts")
}

/// Apply absorption and coverage merging to the descriptors of one tuple.
/// Returns true when anything changed.
fn simplify_disjunction(descs: &mut Vec<WsDescriptor>, components: &ComponentSet) -> bool {
    let mut changed = false;

    // Absorption: drop any descriptor that another (strictly more general)
    // descriptor subsumes.
    let mut keep = vec![true; descs.len()];
    for a in 0..descs.len() {
        if !keep[a] {
            continue;
        }
        for b in 0..descs.len() {
            if a != b && keep[b] && descs[a].is_subset_of(&descs[b]) && descs[a] != descs[b] {
                keep[b] = false;
                changed = true;
            }
        }
    }
    if changed {
        let mut it = keep.iter();
        descs.retain(|_| *it.next().expect("keep mask matches descs length"));
    }

    // Coverage merging: if `base ∧ c=a` is present for every alternative `a`
    // of some component `c`, replace those rows with `base`.
    'restart: loop {
        for idx in 0..descs.len() {
            let d = descs[idx].clone();
            for &(c, _) in d.terms() {
                let base = d.without(c);
                let n = components.get(c).alternatives();
                let variant = |a: u16| {
                    base.conjoin(&WsDescriptor::single(c, a))
                        .expect("base has no assignment for c")
                };
                if (0..n).all(|a| descs.contains(&variant(a))) {
                    descs.retain(|x| !(0..n).any(|a| *x == variant(a)));
                    descs.push(base);
                    changed = true;
                    continue 'restart;
                }
            }
        }
        break;
    }
    changed
}

/// Drop components no relation references and renumber the rest densely.
fn gc_components(ws: &mut WorldSet) {
    let used: BTreeSet<ComponentId> = ws
        .relations
        .values()
        .flat_map(|r| r.rows().iter())
        .flat_map(|(_, d)| d.terms().iter().map(|&(c, _)| c))
        .collect();
    if used.len() == ws.components.len() {
        return;
    }
    let remap_table: BTreeMap<ComponentId, ComponentId> = used
        .iter()
        .enumerate()
        .map(|(i, &c)| (c, ComponentId(i as u32)))
        .collect();
    let remap = |c: ComponentId| remap_table[&c];
    let mut new_set = ComponentSet::new();
    for &c in &used {
        new_set.add(ws.components.get(c).clone());
    }
    for rel in ws.relations.values_mut() {
        let rows = rel
            .take_rows()
            .into_iter()
            .map(|(t, d)| {
                let terms: Vec<_> = d.terms().iter().map(|&(c, a)| (remap(c), a)).collect();
                (
                    t,
                    WsDescriptor::from_terms(terms).expect("renumbering keeps consistency"),
                )
            })
            .collect();
        rel.set_rows(rows);
    }
    ws.components = new_set;
}
