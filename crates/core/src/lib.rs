pub fn placeholder() {}
