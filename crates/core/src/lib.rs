//! # maybms-core — the representation layer
//!
//! This crate implements the *world-set decomposition* (WSD) representation
//! of incomplete and probabilistic databases from Antova, Koch & Olteanu,
//! "Query language support for incomplete information in the MayBMS system"
//! (VLDB 2007), together with the supporting value/schema/tuple machinery.
//!
//! A finite set of possible worlds is not stored extensionally. Instead it is
//! *decomposed* into a product of independent **components**
//! ([`component::Component`]): each component is a finite probability
//! distribution over a small set of *alternatives* (its local worlds), and a
//! possible world of the whole database is obtained by independently picking
//! one alternative for every component. Tuples of an uncertain relation
//! ([`urel::URelation`]) are annotated with **world-set descriptors**
//! ([`descriptor::WsDescriptor`]) — conjunctions of component assignments —
//! that say in exactly which worlds the tuple appears.
//!
//! The crate also provides:
//!
//! * [`world::WorldSet`] — a complete uncertain database (component set plus
//!   named u-relations) with exhaustive **world enumeration**, which serves as
//!   the *naive oracle* that the algebra layer is differentially tested
//!   against;
//! * [`intern`] — the descriptor pool: each distinct descriptor is mapped to
//!   a dense `u32` [`DescId`] (with inline storage for the dominant 0/1/2-term
//!   cases), so the executor conjoins, hashes, and deduplicates on integers
//!   instead of re-allocating sorted term vectors;
//! * [`columnar`] — the columnar execution form of a u-relation: one typed
//!   vector per attribute (strings dictionary-encoded through a [`StrPool`])
//!   plus the dense [`DescId`] column, with exact row↔columnar conversion;
//!   this is what the vectorized executor in `maybms-algebra` and the
//!   columnar normalization path scan;
//! * [`normalize`] — descriptor simplification, absorption, merging of rows
//!   that cover all alternatives of a component, and garbage collection of
//!   unreferenced components;
//! * [`naive`] — plain (single-world) implementations of the positive
//!   relational algebra used by the per-world oracle;
//! * [`stats`] — one-pass per-relation statistics (KMV distinct-count
//!   sketches, min/max, descriptor density) that the cost-based optimizer
//!   phase in `maybms-algebra` plans against;
//! * [`obs`] — observability: the per-query [`Tracer`]/[`QueryTrace`] span
//!   machinery behind `EXPLAIN ANALYZE` and Chrome-trace export, plus the
//!   process-wide [`metrics`] registry (counters and log-linear histograms)
//!   that every executor run feeds;
//! * [`rng`] — tiny deterministic PRNGs: a sequential SplitMix64 so that
//!   property tests and benches need no external crates (the container has
//!   no registry access, so `proptest`/`criterion` are intentionally not
//!   used), and a splittable counter-based generator whose draws are pure
//!   functions of `(seed, stream, index)` — the determinism backbone of the
//!   sampling confidence solver in `maybms-ql`.
//!
//! Layering: `maybms-core` knows nothing about query plans. The algebra IR
//! and its WSD-level executor live in `maybms-algebra`, and the paper's
//! uncertainty constructs (`repair-key`, `possible`, `certain`, `conf`) live
//! in `maybms-ql`.

pub mod bloom;
pub mod columnar;
pub mod component;
pub mod descriptor;
pub mod error;
pub mod fxhash;
pub mod intern;
pub mod naive;
pub mod normalize;
pub mod obs;
pub mod parallel;
pub mod rel;
pub mod rng;
pub mod schema;
pub mod stats;
pub mod urel;
pub mod value;
pub mod world;

pub use bloom::BlockedBloom;
pub use columnar::{ColView, ColumnData, ColumnVec, ColumnarURelation, StrPool};
pub use component::{connected_groups, Component, ComponentSet, ConfStats, WorldPick};
pub use descriptor::{ComponentId, WsDescriptor};
pub use error::MayError;
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet};
pub use intern::{DescId, DescriptorPool, PoolStats};
pub use obs::{metrics, Metrics, ObsCounters, QueryTrace, Span, SpanId, SpanKind, Tracer};
pub use parallel::{ParCfg, ParStats};
pub use rel::{Relation, Tuple};
pub use schema::{Column, Schema};
pub use stats::{collect as collect_stats, world_set_stats, ColumnStats, KmvSketch, RelationStats};
pub use urel::URelation;
pub use value::{Value, ValueType, F64};
pub use world::WorldSet;
