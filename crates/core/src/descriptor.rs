//! World-set descriptors: conjunctions of component assignments.

use std::fmt;

use crate::component::WorldPick;

/// Identifier of a component (an independent finite random variable) in a
/// [`crate::component::ComponentSet`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ComponentId(pub u32);

impl fmt::Display for ComponentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// A world-set descriptor: a conjunction of assignments `c = alternative`,
/// one per distinct component, kept sorted by component id.
///
/// A descriptor denotes the set of worlds in which every listed component
/// takes the listed alternative. The empty descriptor is the tautology
/// (all worlds). Descriptors over *distinct* components are independent,
/// which is what makes exact confidence computation on them tractable per
/// tuple (it only needs to enumerate the components that actually occur in
/// the tuple's descriptors).
#[derive(Clone, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WsDescriptor {
    terms: Vec<(ComponentId, u16)>,
}

impl WsDescriptor {
    /// The descriptor holding in every world.
    pub fn tautology() -> Self {
        WsDescriptor::default()
    }

    /// A descriptor with the single assignment `component = alternative`.
    pub fn single(component: ComponentId, alternative: u16) -> Self {
        WsDescriptor {
            terms: vec![(component, alternative)],
        }
    }

    /// Build a descriptor from assignments. Returns `None` if the same
    /// component is assigned two different alternatives (the empty world set).
    pub fn from_terms(mut terms: Vec<(ComponentId, u16)>) -> Option<Self> {
        terms.sort_unstable();
        terms.dedup();
        for w in terms.windows(2) {
            if w[0].0 == w[1].0 {
                return None;
            }
        }
        Some(WsDescriptor { terms })
    }

    /// Build a descriptor from terms already sorted by strictly increasing
    /// component id (the interner stores term lists in exactly this form).
    pub(crate) fn from_sorted_terms_unchecked(terms: Vec<(ComponentId, u16)>) -> Self {
        debug_assert!(
            terms.windows(2).all(|w| w[0].0 < w[1].0),
            "terms must be strictly sorted by component id"
        );
        WsDescriptor { terms }
    }

    /// True for the empty (all-worlds) descriptor.
    pub fn is_tautology(&self) -> bool {
        self.terms.is_empty()
    }

    /// The assignments, sorted by component id.
    pub fn terms(&self) -> &[(ComponentId, u16)] {
        &self.terms
    }

    /// The alternative this descriptor assigns to `c`, if any.
    pub fn get(&self, c: ComponentId) -> Option<u16> {
        self.terms
            .binary_search_by_key(&c, |&(id, _)| id)
            .ok()
            .map(|i| self.terms[i].1)
    }

    /// Conjoin two descriptors. Returns `None` when they are inconsistent
    /// (assign different alternatives to the same component), i.e. the
    /// conjunction denotes no worlds.
    pub fn conjoin(&self, other: &WsDescriptor) -> Option<WsDescriptor> {
        let mut out = Vec::new();
        if merge_sorted_terms(&self.terms, &other.terms, &mut out) {
            Some(WsDescriptor { terms: out })
        } else {
            None
        }
    }

    /// Whether the descriptor holds in the world selected by `pick`.
    pub fn satisfied_by(&self, pick: &WorldPick) -> bool {
        self.terms.iter().all(|&(c, alt)| pick.choice(c) == alt)
    }

    /// This descriptor with any assignment to `c` removed (a superset of
    /// worlds).
    pub fn without(&self, c: ComponentId) -> WsDescriptor {
        WsDescriptor {
            terms: self
                .terms
                .iter()
                .copied()
                .filter(|&(id, _)| id != c)
                .collect(),
        }
    }

    /// True when every assignment of `self` also occurs in `other`. In that
    /// case `other` denotes a subset of the worlds of `self`, so in a
    /// disjunction of descriptors `other` is absorbed by `self`.
    pub fn is_subset_of(&self, other: &WsDescriptor) -> bool {
        self.terms
            .iter()
            .all(|t| other.terms.binary_search(t).is_ok())
    }
}

/// Merge two term lists sorted by strictly increasing component id into
/// `out` (appended). Returns `false` — leaving `out` in an unspecified
/// state — when the lists assign different alternatives to the same
/// component. Shared by [`WsDescriptor::conjoin`], the descriptor interner,
/// and the inclusion–exclusion confidence path, all of which conjoin
/// sorted term lists without materializing intermediate descriptors.
pub(crate) fn merge_sorted_terms(
    a: &[(ComponentId, u16)],
    b: &[(ComponentId, u16)],
    out: &mut Vec<(ComponentId, u16)>,
) -> bool {
    out.reserve(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].0.cmp(&b[j].0) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                if a[i].1 != b[j].1 {
                    return false;
                }
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    true
}

impl fmt::Display for WsDescriptor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_tautology() {
            return f.write_str("⊤");
        }
        for (i, (c, alt)) in self.terms.iter().enumerate() {
            if i > 0 {
                f.write_str(" ∧ ")?;
            }
            write!(f, "{c}={alt}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conjoin_merges_and_detects_conflicts() {
        let a = WsDescriptor::single(ComponentId(0), 1);
        let b = WsDescriptor::single(ComponentId(1), 0);
        let ab = a.conjoin(&b).unwrap();
        assert_eq!(ab.terms(), &[(ComponentId(0), 1), (ComponentId(1), 0)]);
        assert_eq!(ab.conjoin(&a), Some(ab.clone()));
        let conflict = WsDescriptor::single(ComponentId(0), 2);
        assert_eq!(a.conjoin(&conflict), None);
    }

    #[test]
    fn subset_and_without() {
        let a = WsDescriptor::single(ComponentId(0), 1);
        let ab = a.conjoin(&WsDescriptor::single(ComponentId(1), 0)).unwrap();
        assert!(a.is_subset_of(&ab));
        assert!(!ab.is_subset_of(&a));
        assert_eq!(ab.without(ComponentId(1)), a);
    }

    #[test]
    fn from_terms_rejects_conflicts() {
        assert!(WsDescriptor::from_terms(vec![(ComponentId(0), 1), (ComponentId(0), 2)]).is_none());
        let d = WsDescriptor::from_terms(vec![(ComponentId(1), 0), (ComponentId(0), 1)]).unwrap();
        assert_eq!(d.terms()[0].0, ComponentId(0));
    }
}
