//! # maybms-ql — the uncertainty query constructs
//!
//! The paper's query-language constructs for incomplete information,
//! implemented as [`maybms_algebra::ExtOperator`] plan operators:
//!
//! * [`repair_key`] — *introduces* uncertainty: all maximal repairs of a key
//!   constraint become alternative worlds, optionally weighted by a column
//!   (`repair key A in R weight by w`). Each key group becomes one fresh
//!   independent component.
//! * [`possible`] — tuples occurring in *at least one* world (a certain
//!   relation).
//! * [`certain`] — tuples occurring in *every* world, decided exactly by
//!   enumerating only the components a tuple's descriptors mention.
//! * [`conf`] — exact tuple confidence: the probability of the disjunction
//!   of the tuple's descriptors, appended as a `conf` float column. Exact
//!   confidence computation is #P-hard in general; this implementation is
//!   exponential only in the number of components relevant to each tuple and
//!   is the ground truth future approximation PRs will be measured against.
//!
//! All four compose freely with the positive relational algebra of
//! `maybms-algebra`: they are ordinary plan nodes.

mod confidence;
mod extract;
mod order;
mod repair;

pub use confidence::{conf, Conf, CONF_COLUMN};
pub use extract::{certain, possible, Certain, Possible};
pub use repair::{repair_key, RepairKey};
