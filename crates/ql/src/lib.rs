//! # maybms-ql — the uncertainty query constructs
//!
//! The paper's query-language constructs for incomplete information,
//! implemented as [`maybms_algebra::ExtOperator`] plan operators:
//!
//! * [`repair_key`] — *introduces* uncertainty: all maximal repairs of a key
//!   constraint become alternative worlds, optionally weighted by a column
//!   (`repair key A in R weight by w`). Each key group becomes one fresh
//!   independent component.
//! * [`possible`] — tuples occurring in *at least one* world (a certain
//!   relation).
//! * [`certain`] — tuples occurring in *every* world, decided exactly by
//!   enumerating only the components a tuple's descriptors mention.
//! * [`conf`] — exact tuple confidence: the probability of the disjunction
//!   of the tuple's descriptors, appended as a `conf` float column. Exact
//!   confidence computation is #P-hard in general; this implementation is
//!   exponential only in the largest connected descriptor group of each
//!   tuple and is the ground truth the sampling solver is measured against.
//! * [`conf_approx`] — (ε, δ)-approximate tuple confidence
//!   (`SELECT CONF(eps, delta) …`): connected groups whose exact cost bound
//!   is under a cutover threshold ([`DEFAULT_CONF_EXACT_LIMIT`], overridable
//!   per node or via `MAYBMS_CONF_EXACT_LIMIT`) keep the exact factorized
//!   path; larger groups are estimated by deterministic, content-keyed
//!   Monte Carlo or Karp–Luby sampling with Hoeffding-derived draw counts.
//!
//! All five compose freely with the positive relational algebra of
//! `maybms-algebra`: they are ordinary plan nodes.

mod confidence;
mod extract;
mod order;
mod repair;

pub use confidence::{
    conf, conf_approx, conf_approx_with, conf_exact_limit_from_env, ApproxConf, Conf, CONF_COLUMN,
    CONF_EXACT_LIMIT_ENV, DEFAULT_CONF_EXACT_LIMIT, DEFAULT_CONF_SEED,
};
pub use extract::{certain, possible, Certain, Possible};
pub use repair::{repair_key, RepairKey};
