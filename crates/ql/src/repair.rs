//! `repair-key`: turn key violations into alternative worlds.

use std::sync::Arc;

use maybms_algebra::{EvalCtx, ExtOperator, ExtProps, Plan};
use maybms_core::columnar::ColumnarURelation;
use maybms_core::{Component, DescId, MayError, Schema};

use crate::order::sorted_row_ids;

/// The `repair key A₁..Aₖ in R [weight by W]` operator.
///
/// The input must be a *certain* relation. Its tuples are grouped by the key
/// columns; every way of picking exactly one tuple per group is one maximal
/// repair of the key constraint, and the operator makes each repair a
/// possible world. Each group with more than one tuple becomes a fresh
/// independent component whose alternatives are the group members, with
/// probabilities proportional to the weight column (uniform when absent).
///
/// Grouping and alternative numbering are deterministic (tuples are sorted),
/// so equal inputs always produce identical decompositions.
#[derive(Debug)]
pub struct RepairKey {
    input: Plan,
    key: Vec<String>,
    weight: Option<String>,
}

/// Build a `repair-key` plan node. `weight`, when given, names a numeric
/// column whose values weight the alternatives within each key group.
pub fn repair_key(input: Plan, key: &[&str], weight: Option<&str>) -> Plan {
    Plan::Ext(Arc::new(RepairKey {
        input,
        key: key.iter().map(|k| k.to_string()).collect(),
        weight: weight.map(|w| w.to_string()),
    }))
}

impl ExtOperator for RepairKey {
    fn name(&self) -> &'static str {
        "repair-key"
    }

    fn describe(&self) -> String {
        match &self.weight {
            Some(w) => format!("repair-key[key={}; weight={w}]", self.key.join(", ")),
            None => format!("repair-key[key={}]", self.key.join(", ")),
        }
    }

    fn unparse_mayql(&self, inputs: &[String]) -> Option<String> {
        let mut s = format!("REPAIR KEY {} IN {}", self.key.join(", "), inputs[0]);
        if let Some(w) = &self.weight {
            s.push_str(" WEIGHT BY ");
            s.push_str(w);
        }
        Some(s)
    }

    fn props(&self) -> ExtProps {
        ExtProps {
            // Nothing commutes across repair-key: a selection below it
            // would change which tuples form a key group (and with them the
            // alternatives and their weights), and a projection could drop
            // key or weight columns. It is a rewrite barrier; only its
            // input is optimized, under the normalized-input guard.
            commutes_with_select: false,
            commutes_with_project: false,
            requires_normalized_input: true,
            distinct_output: true,
            certain_output: false,
            identity_on_certain: false,
            distributes_over_union: false,
        }
    }

    fn estimate_rows(&self, input_rows: f64, _input_distinct: f64, _nontrivial_frac: f64) -> f64 {
        // Row-preserving: every input tuple survives as one alternative of
        // its key group (the normalized input is already duplicate-free).
        input_rows
    }

    fn with_inputs(&self, mut inputs: Vec<Plan>) -> Option<Plan> {
        let key: Vec<&str> = self.key.iter().map(String::as_str).collect();
        Some(repair_key(inputs.remove(0), &key, self.weight.as_deref()))
    }

    fn inputs(&self) -> Vec<&Plan> {
        vec![&self.input]
    }

    fn output_schema(&self, inputs: &[Schema]) -> Result<Schema, MayError> {
        let schema = &inputs[0];
        for k in &self.key {
            schema.col_index(k)?;
        }
        if let Some(w) = &self.weight {
            schema.col_index(w)?;
        }
        Ok(schema.clone())
    }

    fn eval(
        &self,
        ctx: &mut EvalCtx<'_>,
        inputs: Vec<ColumnarURelation>,
    ) -> Result<ColumnarURelation, MayError> {
        let r = &inputs[0];
        if !r.is_certain() {
            return Err(MayError::NotCertain(
                "repair-key expects a certain relation; apply possible/certain first".into(),
            ));
        }
        let key_idx: Vec<usize> = self
            .key
            .iter()
            .map(|k| r.schema().col_index(k))
            .collect::<Result<_, _>>()?;
        let weight_idx = self
            .weight
            .as_ref()
            .map(|w| r.schema().col_index(w))
            .transpose()?;

        // Deterministic grouping on row ids: distinct tuples in canonical
        // order, then a *stable* re-sort by the key columns — groups appear
        // in ascending key order, and within a group the members keep their
        // ascending full-tuple order, so alternative numbering is identical
        // across runs over equal inputs. `par_sort_by` reproduces a stable
        // sort exactly, so the parallel path preserves that numbering;
        // component minting stays sequential (in group order), keeping the
        // minted `ComponentId`s identical across thread counts.
        let mut perm = sorted_row_ids(r, ctx);
        perm.dedup_by(|&mut i, &mut j| r.rows_eq(i as usize, j as usize));
        let key_sort_started = ctx.tracer.now();
        let strings = &ctx.strings;
        let by_key = |&i: &u32, &j: &u32| {
            key_idx
                .iter()
                .map(|&k| {
                    r.column(k)
                        .cmp_cells(i as usize, r.column(k), j as usize, strings)
                })
                .find(|o| *o != std::cmp::Ordering::Equal)
                .unwrap_or(std::cmp::Ordering::Equal)
        };
        let workers = ctx.par.workers_for(perm.len());
        if workers <= 1 {
            perm.sort_by(by_key);
        } else {
            ctx.par_stats.note_stage(workers, workers);
            maybms_core::parallel::par_sort_by(&mut perm, workers, by_key);
        }
        ctx.tracer
            .event("key-sort", key_sort_started, perm.len() as u64);
        let key_eq = |i: u32, j: u32| {
            key_idx
                .iter()
                .all(|&k| r.column(k).eq_cells(i as usize, r.column(k), j as usize))
        };

        let mint_started = ctx.tracer.now();
        let mut groups_minted = 0u64;
        let mut descs: Vec<DescId> = Vec::with_capacity(perm.len());
        let mut start = 0;
        while start < perm.len() {
            let mut end = start + 1;
            while end < perm.len() && key_eq(perm[start], perm[end]) {
                end += 1;
            }
            let group = &perm[start..end];
            if group.len() == 1 {
                // A unique key value needs no repair: the tuple is certain.
                descs.push(DescId::TAUTOLOGY);
                start = end;
                continue;
            }
            let weights: Vec<f64> = match weight_idx {
                None => vec![1.0; group.len()],
                Some(wi) => group
                    .iter()
                    .map(|&row| {
                        r.column(wi).cell_f64(row as usize).ok_or_else(|| {
                            MayError::InvalidWeight(format!(
                                "non-numeric weight {} in tuple {}",
                                r.column(wi).value(row as usize, &ctx.strings),
                                r.tuple_at(row as usize, &ctx.strings)
                            ))
                        })
                    })
                    .collect::<Result<_, _>>()?,
            };
            // Propagate as-is: InvalidComponent already distinguishes bad
            // weights from e.g. a key group exceeding the alternative limit.
            let component = Component::from_weights(&weights)?;
            let cid = ctx.components.add(component);
            groups_minted += 1;
            for alt in 0..group.len() {
                descs.push(ctx.pool.single(cid, alt as u16));
            }
            start = end;
        }
        ctx.tracer
            .event("mint-components", mint_started, groups_minted);
        // Output tuples are exactly the distinct input rows, gathered
        // column-wise in group order.
        Ok(r.gather_with_descs(&perm, descs))
    }
}
