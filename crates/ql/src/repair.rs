//! `repair-key`: turn key violations into alternative worlds.

use std::collections::BTreeMap;
use std::sync::Arc;

use maybms_algebra::{EvalCtx, ExtOperator, Plan};
use maybms_core::{Component, MayError, Schema, Tuple, URelation, Value, WsDescriptor};

/// The `repair key A₁..Aₖ in R [weight by W]` operator.
///
/// The input must be a *certain* relation. Its tuples are grouped by the key
/// columns; every way of picking exactly one tuple per group is one maximal
/// repair of the key constraint, and the operator makes each repair a
/// possible world. Each group with more than one tuple becomes a fresh
/// independent component whose alternatives are the group members, with
/// probabilities proportional to the weight column (uniform when absent).
///
/// Grouping and alternative numbering are deterministic (tuples are sorted),
/// so equal inputs always produce identical decompositions.
#[derive(Debug)]
pub struct RepairKey {
    input: Plan,
    key: Vec<String>,
    weight: Option<String>,
}

/// Build a `repair-key` plan node. `weight`, when given, names a numeric
/// column whose values weight the alternatives within each key group.
pub fn repair_key(input: Plan, key: &[&str], weight: Option<&str>) -> Plan {
    Plan::Ext(Arc::new(RepairKey {
        input,
        key: key.iter().map(|k| k.to_string()).collect(),
        weight: weight.map(|w| w.to_string()),
    }))
}

impl ExtOperator for RepairKey {
    fn name(&self) -> &'static str {
        "repair-key"
    }

    fn describe(&self) -> String {
        match &self.weight {
            Some(w) => format!("repair-key[key={}; weight={w}]", self.key.join(", ")),
            None => format!("repair-key[key={}]", self.key.join(", ")),
        }
    }

    fn unparse_mayql(&self, inputs: &[String]) -> Option<String> {
        let mut s = format!("REPAIR KEY {} IN {}", self.key.join(", "), inputs[0]);
        if let Some(w) = &self.weight {
            s.push_str(" WEIGHT BY ");
            s.push_str(w);
        }
        Some(s)
    }

    fn inputs(&self) -> Vec<&Plan> {
        vec![&self.input]
    }

    fn output_schema(&self, inputs: &[Schema]) -> Result<Schema, MayError> {
        let schema = &inputs[0];
        for k in &self.key {
            schema.col_index(k)?;
        }
        if let Some(w) = &self.weight {
            schema.col_index(w)?;
        }
        Ok(schema.clone())
    }

    fn eval(&self, ctx: &mut EvalCtx<'_>, inputs: Vec<URelation>) -> Result<URelation, MayError> {
        let r = &inputs[0];
        if !r.is_certain() {
            return Err(MayError::NotCertain(
                "repair-key expects a certain relation; apply possible/certain first".into(),
            ));
        }
        let key_idx: Vec<usize> = self
            .key
            .iter()
            .map(|k| r.schema().col_index(k))
            .collect::<Result<_, _>>()?;
        let weight_idx = self
            .weight
            .as_ref()
            .map(|w| r.schema().col_index(w))
            .transpose()?;

        // Deterministic grouping: distinct tuples in canonical order.
        let mut tuples: Vec<&Tuple> = r.rows().iter().map(|(t, _)| t).collect();
        tuples.sort_unstable();
        tuples.dedup();
        let mut groups: BTreeMap<Vec<Value>, Vec<&Tuple>> = BTreeMap::new();
        for t in tuples {
            groups
                .entry(t.project(&key_idx).values().to_vec())
                .or_default()
                .push(t);
        }

        // Output tuples are exactly the (schema-checked) input tuples, so
        // the bulk unchecked path applies throughout.
        let mut out = URelation::new(r.schema().clone());
        out.reserve(groups.values().map(Vec::len).sum());
        for group in groups.values() {
            if group.len() == 1 {
                // A unique key value needs no repair: the tuple is certain.
                out.push_unchecked(group[0].clone(), WsDescriptor::tautology());
                continue;
            }
            let weights: Vec<f64> = match weight_idx {
                None => vec![1.0; group.len()],
                Some(wi) => group
                    .iter()
                    .map(|t| {
                        t.get(wi).as_f64().ok_or_else(|| {
                            MayError::InvalidWeight(format!(
                                "non-numeric weight {} in tuple {t}",
                                t.get(wi)
                            ))
                        })
                    })
                    .collect::<Result<_, _>>()?,
            };
            // Propagate as-is: InvalidComponent already distinguishes bad
            // weights from e.g. a key group exceeding the alternative limit.
            let component = Component::from_weights(&weights)?;
            let cid = ctx.components.add(component);
            for (alt, t) in group.iter().enumerate() {
                out.push_unchecked((*t).clone(), WsDescriptor::single(cid, alt as u16));
            }
        }
        Ok(out)
    }
}
