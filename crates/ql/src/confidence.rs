//! `conf`: exact tuple confidence from component probabilities.

use std::sync::Arc;

use maybms_algebra::{EvalCtx, ExtOperator, ExtProps, Plan};
use maybms_core::columnar::{ColumnVec, ColumnarURelation};
use maybms_core::parallel::{chunk_ranges, run_tasks};
use maybms_core::{Column, DescId, MayError, Schema, ValueType, WsDescriptor};

use crate::order::{run_bounds, sorted_row_ids};

// `Conf::eval` computes P(t) = P(d₁ ∨ … ∨ dₙ) per distinct tuple via
// `ComponentSet::prob_of_dnf`, which factorizes the disjunction into
// connected descriptor groups over shared components and multiplies the
// per-group probabilities (`P = 1 − Π(1 − P_group)` by independence). The
// cost is exponential only in the largest *connected* group — two disjoint
// 10-component groups cost two 10-component solves, not one 20-component
// enumeration — and each group is solved by the cheaper of
// inclusion–exclusion and assignment enumeration.

/// Name of the appended confidence column.
pub const CONF_COLUMN: &str = "conf";

/// The `conf R` operator: for every distinct tuple of `R`, the exact
/// probability of the worlds containing it, appended as a `conf` column.
/// The result is a certain relation (the confidences themselves are facts
/// about the world set, not uncertain data).
#[derive(Debug)]
pub struct Conf {
    input: Plan,
}

/// Build a `conf` plan node.
pub fn conf(input: Plan) -> Plan {
    Plan::Ext(Arc::new(Conf { input }))
}

impl ExtOperator for Conf {
    fn name(&self) -> &'static str {
        "conf"
    }

    fn unparse_mayql(&self, inputs: &[String]) -> Option<String> {
        Some(format!("SELECT CONF * FROM {}", inputs[0]))
    }

    fn props(&self) -> ExtProps {
        ExtProps {
            // A tuple's confidence depends only on its own descriptors, so
            // removing *other* tuples first changes nothing: σ commutes as
            // long as the predicate reads input columns (the optimizer's
            // input-schema guard keeps predicates over the appended `conf`
            // column above). Projection does NOT commute — it changes which
            // rows count as one tuple, and with them the disjunctions.
            commutes_with_select: true,
            commutes_with_project: false,
            requires_normalized_input: false,
            distinct_output: true,
            certain_output: true,
            // Not an identity even on certain input: it appends a column.
            identity_on_certain: false,
        }
    }

    fn with_inputs(&self, mut inputs: Vec<Plan>) -> Option<Plan> {
        Some(conf(inputs.remove(0)))
    }

    fn inputs(&self) -> Vec<&Plan> {
        vec![&self.input]
    }

    fn output_schema(&self, inputs: &[Schema]) -> Result<Schema, MayError> {
        let mut cols = inputs[0].columns().to_vec();
        cols.push(Column::new(CONF_COLUMN, ValueType::Float));
        // Schema::new rejects an input that already has a `conf` column.
        Schema::new(cols)
    }

    fn eval(
        &self,
        ctx: &mut EvalCtx<'_>,
        inputs: Vec<ColumnarURelation>,
    ) -> Result<ColumnarURelation, MayError> {
        let r = &inputs[0];
        let schema = self.output_schema(&[r.schema().clone()])?;
        // Group the rows of each distinct tuple as one contiguous run of a
        // sorted id permutation; the value columns are gathered once at the
        // end and the `conf` column is built as a raw float vector.
        let perm = sorted_row_ids(r, &ctx.pool, &ctx.strings, &ctx.par, &mut ctx.par_stats);
        let bounds = run_bounds(r, &perm);
        // P(t in DB) = P(d₁ ∨ … ∨ dₙ), exact over the components the
        // descriptors mention (they are independent of all others). The
        // handles are resolved to descriptors once per distinct tuple, at
        // this probabilistic-engine boundary. Each run is independent and
        // the canonical order is total on descriptor content, so the
        // per-run solves parallelize over morsels of runs with bit-exact
        // results for every thread count.
        let workers = ctx.par.workers_for(perm.len());
        let pool = &ctx.pool;
        let components = &*ctx.components;
        let solve_runs = |range: std::ops::Range<usize>| {
            let mut kept: Vec<u32> = Vec::with_capacity(range.len());
            let mut confs: Vec<f64> = Vec::with_capacity(range.len());
            for &(start, end) in &bounds[range] {
                let descs: Vec<WsDescriptor> = perm[start as usize..end as usize]
                    .iter()
                    .map(|&i| pool.to_descriptor(r.descs()[i as usize]))
                    .collect();
                kept.push(perm[start as usize]);
                confs.push(components.prob_of_dnf(&descs));
            }
            (kept, confs)
        };
        let (kept, confs) = if workers <= 1 {
            solve_runs(0..bounds.len())
        } else {
            let morsels = chunk_ranges(bounds.len(), workers * 4);
            ctx.par_stats.note_stage(workers, morsels.len());
            let parts = run_tasks(workers, morsels.len(), |t| solve_runs(morsels[t].clone()));
            let mut kept: Vec<u32> = Vec::with_capacity(bounds.len());
            let mut confs: Vec<f64> = Vec::with_capacity(bounds.len());
            for (k, c) in parts {
                kept.extend_from_slice(&k);
                confs.extend_from_slice(&c);
            }
            (kept, confs)
        };
        let mut cols: Vec<ColumnVec> = r.columns().iter().map(|c| c.gather(&kept)).collect();
        cols.push(ColumnVec::from_floats(confs));
        let descs = vec![DescId::TAUTOLOGY; kept.len()];
        Ok(ColumnarURelation::from_parts(schema, cols, descs))
    }
}
