//! `conf`: exact tuple confidence from component probabilities.

use std::sync::Arc;

use maybms_algebra::{EvalCtx, ExtOperator, Plan};
use maybms_core::{Column, MayError, Schema, URelation, Value, ValueType, WsDescriptor};

// `Conf::eval` computes P(t) = P(d₁ ∨ … ∨ dₙ) per distinct tuple via
// `ComponentSet::prob_of_dnf`, which factorizes the disjunction into
// connected descriptor groups over shared components and multiplies the
// per-group probabilities (`P = 1 − Π(1 − P_group)` by independence). The
// cost is exponential only in the largest *connected* group — two disjoint
// 10-component groups cost two 10-component solves, not one 20-component
// enumeration — and each group is solved by the cheaper of
// inclusion–exclusion and assignment enumeration.

/// Name of the appended confidence column.
pub const CONF_COLUMN: &str = "conf";

/// The `conf R` operator: for every distinct tuple of `R`, the exact
/// probability of the worlds containing it, appended as a `conf` column.
/// The result is a certain relation (the confidences themselves are facts
/// about the world set, not uncertain data).
#[derive(Debug)]
pub struct Conf {
    input: Plan,
}

/// Build a `conf` plan node.
pub fn conf(input: Plan) -> Plan {
    Plan::Ext(Arc::new(Conf { input }))
}

impl ExtOperator for Conf {
    fn name(&self) -> &'static str {
        "conf"
    }

    fn unparse_mayql(&self, inputs: &[String]) -> Option<String> {
        Some(format!("SELECT CONF * FROM {}", inputs[0]))
    }

    fn inputs(&self) -> Vec<&Plan> {
        vec![&self.input]
    }

    fn output_schema(&self, inputs: &[Schema]) -> Result<Schema, MayError> {
        let mut cols = inputs[0].columns().to_vec();
        cols.push(Column::new(CONF_COLUMN, ValueType::Float));
        // Schema::new rejects an input that already has a `conf` column.
        Schema::new(cols)
    }

    fn eval(&self, ctx: &mut EvalCtx<'_>, inputs: Vec<URelation>) -> Result<URelation, MayError> {
        let r = &inputs[0];
        let schema = self.output_schema(&[r.schema().clone()])?;
        let mut out = URelation::new(schema);
        let grouped = r.grouped();
        out.reserve(grouped.len());
        for (t, descs) in grouped {
            // P(t in DB) = P(d₁ ∨ … ∨ dₙ), exact over the components the
            // descriptors mention (they are independent of all others).
            // `prob_of_dnf` borrows the grouped descriptors directly.
            let p = ctx.components.prob_of_dnf(&descs);
            // `extended` appends the float `conf` column the output schema
            // declares, so the row is schema-correct by construction.
            out.push_unchecked(t.extended(Value::float(p)), WsDescriptor::tautology());
        }
        Ok(out)
    }
}
