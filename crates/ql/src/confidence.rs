//! `conf`: exact and (ε, δ)-approximate tuple confidence from component
//! probabilities.

use std::collections::BTreeSet;
use std::sync::Arc;

use maybms_algebra::{EvalCtx, ExtOperator, ExtProps, Plan};
use maybms_core::columnar::{ColumnVec, ColumnarURelation};
use maybms_core::component::connected_groups;
use maybms_core::parallel::{chunk_ranges, run_tasks};
use maybms_core::rng::{mix64, CounterRng};
use maybms_core::{
    Column, Component, ComponentId, ComponentSet, ConfStats, DescId, MayError, Schema, ValueType,
    WsDescriptor,
};

use crate::order::{run_bounds, sorted_row_ids};

// `Conf::eval` computes P(t) = P(d₁ ∨ … ∨ dₙ) per distinct tuple. Both
// solver paths factorize the disjunction into connected descriptor groups
// over shared components and multiply per-group probabilities
// (`P = 1 − Π(1 − P_group)` by independence), so the cost is driven by the
// largest *connected* group, never the total component count.
//
// * Exact `conf` solves every group by the cheaper of inclusion–exclusion
//   and assignment enumeration (`ComponentSet::prob_of_group`) — still
//   exponential in the group.
// * `conf(eps, delta)` compares each group's exact cost bound
//   (`ComponentSet::group_exact_cost`) against a cutover threshold: cheap
//   groups keep the exact path (zero error), expensive groups are estimated
//   by Monte Carlo over group assignments or by a Karp–Luby
//   importance-sampled estimator, with the draw count derived from the
//   per-group error budget via a Hoeffding bound. The result is within ε of
//   the exact confidence with probability ≥ 1 − δ, per output tuple.
//
// Sampling is deterministic: each group's draws come from a counter-based
// stream keyed on the *content* of the group's descriptors (component ids
// and alternatives), so the estimate for a tuple does not depend on thread
// count, morsel boundaries, or which other tuples are present — the same
// byte-stability contract the exact executor upholds, and the reason the
// optimizer may commute selections through approximate `conf` exactly as it
// does through exact `conf`.

/// Name of the appended confidence column.
pub const CONF_COLUMN: &str = "conf";

/// Environment knob for the exact/sampling cutover: connected groups whose
/// exact cost bound is ≤ this threshold are solved exactly even under
/// `conf(eps, delta)`; larger groups are sampled. `0` forces sampling for
/// every group. Only consulted by *approximate* conf nodes that carry no
/// explicit override — plain exact `CONF` never samples, whatever the
/// environment says.
pub const CONF_EXACT_LIMIT_ENV: &str = "MAYBMS_CONF_EXACT_LIMIT";

/// Default exact/sampling cutover threshold. Sampling a group costs on the
/// order of a few hundred draws for typical (ε, δ) (e.g. ε = 0.05, δ = 0.05
/// needs 738), each draw touching every group component — so groups whose
/// exact bound is under a few thousand operations are cheaper to solve
/// exactly, and exact means zero error.
pub const DEFAULT_CONF_EXACT_LIMIT: u64 = 4096;

/// Default sampling seed for `conf(eps, delta)` nodes built from SQL (which
/// has no seed syntax). Tests vary the seed through [`conf_approx_with`].
pub const DEFAULT_CONF_SEED: u64 = 0x5EED_C0FF_EE00_0007;

/// Parameters of an (ε, δ)-approximate confidence computation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ApproxConf {
    /// Absolute error bound: `|estimate − exact| ≤ eps` with probability
    /// ≥ `1 − delta`, per output tuple. Must lie in `(0, 1)`.
    pub eps: f64,
    /// Failure probability of the guarantee. Must lie in `(0, 1)`.
    pub delta: f64,
    /// Sampling seed. Equal seeds give bit-identical results.
    pub seed: u64,
    /// Exact/sampling cutover override; `None` defers to the
    /// [`CONF_EXACT_LIMIT_ENV`] environment knob, then
    /// [`DEFAULT_CONF_EXACT_LIMIT`].
    pub exact_limit: Option<u64>,
}

impl ApproxConf {
    /// Approximation parameters with the default seed and cutover.
    pub fn new(eps: f64, delta: f64) -> ApproxConf {
        ApproxConf {
            eps,
            delta,
            seed: DEFAULT_CONF_SEED,
            exact_limit: None,
        }
    }
}

/// The `conf R` operator: for every distinct tuple of `R`, the probability
/// of the worlds containing it, appended as a `conf` column — exact, or
/// (ε, δ)-approximate when built by [`conf_approx`]. The result is a certain
/// relation (the confidences themselves are facts about the world set, not
/// uncertain data).
#[derive(Debug)]
pub struct Conf {
    input: Plan,
    approx: Option<ApproxConf>,
}

/// Build an exact `conf` plan node.
pub fn conf(input: Plan) -> Plan {
    Plan::Ext(Arc::new(Conf {
        input,
        approx: None,
    }))
}

/// Build an (ε, δ)-approximate `conf` plan node with the default seed and
/// cutover (what `SELECT CONF(eps, delta) …` lowers to).
pub fn conf_approx(input: Plan, eps: f64, delta: f64) -> Plan {
    conf_approx_with(input, ApproxConf::new(eps, delta))
}

/// Build an (ε, δ)-approximate `conf` plan node with explicit seed and
/// cutover control.
pub fn conf_approx_with(input: Plan, approx: ApproxConf) -> Plan {
    Plan::Ext(Arc::new(Conf {
        input,
        approx: Some(approx),
    }))
}

/// The effective exact/sampling cutover when a node carries no override:
/// the [`CONF_EXACT_LIMIT_ENV`] environment variable if it parses as a
/// `u64`, otherwise [`DEFAULT_CONF_EXACT_LIMIT`].
pub fn conf_exact_limit_from_env() -> u64 {
    parse_exact_limit(std::env::var(CONF_EXACT_LIMIT_ENV).ok().as_deref())
}

fn parse_exact_limit(raw: Option<&str>) -> u64 {
    raw.and_then(|v| v.trim().parse::<u64>().ok())
        .unwrap_or(DEFAULT_CONF_EXACT_LIMIT)
}

impl ExtOperator for Conf {
    fn name(&self) -> &'static str {
        "conf"
    }

    fn describe(&self) -> String {
        match &self.approx {
            None => "conf".to_string(),
            Some(a) => format!("conf(eps={}, delta={})", a.eps, a.delta),
        }
    }

    fn mints_components(&self) -> bool {
        // Pure: reads component probabilities (sampling streams are
        // content-keyed), never creates components.
        false
    }

    fn unparse_mayql(&self, inputs: &[String]) -> Option<String> {
        match &self.approx {
            None => Some(format!("SELECT CONF * FROM {}", inputs[0])),
            // `CONF(eps, delta)` has no seed or cutover syntax, so only a
            // node still carrying the defaults has a faithful textual form.
            Some(a) if a.seed == DEFAULT_CONF_SEED && a.exact_limit.is_none() => Some(format!(
                "SELECT CONF({}, {}) * FROM {}",
                a.eps, a.delta, inputs[0]
            )),
            Some(_) => None,
        }
    }

    fn props(&self) -> ExtProps {
        ExtProps {
            // A tuple's confidence depends only on its own descriptors, so
            // removing *other* tuples first changes nothing: σ commutes as
            // long as the predicate reads input columns (the optimizer's
            // input-schema guard keeps predicates over the appended `conf`
            // column above). This holds for the approximate solver too — and
            // not merely in distribution: sampling streams are keyed on
            // descriptor-group content, so a surviving tuple's estimate is
            // bit-identical before and after the rewrite. Projection does
            // NOT commute — it changes which rows count as one tuple, and
            // with them the disjunctions.
            commutes_with_select: true,
            commutes_with_project: false,
            requires_normalized_input: false,
            distinct_output: true,
            certain_output: true,
            // Not an identity even on certain input: it appends a column.
            identity_on_certain: false,
            // Probabilities of the two sides do not combine by union (a
            // tuple's descriptors can span both).
            distributes_over_union: false,
        }
    }

    fn plan_time_tuned(&self, _est_input_rows: f64, _est_nontrivial_frac: f64) -> Option<Plan> {
        // Freeze the exact/sampling cutover into approximate nodes at plan
        // time, so execution no longer consults the environment per query.
        // The pinned value is the same one `eval` would resolve — the
        // environment knob (or its default), **not** anything derived from
        // the estimates — so the cost-based plan is byte-identical to the
        // rule-only plan on every world set: per-group exact-vs-sampling
        // decisions cannot flip with estimation noise. Idempotent by
        // construction: a node whose `exact_limit` is already set returns
        // `None`.
        match self.approx {
            Some(a) if a.exact_limit.is_none() => Some(conf_approx_with(
                self.input.clone(),
                ApproxConf {
                    exact_limit: Some(conf_exact_limit_from_env()),
                    ..a
                },
            )),
            _ => None,
        }
    }

    fn with_inputs(&self, mut inputs: Vec<Plan>) -> Option<Plan> {
        Some(Plan::Ext(Arc::new(Conf {
            input: inputs.remove(0),
            approx: self.approx,
        })))
    }

    fn inputs(&self) -> Vec<&Plan> {
        vec![&self.input]
    }

    fn output_schema(&self, inputs: &[Schema]) -> Result<Schema, MayError> {
        let mut cols = inputs[0].columns().to_vec();
        cols.push(Column::new(CONF_COLUMN, ValueType::Float));
        // Schema::new rejects an input that already has a `conf` column.
        Schema::new(cols)
    }

    fn eval(
        &self,
        ctx: &mut EvalCtx<'_>,
        inputs: Vec<ColumnarURelation>,
    ) -> Result<ColumnarURelation, MayError> {
        let r = &inputs[0];
        let schema = self.output_schema(&[r.schema().clone()])?;
        // Resolve the cutover once per evaluation: node override first, then
        // the environment, then the default. Exact nodes ignore it entirely.
        let mode: Option<(ApproxConf, u64)> = self
            .approx
            .map(|a| (a, a.exact_limit.unwrap_or_else(conf_exact_limit_from_env)));
        // Group the rows of each distinct tuple as one contiguous run of a
        // sorted id permutation; the value columns are gathered once at the
        // end and the `conf` column is built as a raw float vector.
        let perm = sorted_row_ids(r, ctx);
        let bounds = run_bounds(r, &perm);
        let solve_started = ctx.tracer.now();
        // P(t in DB) = P(d₁ ∨ … ∨ dₙ) over the components the descriptors
        // mention (they are independent of all others). The handles are
        // resolved to descriptors once per distinct tuple, at this
        // probabilistic-engine boundary. Each run is independent, the
        // canonical order is total on descriptor content, and sampling
        // streams are pure functions of group content — so the per-run
        // solves parallelize over morsels of runs with bit-exact results
        // for every thread count.
        let workers = ctx.par.workers_for(perm.len());
        let pool = &ctx.pool;
        let components = &*ctx.components;
        let solve_runs = |range: std::ops::Range<usize>| {
            let mut kept: Vec<u32> = Vec::with_capacity(range.len());
            let mut confs: Vec<f64> = Vec::with_capacity(range.len());
            let mut stats = ConfStats::default();
            for &(start, end) in &bounds[range] {
                let descs: Vec<WsDescriptor> = perm[start as usize..end as usize]
                    .iter()
                    .map(|&i| pool.to_descriptor(r.descs()[i as usize]))
                    .collect();
                kept.push(perm[start as usize]);
                confs.push(solve_run(components, &descs, mode.as_ref(), &mut stats));
            }
            (kept, confs, stats)
        };
        let (kept, confs) = if workers <= 1 {
            let (kept, confs, stats) = solve_runs(0..bounds.len());
            ctx.conf_stats.absorb(&stats);
            (kept, confs)
        } else {
            let morsels = chunk_ranges(bounds.len(), workers * 4);
            ctx.par_stats.note_stage(workers, morsels.len());
            let parts = run_tasks(workers, morsels.len(), |t| solve_runs(morsels[t].clone()));
            let mut kept: Vec<u32> = Vec::with_capacity(bounds.len());
            let mut confs: Vec<f64> = Vec::with_capacity(bounds.len());
            for (k, c, stats) in parts {
                kept.extend_from_slice(&k);
                confs.extend_from_slice(&c);
                ctx.conf_stats.absorb(&stats);
            }
            (kept, confs)
        };
        ctx.tracer
            .event("solve", solve_started, bounds.len() as u64);
        let mut cols: Vec<ColumnVec> = r.columns().iter().map(|c| c.gather(&kept)).collect();
        cols.push(ColumnVec::from_floats(confs));
        let descs = vec![DescId::TAUTOLOGY; kept.len()];
        Ok(ColumnarURelation::from_parts(schema, cols, descs))
    }
}

/// Solve one distinct tuple's disjunction, exactly (`mode == None`) or with
/// the cost cutover (`mode == Some((params, limit))`).
///
/// The exact path mirrors [`ComponentSet::prob_of_dnf`] operation for
/// operation (same group order, same per-group solver, same early exit), so
/// exact `conf` results are bit-identical to that oracle. Under sampling,
/// the tuple's error budget is split evenly across its sampled groups:
/// `1 − Π(1 − p_g)` moves by at most the sum of the per-group errors (each
/// partial derivative has magnitude ≤ 1), and a union bound covers δ —
/// exact groups contribute zero error, so they are excluded from the split.
fn solve_run(
    components: &ComponentSet,
    descs: &[WsDescriptor],
    mode: Option<&(ApproxConf, u64)>,
    stats: &mut ConfStats,
) -> f64 {
    if descs.iter().any(WsDescriptor::is_tautology) {
        return 1.0;
    }
    if descs.is_empty() {
        return 0.0;
    }
    let refs: Vec<&WsDescriptor> = descs.iter().collect();
    let groups = connected_groups(&refs);
    let sampled: Vec<bool> = groups
        .iter()
        .map(|g| match mode {
            None => false,
            Some(&(_, limit)) => components.group_exact_cost(g) > u128::from(limit),
        })
        .collect();
    let budget_ways = sampled.iter().filter(|&&s| s).count().max(1) as f64;
    let mut prob_none = 1.0;
    for (group, &is_sampled) in groups.iter().zip(&sampled) {
        stats.largest_group = stats.largest_group.max(group.len() as u64);
        let p = if is_sampled {
            let (a, _) = mode.expect("sampling only under approximate mode");
            stats.sampled_groups += 1;
            let mut rng = CounterRng::new(a.seed, group_stream_key(group));
            GroupSampler::new(components, group).estimate(
                a.eps / budget_ways,
                a.delta / budget_ways,
                &mut rng,
                stats,
            )
        } else {
            stats.exact_groups += 1;
            components.prob_of_group(group)
        };
        prob_none *= 1.0 - p;
        if prob_none == 0.0 {
            break;
        }
    }
    1.0 - prob_none
}

/// Stream key for one connected group's sampling draws: a hash of the
/// group's descriptor *content* (component ids and alternatives, in the
/// group's deterministic order). Keying on content rather than on any run
/// or morsel index is what makes sampling invariant under thread count and
/// under optimizer rewrites that drop unrelated tuples.
fn group_stream_key(group: &[&WsDescriptor]) -> u64 {
    let mut h = 0;
    for d in group {
        for &(c, a) in d.terms() {
            h = mix64(h ^ u64::from(c.0));
            h = mix64(h ^ u64::from(a));
        }
        // Separate descriptors so e.g. [(c0, c1)] and [(c0), (c1)] differ.
        h = mix64(h ^ 0xD15C_0DE5);
    }
    h
}

/// Hoeffding draw count: the mean of `n` i.i.d. variables bounded in
/// `[0, width]` is within `eps` of its expectation with probability
/// ≥ `1 − delta` once `n ≥ width² · ln(2/δ) / (2ε²)`.
fn hoeffding_draws(eps: f64, delta: f64, width: f64) -> u64 {
    let n = width * width * (2.0 / delta).ln() / (2.0 * eps * eps);
    n.ceil().max(1.0) as u64
}

/// One connected descriptor group prepared for sampling: the group's
/// components laid out as dense local slots, descriptors re-expressed over
/// those slots, and the descriptor weights `P(dᵢ)` with their sum `U`.
struct GroupSampler<'a> {
    /// The group's distinct components in ascending id order.
    vars: Vec<&'a Component>,
    /// Descriptors as `(slot, alternative)` term lists.
    descs: Vec<Vec<(u32, u16)>>,
    /// `P(dᵢ)` per descriptor.
    weights: Vec<f64>,
    /// `U = Σ P(dᵢ)`, the Karp–Luby normalizer.
    total_weight: f64,
}

impl<'a> GroupSampler<'a> {
    fn new(components: &'a ComponentSet, group: &[&WsDescriptor]) -> GroupSampler<'a> {
        let ids: Vec<ComponentId> = group
            .iter()
            .flat_map(|d| d.terms().iter().map(|&(c, _)| c))
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect();
        let slot_of = |c: ComponentId| -> u32 {
            ids.binary_search(&c).expect("component is in the group") as u32
        };
        let descs: Vec<Vec<(u32, u16)>> = group
            .iter()
            .map(|d| d.terms().iter().map(|&(c, a)| (slot_of(c), a)).collect())
            .collect();
        let weights: Vec<f64> = group
            .iter()
            .map(|d| components.prob_of_descriptor(d))
            .collect();
        GroupSampler {
            vars: ids.iter().map(|&c| components.get(c)).collect(),
            descs,
            weights: weights.clone(),
            total_weight: weights.iter().sum(),
        }
    }

    /// Estimate `P(∨ dᵢ)` to within `eps` with probability ≥ `1 − delta`.
    ///
    /// Two estimators, both unbiased, chosen by cost: when `U ≥ 1`, plain
    /// Monte Carlo over group assignments (indicator in `[0, 1]`, so
    /// `ln(2/δ)/(2ε²)` draws). When `U < 1` — long disjunctions of rare
    /// descriptors, where naive draws are almost all misses — the Karp–Luby
    /// estimator: draw descriptor `i` with probability `P(dᵢ)/U`, sample the
    /// remaining components conditionally, and score `U` iff no
    /// earlier-indexed descriptor is also satisfied. Each sample lies in
    /// `[0, U]` and has mean `P(∨ dᵢ)`, so Hoeffding needs only `U²` times
    /// the Monte Carlo count — strictly fewer draws whenever `U < 1`.
    fn estimate(&self, eps: f64, delta: f64, rng: &mut CounterRng, stats: &mut ConfStats) -> f64 {
        let mut assignment: Vec<u16> = vec![0; self.vars.len()];
        let estimate = if self.total_weight < 1.0 {
            let draws = hoeffding_draws(eps, delta, self.total_weight);
            stats.samples_drawn += draws;
            let mut hits = 0u64;
            for _ in 0..draws {
                // Pick descriptor i proportionally to its probability …
                let mut x = rng.unit_f64() * self.total_weight;
                let mut i = 0;
                while i + 1 < self.weights.len() && x > self.weights[i] {
                    x -= self.weights[i];
                    i += 1;
                }
                // … sample every component, then clamp dᵢ's own components
                // to dᵢ (the conditional world). Sampling all slots first
                // keeps the per-draw RNG consumption independent of i.
                self.sample_assignment(rng, &mut assignment);
                for &(slot, alt) in &self.descs[i] {
                    assignment[slot as usize] = alt;
                }
                if !(0..i).any(|j| self.satisfied(j, &assignment)) {
                    hits += 1;
                }
            }
            self.total_weight * hits as f64 / draws as f64
        } else {
            let draws = hoeffding_draws(eps, delta, 1.0);
            stats.samples_drawn += draws;
            let mut hits = 0u64;
            for _ in 0..draws {
                self.sample_assignment(rng, &mut assignment);
                if (0..self.descs.len()).any(|i| self.satisfied(i, &assignment)) {
                    hits += 1;
                }
            }
            hits as f64 / draws as f64
        };
        estimate.min(1.0)
    }

    /// Fill `out` with an independent draw of every group component.
    fn sample_assignment(&self, rng: &mut CounterRng, out: &mut [u16]) {
        for (slot, comp) in self.vars.iter().enumerate() {
            out[slot] = comp.sample(rng.unit_f64());
        }
    }

    /// Whether descriptor `i` holds under a full group assignment.
    fn satisfied(&self, i: usize, assignment: &[u16]) -> bool {
        self.descs[i]
            .iter()
            .all(|&(slot, alt)| assignment[slot as usize] == alt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maybms_core::Component;

    fn two_comp_set() -> (ComponentSet, ComponentId, ComponentId) {
        let mut cs = ComponentSet::new();
        let c0 = cs.add(Component::from_weights(&[1.0, 3.0]).unwrap());
        let c1 = cs.add(Component::uniform(3).unwrap());
        (cs, c0, c1)
    }

    #[test]
    fn hoeffding_counts() {
        // ln(2/0.05) / (2 · 0.05²) = 3.6889 / 0.005 = 737.8 → 738.
        assert_eq!(hoeffding_draws(0.05, 0.05, 1.0), 738);
        // Width scales quadratically.
        assert_eq!(hoeffding_draws(0.05, 0.05, 0.5), 185);
        assert!(hoeffding_draws(0.5, 0.5, 1.0) >= 1);
    }

    #[test]
    fn exact_limit_parse_falls_back_to_default() {
        assert_eq!(parse_exact_limit(None), DEFAULT_CONF_EXACT_LIMIT);
        assert_eq!(
            parse_exact_limit(Some("not a number")),
            DEFAULT_CONF_EXACT_LIMIT
        );
        assert_eq!(parse_exact_limit(Some("")), DEFAULT_CONF_EXACT_LIMIT);
        assert_eq!(parse_exact_limit(Some("0")), 0);
        assert_eq!(parse_exact_limit(Some(" 123 ")), 123);
    }

    #[test]
    fn both_estimators_land_within_eps() {
        let (cs, c0, c1) = two_comp_set();
        // Connected group (shares c0): U = P(c0=1) + P(c0=1 ∧ c1=2) > …
        let descs = [
            WsDescriptor::single(c0, 1),
            WsDescriptor::single(c0, 1)
                .conjoin(&WsDescriptor::single(c1, 2))
                .unwrap(),
        ];
        let refs: Vec<&WsDescriptor> = descs.iter().collect();
        let exact = cs.prob_of_group(&refs);
        for (eps, delta) in [(0.02, 0.01), (0.05, 0.05)] {
            for seed in 0..20u64 {
                let mut stats = ConfStats::default();
                let mut rng = CounterRng::new(seed, group_stream_key(&refs));
                let est = GroupSampler::new(&cs, &refs).estimate(eps, delta, &mut rng, &mut stats);
                assert!(
                    (est - exact).abs() <= eps,
                    "seed {seed}: |{est} - {exact}| > {eps}"
                );
                assert!(stats.samples_drawn > 0);
            }
        }
    }

    #[test]
    fn karp_luby_kicks_in_for_rare_disjunctions() {
        // A chain of rare two-term descriptors over 8-way components: each
        // descriptor has probability 1/64, so U = 3/64 ≪ 1 and the
        // Karp–Luby estimator (width U) needs far fewer draws than plain
        // Monte Carlo (width 1) at the same (ε, δ).
        let mut cs = ComponentSet::new();
        let ids: Vec<ComponentId> = (0..4)
            .map(|_| cs.add(Component::uniform(8).unwrap()))
            .collect();
        // Chain them into one connected group via two-term bridges.
        let descs: Vec<WsDescriptor> = (0..3)
            .map(|i| {
                WsDescriptor::single(ids[i], 0)
                    .conjoin(&WsDescriptor::single(ids[i + 1], 0))
                    .unwrap()
            })
            .collect();
        let refs: Vec<&WsDescriptor> = descs.iter().collect();
        let sampler = GroupSampler::new(&cs, &refs);
        assert!(sampler.total_weight < 1.0, "KL regime");
        let exact = cs.prob_of_group(&refs);
        let mut stats = ConfStats::default();
        let mut rng = CounterRng::new(11, group_stream_key(&refs));
        let est = sampler.estimate(0.01, 0.01, &mut rng, &mut stats);
        assert!((est - exact).abs() <= 0.01, "|{est} - {exact}|");
        // KL on width U < 1 needs fewer draws than MC would.
        assert!(stats.samples_drawn < hoeffding_draws(0.01, 0.01, 1.0));
    }

    #[test]
    fn solve_run_exact_matches_prob_of_dnf() {
        let (cs, c0, c1) = two_comp_set();
        let descs = vec![
            WsDescriptor::single(c0, 0),
            WsDescriptor::single(c1, 2),
            WsDescriptor::single(c0, 1)
                .conjoin(&WsDescriptor::single(c1, 0))
                .unwrap(),
        ];
        let mut stats = ConfStats::default();
        let got = solve_run(&cs, &descs, None, &mut stats);
        // Bit-identical: same group order, same per-group solver.
        assert_eq!(got.to_bits(), cs.prob_of_dnf(&descs).to_bits());
        assert_eq!(stats.sampled_groups, 0);
        assert!(stats.exact_groups >= 1);
        // The two-term descriptor bridges c0 and c1: one group of three.
        assert_eq!(stats.largest_group, 3);
    }

    #[test]
    fn forced_sampling_stays_within_eps() {
        let (cs, c0, c1) = two_comp_set();
        let descs = vec![WsDescriptor::single(c0, 0), WsDescriptor::single(c1, 2)];
        let exact = cs.prob_of_dnf(&descs);
        let approx = ApproxConf {
            eps: 0.02,
            delta: 0.01,
            seed: 5,
            exact_limit: Some(0),
        };
        let mut stats = ConfStats::default();
        let got = solve_run(&cs, &descs, Some(&(approx, 0)), &mut stats);
        assert!((got - exact).abs() <= 0.02, "|{got} - {exact}|");
        assert_eq!(stats.exact_groups, 0);
        assert_eq!(stats.sampled_groups, 2);
    }
}
