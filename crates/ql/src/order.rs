//! Canonical row ordering shared by the columnar ql operators.
//!
//! `possible`, `certain`, `conf`, and `repair-key` all start the same way:
//! sort a row-id permutation into the canonical tuple order (the order the
//! row-oriented `grouped()` used to iterate in) so each distinct tuple's
//! rows form one contiguous run. Keeping the comparator in one place means
//! a change to the canonical order (e.g. a prefix-key fast path) cannot
//! silently desynchronize the operators' output orders.
//!
//! The order is *total on content*: ties on the tuple fall through to the
//! descriptor's term list. Rows that still compare equal are exact
//! `(tuple, descriptor)` duplicates, so every operator's output is
//! independent of how a sort arranges them — which is what lets the
//! parallel sort (stable) and the sequential fast path (unstable) coexist
//! without an observable difference, and what pins the order in which
//! `conf` feeds descriptors into the probability computation (floating
//! point is not associative; a content-total order keeps the result
//! bit-identical across thread counts).

use maybms_algebra::EvalCtx;
use maybms_core::columnar::ColumnarURelation;
use maybms_core::parallel::par_sort_by;

/// Row ids of `r` sorted into canonical `(tuple, descriptor)` order. Takes
/// the whole evaluation context: the sort reads the pools and parallelism
/// knobs and records a `canonical-sort` trace phase under the calling
/// operator's span.
pub(crate) fn sorted_row_ids(r: &ColumnarURelation, ctx: &mut EvalCtx<'_>) -> Vec<u32> {
    let started = ctx.tracer.now();
    let mut perm: Vec<u32> = (0..r.len() as u32).collect();
    let descs = r.descs();
    let pool = &ctx.pool;
    let strings = &ctx.strings;
    let cmp = |&i: &u32, &j: &u32| {
        r.cmp_rows(i as usize, j as usize, strings)
            .then_with(|| pool.cmp_terms(descs[i as usize], descs[j as usize]))
    };
    let workers = ctx.par.workers_for(perm.len());
    if workers <= 1 {
        perm.sort_unstable_by(cmp);
    } else {
        ctx.par_stats.note_stage(workers, workers);
        par_sort_by(&mut perm, workers, cmp);
    }
    ctx.tracer
        .event("canonical-sort", started, perm.len() as u64);
    perm
}

/// The end of the run of rows carrying the same tuple as `perm[start]`.
pub(crate) fn run_end(r: &ColumnarURelation, perm: &[u32], start: usize) -> usize {
    let mut end = start + 1;
    while end < perm.len() && r.rows_eq(perm[start] as usize, perm[end] as usize) {
        end += 1;
    }
    end
}

/// The tuple-run boundaries of a canonical permutation, as `(start, end)`
/// index pairs into `perm`. The scan is sequential (it is a single linear
/// pass); operators parallelize over the returned runs, which are
/// independent per distinct tuple.
pub(crate) fn run_bounds(r: &ColumnarURelation, perm: &[u32]) -> Vec<(u32, u32)> {
    let mut bounds = Vec::new();
    let mut start = 0;
    while start < perm.len() {
        let end = run_end(r, perm, start);
        bounds.push((start as u32, end as u32));
        start = end;
    }
    bounds
}
