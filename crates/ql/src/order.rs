//! Canonical row ordering shared by the columnar ql operators.
//!
//! `possible`, `certain`, `conf`, and `repair-key` all start the same way:
//! sort a row-id permutation into the canonical tuple order (the order the
//! row-oriented `grouped()` used to iterate in) so each distinct tuple's
//! rows form one contiguous run. Keeping the comparator in one place means
//! a change to the canonical order (e.g. a prefix-key fast path) cannot
//! silently desynchronize the operators' output orders.

use maybms_core::columnar::{ColumnarURelation, StrPool};

/// Row ids of `r` sorted into canonical tuple order.
pub(crate) fn sorted_row_ids(r: &ColumnarURelation, strings: &StrPool) -> Vec<u32> {
    let mut perm: Vec<u32> = (0..r.len() as u32).collect();
    perm.sort_unstable_by(|&i, &j| r.cmp_rows(i as usize, j as usize, strings));
    perm
}

/// The end of the run of rows carrying the same tuple as `perm[start]`.
pub(crate) fn run_end(r: &ColumnarURelation, perm: &[u32], start: usize) -> usize {
    let mut end = start + 1;
    while end < perm.len() && r.rows_eq(perm[start] as usize, perm[end] as usize) {
        end += 1;
    }
    end
}
