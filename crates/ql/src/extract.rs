//! `possible` and `certain`: extracting answers from the world set.

use std::sync::Arc;

use maybms_algebra::{EvalCtx, ExtOperator, ExtProps, Plan};
use maybms_core::columnar::ColumnarURelation;
use maybms_core::parallel::{chunk_ranges, run_tasks};
use maybms_core::{DescId, MayError, Schema, WsDescriptor};

use crate::order::{run_bounds, sorted_row_ids};

/// The algebraic properties shared by `possible` and `certain`: both
/// commute with selection (they decide per tuple, before or after rows are
/// filtered), both emit distinct certain rows, and both are the identity
/// on an input that is already certain and duplicate-free. Projection
/// commutation differs between the two — see each operator's `props`.
fn extract_props() -> ExtProps {
    ExtProps {
        commutes_with_select: true,
        commutes_with_project: false,
        requires_normalized_input: false,
        distinct_output: true,
        certain_output: true,
        identity_on_certain: true,
        distributes_over_union: false,
    }
}

/// The `possible R` operator: the tuples of `R` that occur in at least one
/// world. The result is a certain relation.
#[derive(Debug)]
pub struct Possible {
    input: Plan,
}

/// Build a `possible` plan node.
pub fn possible(input: Plan) -> Plan {
    Plan::Ext(Arc::new(Possible { input }))
}

impl ExtOperator for Possible {
    fn name(&self) -> &'static str {
        "possible"
    }

    fn unparse_mayql(&self, inputs: &[String]) -> Option<String> {
        Some(format!("SELECT POSSIBLE * FROM {}", inputs[0]))
    }

    fn mints_components(&self) -> bool {
        false // pure: reads descriptors, never creates components
    }

    fn props(&self) -> ExtProps {
        ExtProps {
            // π commutes with ∃-world semantics: a projected tuple occurs
            // in some world iff some extension of it does.
            commutes_with_project: true,
            // ∃-world also distributes over union: a tuple is possible in
            // `A ∪ B` iff it is possible in `A` or in `B`, and the union's
            // set semantics absorb the duplicate collapse. (`certain` does
            // not distribute — coverage can need descriptors from both
            // sides.) The cost phase splits only where the estimates say
            // the two smaller sorts beat one big one.
            distributes_over_union: true,
            ..extract_props()
        }
    }

    fn with_inputs(&self, mut inputs: Vec<Plan>) -> Option<Plan> {
        Some(possible(inputs.remove(0)))
    }

    fn inputs(&self) -> Vec<&Plan> {
        vec![&self.input]
    }

    fn output_schema(&self, inputs: &[Schema]) -> Result<Schema, MayError> {
        Ok(inputs[0].clone())
    }

    fn eval(
        &self,
        ctx: &mut EvalCtx<'_>,
        inputs: Vec<ColumnarURelation>,
    ) -> Result<ColumnarURelation, MayError> {
        let r = &inputs[0];
        // Descriptors are consistent by construction (conjoin rejects
        // contradictions), so every annotated tuple is possible: the result
        // is the distinct tuples in canonical order, all certain. A sort of
        // row ids plus a column-wise gather — no per-row tuples.
        let mut perm = sorted_row_ids(r, ctx);
        let started = ctx.tracer.now();
        perm.dedup_by(|&mut i, &mut j| r.rows_eq(i as usize, j as usize));
        let descs = vec![DescId::TAUTOLOGY; perm.len()];
        let out = r.gather_with_descs(&perm, descs);
        ctx.tracer.event("dedup-gather", started, perm.len() as u64);
        Ok(out)
    }
}

/// The `certain R` operator: the tuples of `R` that occur in *every* world.
/// The result is a certain relation.
#[derive(Debug)]
pub struct Certain {
    input: Plan,
}

/// Build a `certain` plan node.
pub fn certain(input: Plan) -> Plan {
    Plan::Ext(Arc::new(Certain { input }))
}

impl ExtOperator for Certain {
    fn name(&self) -> &'static str {
        "certain"
    }

    fn unparse_mayql(&self, inputs: &[String]) -> Option<String> {
        Some(format!("SELECT CERTAIN * FROM {}", inputs[0]))
    }

    fn mints_components(&self) -> bool {
        false // pure: consults component coverage, never creates components
    }

    fn props(&self) -> ExtProps {
        // π does NOT commute with ∀-world semantics: two rows that differ
        // only in a projected-away column, under descriptors that jointly
        // cover all worlds, make the projected tuple certain even though
        // neither full tuple is — `certain(π_k(R))` can be strictly larger
        // than `π_k(certain(R))`. `extract_props` already declares no
        // projection commutation; this operator keeps it that way.
        extract_props()
    }

    fn estimate_rows(&self, _input_rows: f64, input_distinct: f64, nontrivial_frac: f64) -> f64 {
        // Only tuples whose descriptors cover every world survive. The
        // certain slice of the input is the natural proxy: distinct tuples
        // scaled by the fraction of trivially-described rows.
        (input_distinct * (1.0 - nontrivial_frac.clamp(0.0, 1.0))).max(1.0)
    }

    fn with_inputs(&self, mut inputs: Vec<Plan>) -> Option<Plan> {
        Some(certain(inputs.remove(0)))
    }

    fn inputs(&self) -> Vec<&Plan> {
        vec![&self.input]
    }

    fn output_schema(&self, inputs: &[Schema]) -> Result<Schema, MayError> {
        Ok(inputs[0].clone())
    }

    fn eval(
        &self,
        ctx: &mut EvalCtx<'_>,
        inputs: Vec<ColumnarURelation>,
    ) -> Result<ColumnarURelation, MayError> {
        let r = &inputs[0];
        let perm = sorted_row_ids(r, ctx);
        let bounds = run_bounds(r, &perm);
        let check_started = ctx.tracer.now();
        // A tuple is certain iff the disjunction of its descriptors covers
        // all worlds. `covers_all_worlds` factorizes into connected
        // descriptor groups and only enumerates within a group; the handles
        // are resolved to descriptors once per distinct tuple, at this
        // probabilistic-engine boundary. Runs are independent, so the
        // coverage checks parallelize over morsels of runs; concatenating
        // in task order keeps the output order sequential.
        let workers = ctx.par.workers_for(perm.len());
        let pool = &ctx.pool;
        let components = &*ctx.components;
        let check_runs = |range: std::ops::Range<usize>| {
            let mut kept: Vec<u32> = Vec::new();
            for &(start, end) in &bounds[range] {
                let descs: Vec<WsDescriptor> = perm[start as usize..end as usize]
                    .iter()
                    .map(|&i| pool.to_descriptor(r.descs()[i as usize]))
                    .collect();
                if components.covers_all_worlds(&descs) {
                    kept.push(perm[start as usize]);
                }
            }
            kept
        };
        let kept: Vec<u32> = if workers <= 1 {
            check_runs(0..bounds.len())
        } else {
            let morsels = chunk_ranges(bounds.len(), workers * 4);
            ctx.par_stats.note_stage(workers, morsels.len());
            run_tasks(workers, morsels.len(), |t| check_runs(morsels[t].clone())).concat()
        };
        ctx.tracer
            .event("coverage-check", check_started, bounds.len() as u64);
        let descs = vec![DescId::TAUTOLOGY; kept.len()];
        Ok(r.gather_with_descs(&kept, descs))
    }
}
