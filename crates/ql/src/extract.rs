//! `possible` and `certain`: extracting answers from the world set.

use std::sync::Arc;

use maybms_algebra::{EvalCtx, ExtOperator, Plan};
use maybms_core::{MayError, Schema, URelation, WsDescriptor};

/// The `possible R` operator: the tuples of `R` that occur in at least one
/// world. The result is a certain relation.
#[derive(Debug)]
pub struct Possible {
    input: Plan,
}

/// Build a `possible` plan node.
pub fn possible(input: Plan) -> Plan {
    Plan::Ext(Arc::new(Possible { input }))
}

impl ExtOperator for Possible {
    fn name(&self) -> &'static str {
        "possible"
    }

    fn unparse_mayql(&self, inputs: &[String]) -> Option<String> {
        Some(format!("SELECT POSSIBLE * FROM {}", inputs[0]))
    }

    fn inputs(&self) -> Vec<&Plan> {
        vec![&self.input]
    }

    fn output_schema(&self, inputs: &[Schema]) -> Result<Schema, MayError> {
        Ok(inputs[0].clone())
    }

    fn eval(&self, _ctx: &mut EvalCtx<'_>, inputs: Vec<URelation>) -> Result<URelation, MayError> {
        let r = &inputs[0];
        // Descriptors are consistent by construction (conjoin rejects
        // contradictions), so every annotated tuple is possible. Tuples come
        // from a schema-checked relation with the same schema, so the bulk
        // unchecked path applies.
        let mut out = URelation::new(r.schema().clone());
        let grouped = r.grouped();
        out.reserve(grouped.len());
        for t in grouped.keys() {
            out.push_unchecked((*t).clone(), WsDescriptor::tautology());
        }
        Ok(out)
    }
}

/// The `certain R` operator: the tuples of `R` that occur in *every* world.
/// The result is a certain relation.
#[derive(Debug)]
pub struct Certain {
    input: Plan,
}

/// Build a `certain` plan node.
pub fn certain(input: Plan) -> Plan {
    Plan::Ext(Arc::new(Certain { input }))
}

impl ExtOperator for Certain {
    fn name(&self) -> &'static str {
        "certain"
    }

    fn unparse_mayql(&self, inputs: &[String]) -> Option<String> {
        Some(format!("SELECT CERTAIN * FROM {}", inputs[0]))
    }

    fn inputs(&self) -> Vec<&Plan> {
        vec![&self.input]
    }

    fn output_schema(&self, inputs: &[Schema]) -> Result<Schema, MayError> {
        Ok(inputs[0].clone())
    }

    fn eval(&self, ctx: &mut EvalCtx<'_>, inputs: Vec<URelation>) -> Result<URelation, MayError> {
        let r = &inputs[0];
        let mut out = URelation::new(r.schema().clone());
        for (t, descs) in r.grouped() {
            // A tuple is certain iff the disjunction of its descriptors
            // covers all worlds. `covers_all_worlds` factorizes into
            // connected descriptor groups and only enumerates within a
            // group, borrowing the grouped descriptors directly.
            if ctx.components.covers_all_worlds(&descs) {
                out.push_unchecked(t.clone(), WsDescriptor::tautology());
            }
        }
        Ok(out)
    }
}
