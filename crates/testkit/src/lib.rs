//! # maybms-testkit — property-testing support
//!
//! Deterministic random generators for world sets and algebra plans, plus
//! oracle helpers that compute `possible` / `certain` / `conf` semantics by
//! brute-force world enumeration. The cross-layer differential tests live in
//! this crate's `tests/` directory so that no layer needs a dev-dependency
//! cycle.
//!
//! The generators use `maybms_core::rng` (a seeded SplitMix64) instead of
//! `proptest`, which is unavailable offline; each test iterates over many
//! derived seeds and reports the failing seed for exact replay.

use std::collections::BTreeMap;

use maybms_algebra::{col, lit, naive, CmpOp, Operand, Plan, Predicate};
use maybms_core::rng::Rng;
use maybms_core::{
    Component, MayError, Relation, Schema, Tuple, URelation, Value, ValueType, WorldSet,
    WsDescriptor,
};
use maybms_ql::{certain, conf, conf_approx, possible, repair_key};

/// Upper bound on enumerated worlds in tests; generated inputs stay far
/// below it.
pub const WORLD_LIMIT: u128 = 1 << 20;

/// Tuning knobs for [`gen_world_set`].
#[derive(Clone, Debug)]
pub struct GenConfig {
    /// Maximum number of components (each gets 2–3 alternatives).
    pub max_components: usize,
    /// Number of base relations (named `r0`, `r1`, …).
    pub relations: usize,
    /// Maximum rows per relation.
    pub max_rows: usize,
    /// Maximum arity per relation.
    pub max_arity: usize,
    /// Values are drawn from `0..domain`.
    pub domain: i64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            max_components: 4,
            relations: 3,
            max_rows: 6,
            max_arity: 3,
            domain: 4,
        }
    }
}

/// Column-name pool shared across generated relations so natural joins have
/// columns to match on.
const COL_POOL: [&str; 4] = ["a", "b", "c", "d"];

/// ε the generators use for `conf(eps, delta)` nodes. Modest on purpose:
/// under a forced-sampling cutover (`MAYBMS_CONF_EXACT_LIMIT=0`) every
/// generated group is estimated, and this budget needs only a few dozen
/// draws per group.
pub const GEN_CONF_EPS: f64 = 0.25;

/// δ the generators use for `conf(eps, delta)` nodes.
pub const GEN_CONF_DELTA: f64 = 0.1;

/// Generate a small random world set: a few weighted components and a few
/// integer relations whose rows carry random (consistent) descriptors.
pub fn gen_world_set(rng: &mut Rng, cfg: &GenConfig) -> WorldSet {
    let mut ws = WorldSet::new();
    let n_comps = rng.below(cfg.max_components + 1);
    for _ in 0..n_comps {
        let alts = rng.range(2, 3);
        let weights: Vec<f64> = (0..alts).map(|_| rng.unit_f64()).collect();
        ws.components
            .add(Component::from_weights(&weights).expect("weights are positive"));
    }
    for ri in 0..cfg.relations {
        let arity = rng.range(1, cfg.max_arity);
        let start = rng.below(COL_POOL.len() - arity + 1);
        let schema = Schema::of(
            &COL_POOL[start..start + arity]
                .iter()
                .map(|n| (*n, ValueType::Int))
                .collect::<Vec<_>>(),
        )
        .expect("pool names are distinct");
        let mut rel = URelation::new(schema);
        for _ in 0..rng.below(cfg.max_rows + 1) {
            let tuple = Tuple::new(
                (0..arity)
                    .map(|_| Value::Int(rng.below(cfg.domain as usize) as i64))
                    .collect(),
            );
            let desc = gen_descriptor(rng, &ws);
            rel.push(tuple, desc)
                .expect("generated tuple matches schema");
        }
        ws.insert(format!("r{ri}"), rel)
            .expect("generated descriptors are valid");
    }
    ws
}

/// Generate a relation exercising *every* value type the columnar layout
/// stores — ints, floats (including `-0.0` and `NaN`, which round-trip by
/// bit pattern), strings, booleans, pure-`null` columns, and `NULL`s
/// sprinkled into typed columns — with random consistent descriptors over
/// `ws`'s components. Used by the row↔columnar round-trip suite, which the
/// int-only [`gen_world_set`] cannot cover.
pub fn gen_mixed_relation(rng: &mut Rng, ws: &WorldSet) -> URelation {
    const TYPES: [ValueType; 5] = [
        ValueType::Int,
        ValueType::Float,
        ValueType::Str,
        ValueType::Bool,
        ValueType::Null,
    ];
    let arity = rng.range(1, 4);
    let schema = Schema::new(
        (0..arity)
            .map(|i| maybms_core::Column::new(format!("c{i}"), *rng.pick(&TYPES)))
            .collect(),
    )
    .expect("generated names are distinct");
    let mut rel = URelation::new(schema.clone());
    for _ in 0..rng.below(13) {
        let tuple = Tuple::new(
            schema
                .columns()
                .iter()
                .map(|c| {
                    if rng.chance(0.15) {
                        return Value::Null;
                    }
                    match c.ty {
                        ValueType::Int => Value::Int(rng.below(7) as i64 - 3),
                        ValueType::Float => {
                            if rng.chance(0.1) {
                                Value::float(-0.0)
                            } else if rng.chance(0.05) {
                                Value::float(f64::NAN)
                            } else {
                                Value::float((rng.below(9) as f64 - 4.0) * 0.5)
                            }
                        }
                        ValueType::Str => Value::str(format!("s{}", rng.below(5))),
                        ValueType::Bool => Value::Bool(rng.chance(0.5)),
                        ValueType::Null => Value::Null,
                    }
                })
                .collect(),
        );
        let desc = gen_descriptor(rng, ws);
        rel.push(tuple, desc)
            .expect("generated tuple matches schema");
    }
    rel
}

/// A random consistent descriptor over the world set's components (possibly
/// the tautology).
pub fn gen_descriptor(rng: &mut Rng, ws: &WorldSet) -> WsDescriptor {
    let n = ws.components.len();
    if n == 0 {
        return WsDescriptor::tautology();
    }
    let mut terms = Vec::new();
    for (id, comp) in ws.components.iter() {
        if rng.chance(0.4) {
            terms.push((id, rng.below(comp.alternatives() as usize) as u16));
        }
        if terms.len() == 2 {
            break;
        }
    }
    WsDescriptor::from_terms(terms).expect("distinct components cannot conflict")
}

/// Generate a random positive-relational-algebra plan that is guaranteed to
/// be well-typed against `ws` (schemas are tracked during generation).
pub fn gen_plan(rng: &mut Rng, ws: &WorldSet, depth: usize) -> Plan {
    assert!(
        !ws.relations.is_empty(),
        "gen_plan needs at least one base relation"
    );
    gen_plan_inner(rng, ws, depth)
}

fn gen_plan_inner(rng: &mut Rng, ws: &WorldSet, depth: usize) -> Plan {
    let names: Vec<String> = ws.relations.keys().cloned().collect();
    if depth == 0 {
        return Plan::scan(rng.pick(&names).clone());
    }
    match rng.below(6) {
        0 => Plan::scan(rng.pick(&names).clone()),
        1 => {
            let input = gen_plan_inner(rng, ws, depth - 1);
            let schema = plan_schema(&input, ws);
            let names = schema.names();
            let column = rng.pick(&names).to_string();
            let op = *rng.pick(&[
                CmpOp::Eq,
                CmpOp::Ne,
                CmpOp::Lt,
                CmpOp::Le,
                CmpOp::Gt,
                CmpOp::Ge,
            ]);
            let rhs = if rng.chance(0.5) {
                lit(rng.below(4) as i64)
            } else {
                col(rng.pick(&names).to_string())
            };
            input.select(Predicate::cmp(op, col(column), rhs))
        }
        2 => {
            let input = gen_plan_inner(rng, ws, depth - 1);
            let schema = plan_schema(&input, ws);
            let names = schema.names();
            let keep: Vec<&str> = names.iter().filter(|_| rng.chance(0.6)).copied().collect();
            let keep = if keep.is_empty() {
                vec![names[0]]
            } else {
                keep
            };
            input.project(keep)
        }
        3 => gen_plan_inner(rng, ws, depth - 1).join(gen_plan_inner(rng, ws, depth - 1)),
        4 => {
            // Union requires identical schemas; derive both sides from one
            // subplan so compatibility is guaranteed.
            let input = gen_plan_inner(rng, ws, depth - 1);
            let schema = plan_schema(&input, ws);
            let names = schema.names();
            let column = rng.pick(&names).to_string();
            let filtered = input.clone().select(Predicate::cmp(
                CmpOp::Ne,
                col(column),
                lit(rng.below(4) as i64),
            ));
            input.union(filtered)
        }
        _ => {
            let input = gen_plan_inner(rng, ws, depth - 1);
            let schema = plan_schema(&input, ws);
            let names = schema.names();
            // Rename to a name outside the pool; skip if a nested rename
            // already introduced it (renaming would duplicate the column).
            if names.contains(&"z") {
                return input;
            }
            let old = rng.pick(&names).to_string();
            input.rename([(old.as_str(), "z")])
        }
    }
}

/// Schema of a generated plan (generated plans are always well-typed).
fn plan_schema(plan: &Plan, ws: &WorldSet) -> Schema {
    maybms_algebra::infer_schema(plan, &ws.relations).expect("generated plans are well-typed")
}

/// Wrap a generated plan in a random uncertainty construct (`possible`,
/// `certain`, `conf`, `repair-key` over a `possible`-certified input) — or
/// leave it bare. Used by the MayQL roundtrip tests so the pretty-printer
/// and planner are exercised across every extension operator.
pub fn wrap_uncertainty(rng: &mut Rng, ws: &WorldSet, plan: Plan) -> Plan {
    match rng.below(5) {
        0 => possible(plan),
        1 => certain(plan),
        // Generated schemas draw from the a–d/z name pool, so a `conf`
        // column can never pre-exist. Half the time, use the (ε, δ)-
        // approximate variant with the modest default parameters the
        // generators standardize on — sampling streams are content-keyed,
        // so the differential suites' optimized/unoptimized and
        // threads=1/threads=4 comparisons stay bit-exact.
        2 => {
            if rng.chance(0.5) {
                conf_approx(plan, GEN_CONF_EPS, GEN_CONF_DELTA)
            } else {
                conf(plan)
            }
        }
        3 => {
            let schema = plan_schema(&plan, ws);
            let names = schema.names();
            let mut key: Vec<&str> = names.iter().filter(|_| rng.chance(0.5)).copied().collect();
            if key.is_empty() {
                key.push(names[0]);
            }
            // No WEIGHT BY: generated values include 0, which is not a
            // valid repair weight.
            repair_key(possible(plan), &key, None)
        }
        _ => plan,
    }
}

/// Generate a plan that layers positive relational algebra *on top of*
/// uncertainty constructs (not only beneath them, as [`wrap_uncertainty`]
/// does): a random RA plan is wrapped in a random uncertainty operator and
/// then extended with up to three more selection / projection / join /
/// quantifier layers. This is the shape the logical optimizer's commuting
/// rules fire on — selections above `possible`/`certain`/`conf`,
/// projections above quantifiers, filters above joins of collapsed
/// subplans — so the optimizer differential suite generates its cases
/// here.
pub fn gen_uncertain_plan(rng: &mut Rng, ws: &WorldSet, depth: usize) -> Plan {
    let base = gen_plan(rng, ws, depth);
    let mut plan = wrap_uncertainty(rng, ws, base);
    for _ in 0..rng.below(4) {
        let schema = plan_schema(&plan, ws);
        let names: Vec<String> = schema.names().iter().map(|s| s.to_string()).collect();
        match rng.below(5) {
            0 | 1 => {
                let c = rng.pick(&names).clone();
                let op = *rng.pick(&[
                    CmpOp::Eq,
                    CmpOp::Ne,
                    CmpOp::Lt,
                    CmpOp::Le,
                    CmpOp::Gt,
                    CmpOp::Ge,
                ]);
                let rhs = if rng.chance(0.5) {
                    lit(rng.below(4) as i64)
                } else {
                    col(rng.pick(&names).clone())
                };
                plan = plan.select(Predicate::cmp(op, col(c), rhs));
            }
            2 => {
                let keep: Vec<String> = names.iter().filter(|_| rng.chance(0.6)).cloned().collect();
                let keep = if keep.is_empty() {
                    vec![names[0].clone()]
                } else {
                    keep
                };
                plan = plan.project(keep);
            }
            3 => {
                // A *swapping* rename between two same-typed columns — the
                // adversarial shape for projection pruning, which must keep
                // both pairs and both source columns alive below. (Same
                // type, so later natural joins stay well-typed.)
                let cols = schema.columns();
                let swap = (rng.chance(0.4) && cols.len() >= 2)
                    .then(|| {
                        let i = rng.below(cols.len());
                        cols.iter()
                            .enumerate()
                            .find(|(j, c)| *j != i && c.ty == cols[i].ty)
                            .map(|(j, _)| (cols[i].name.clone(), cols[j].name.clone()))
                    })
                    .flatten();
                match swap {
                    Some((a, b)) => {
                        plan = plan.rename([(a.clone(), b.clone()), (b, a)]);
                    }
                    None => {
                        // Join the collapsed subplan against a base
                        // relation (all base columns are ints from the
                        // shared pool, so shared names always agree on
                        // type; `conf`/`z` never collide).
                        let rels: Vec<String> = ws.relations.keys().cloned().collect();
                        plan = plan.join(Plan::scan(rng.pick(&rels).clone()));
                    }
                }
            }
            _ => {
                // Re-wrap in a further world-collapsing quantifier (never
                // `conf`, which cannot nest once its column exists).
                plan = if rng.chance(0.5) {
                    possible(plan)
                } else {
                    certain(plan)
                };
            }
        }
    }
    plan
}

/// Generate a random MayQL query *string* together with the hand-built
/// [`Plan`] it must lower to. The pair is constructed side by side — the
/// text by emitting grammar productions (with randomized keyword case), the
/// plan by mirroring the planner's documented lowering — so differential
/// tests can parse the text and compare against an independently built
/// plan, then execute both.
///
/// Generated queries are always semantically valid for `ws`: columns come
/// from tracked schemas, comparisons stay within `int` columns, `UNION`
/// sides share a schema by construction, `CONF` is only applied where no
/// `conf` column pre-exists, and `REPAIR KEY` inputs are certified with
/// `SELECT POSSIBLE`.
pub fn gen_query(rng: &mut Rng, ws: &WorldSet, depth: usize) -> (String, Plan) {
    let (text, plan, _) = gen_query_inner(rng, ws, depth);
    (text, plan)
}

/// Keywords are case-insensitive; exercise that by flipping a coin per
/// keyword occurrence.
fn kw(rng: &mut Rng, word: &str) -> String {
    if rng.chance(0.5) {
        word.to_uppercase()
    } else {
        word.to_lowercase()
    }
}

fn gen_query_inner(rng: &mut Rng, ws: &WorldSet, depth: usize) -> (String, Plan, Schema) {
    if depth == 0 {
        return gen_base_select(rng, ws);
    }
    match rng.below(4) {
        1 => {
            // UNION: replay the generator from a cloned RNG state so both
            // sides get textually identical (hence union-compatible) terms
            // that lower to *separately constructed* plans — mirroring the
            // parser, which never shares subtrees. Optionally wrap the
            // right side in an extra filter so the union isn't trivial.
            let mut replay = rng.clone();
            let (t1, p1, schema) = gen_query_inner(rng, ws, depth - 1);
            let (t2, p2, _) = gen_query_inner(&mut replay, ws, depth - 1);
            let int_cols = int_columns(&schema);
            if !int_cols.is_empty() && rng.chance(0.7) {
                let c = rng.pick(&int_cols).clone();
                let k = rng.below(4) as i64;
                let t2 = format!(
                    "({} * {} ({t2}) {} {c} <> {k})",
                    kw(rng, "select"),
                    kw(rng, "from"),
                    kw(rng, "where")
                );
                let p2 = p2.select(Predicate::cmp(CmpOp::Ne, col(c), lit(k)));
                let text = format!("{t1} {} {t2}", kw(rng, "union"));
                (text, p1.union(p2), schema)
            } else {
                // Parenthesize the right side: `UNION` parses
                // left-associatively, so a bare `t1 UNION t2` would
                // re-associate any top-level union inside `t2`.
                let text = format!("{t1} {} ({t2})", kw(rng, "union"));
                (text, p1.union(p2), schema)
            }
        }
        2 => {
            // REPAIR KEY over a POSSIBLE-certified subquery.
            let (t, p, schema) = gen_query_inner(rng, ws, depth - 1);
            let names = schema.names();
            let mut key: Vec<&str> = names.iter().filter(|_| rng.chance(0.5)).copied().collect();
            if key.is_empty() {
                key.push(names[0]);
            }
            let text = format!(
                "{} {} {} {} ({} {} * {} ({t}))",
                kw(rng, "repair"),
                kw(rng, "key"),
                key.join(", "),
                kw(rng, "in"),
                kw(rng, "select"),
                kw(rng, "possible"),
                kw(rng, "from")
            );
            let plan = repair_key(possible(p), &key, None);
            (text, plan, schema)
        }
        _ => gen_select_block(rng, ws, depth),
    }
}

/// `SELECT * FROM r` over a random base relation.
fn gen_base_select(rng: &mut Rng, ws: &WorldSet) -> (String, Plan, Schema) {
    let names: Vec<&String> = ws.relations.keys().collect();
    let name = (*rng.pick(&names)).clone();
    let schema = ws.relations[&name].schema().clone();
    let text = format!("{} * {} {name}", kw(rng, "select"), kw(rng, "from"));
    (text, Plan::scan(name), schema)
}

/// A full select block: joins, optional filter, projection with optional
/// `AS` alias, optional quantifier.
fn gen_select_block(rng: &mut Rng, ws: &WorldSet, depth: usize) -> (String, Plan, Schema) {
    // FROM: one or two items, natural-joined left to right.
    let (t0, mut plan, mut schema) = gen_from_item(rng, ws, depth);
    let mut from_texts = vec![t0];
    if rng.chance(0.4) {
        let (t, p, s) = gen_from_item(rng, ws, depth);
        let jp = schema
            .natural_join(&s)
            .expect("generated columns agree on type");
        plan = plan.join(p);
        schema = jp.schema;
        from_texts.push(t);
    }

    // WHERE: an int-typed comparison (literal or column on the right).
    let int_cols = int_columns(&schema);
    let filter = if !int_cols.is_empty() && rng.chance(0.5) {
        let c = rng.pick(&int_cols).clone();
        let op = *rng.pick(&[
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ]);
        let (rhs_text, rhs): (String, Operand) = if rng.chance(0.5) {
            let k = rng.below(4) as i64;
            (k.to_string(), lit(k))
        } else {
            let rc = rng.pick(&int_cols).clone();
            (rc.clone(), col(rc))
        };
        Some((
            format!("{c} {op} {rhs_text}"),
            Predicate::cmp(op, col(c), rhs),
        ))
    } else {
        None
    };
    if let Some((_, pred)) = &filter {
        plan = plan.select(pred.clone());
    }

    // Select list: `*`, or a non-empty subset with at most one `AS z`.
    let list_text = if rng.chance(0.4) {
        "*".to_string()
    } else {
        let names: Vec<String> = schema.names().iter().map(|n| n.to_string()).collect();
        let mut keep: Vec<String> = names.iter().filter(|_| rng.chance(0.6)).cloned().collect();
        if keep.is_empty() {
            keep.push(names[0].clone());
        }
        let alias_idx = if rng.chance(0.3) && !keep.iter().any(|c| c == "z") {
            Some(rng.below(keep.len()))
        } else {
            None
        };
        let (projected, _) = schema.project(&keep).expect("kept columns exist");
        plan = plan.project(keep.clone());
        schema = projected;
        let items: Vec<String> = keep
            .iter()
            .enumerate()
            .map(|(i, c)| {
                if alias_idx == Some(i) {
                    format!("{c} {} z", kw(rng, "as"))
                } else {
                    c.clone()
                }
            })
            .collect();
        if let Some(i) = alias_idx {
            schema = schema
                .rename(&[(keep[i].clone(), "z".to_string())])
                .expect("alias `z` is fresh");
            plan = plan.rename([(keep[i].as_str(), "z")]);
        }
        items.join(", ")
    };

    // Quantifier (CONF variants only when no `conf` column pre-exists).
    let quant = match rng.below(10) {
        0 => Some(Quant::Possible),
        1 => Some(Quant::Certain),
        2 if schema.col_index("conf").is_err() => Some(Quant::Conf),
        3 if schema.col_index("conf").is_err() => Some(Quant::ConfApprox),
        _ => None,
    };
    let mut text = kw(rng, "select");
    if let Some(q) = quant {
        text.push(' ');
        let word = match q {
            Quant::Possible => "possible",
            Quant::Certain => "certain",
            Quant::Conf | Quant::ConfApprox => "conf",
        };
        text.push_str(&kw(rng, word));
        if matches!(q, Quant::ConfApprox) {
            text.push_str(&format!("({GEN_CONF_EPS}, {GEN_CONF_DELTA})"));
        }
        (plan, schema) = match q {
            Quant::Possible => (possible(plan), schema),
            Quant::Certain => (certain(plan), schema),
            Quant::Conf | Quant::ConfApprox => {
                let mut cols = schema.columns().to_vec();
                cols.push(maybms_core::Column::new("conf", ValueType::Float));
                let wrapped = if matches!(q, Quant::ConfApprox) {
                    conf_approx(plan, GEN_CONF_EPS, GEN_CONF_DELTA)
                } else {
                    conf(plan)
                };
                (wrapped, Schema::new(cols).expect("conf column is fresh"))
            }
        };
    }
    text.push(' ');
    text.push_str(&list_text);
    text.push(' ');
    text.push_str(&kw(rng, "from"));
    text.push(' ');
    text.push_str(&from_texts.join(", "));
    if let Some((ftext, _)) = &filter {
        text.push(' ');
        text.push_str(&kw(rng, "where"));
        text.push(' ');
        text.push_str(ftext);
    }
    (text, plan, schema)
}

#[derive(Clone, Copy)]
enum Quant {
    Possible,
    Certain,
    Conf,
    ConfApprox,
}

/// A from-item: a bare relation name, or a parenthesized subquery.
fn gen_from_item(rng: &mut Rng, ws: &WorldSet, depth: usize) -> (String, Plan, Schema) {
    if depth == 0 || rng.chance(0.5) {
        let names: Vec<&String> = ws.relations.keys().collect();
        let name = (*rng.pick(&names)).clone();
        let schema = ws.relations[&name].schema().clone();
        (name.clone(), Plan::scan(name), schema)
    } else {
        let (t, p, s) = gen_query_inner(rng, ws, depth - 1);
        (format!("({t})"), p, s)
    }
}

/// Names of the `int`-typed columns of a schema.
fn int_columns(schema: &Schema) -> Vec<String> {
    schema
        .columns()
        .iter()
        .filter(|c| c.ty == ValueType::Int)
        .map(|c| c.name.clone())
        .collect()
}

/// Oracle: evaluate `plan` naively in every world, returning each world's
/// result with its probability.
pub fn per_world_results(ws: &WorldSet, plan: &Plan) -> Result<Vec<(Relation, f64)>, MayError> {
    let mut out = Vec::new();
    for (_, db, p) in ws.enumerate(WORLD_LIMIT)? {
        out.push((naive::eval(plan, &db)?, p));
    }
    Ok(out)
}

/// Oracle for `conf`: per-tuple probability mass aggregated over all worlds.
pub fn conf_oracle(worlds: &[(Relation, f64)]) -> BTreeMap<Tuple, f64> {
    let mut m = BTreeMap::new();
    for (rel, p) in worlds {
        for t in rel.tuples() {
            *m.entry(t.clone()).or_insert(0.0) += p;
        }
    }
    m
}

/// Oracle for `possible`: union of all worlds' results.
pub fn possible_oracle(worlds: &[(Relation, f64)], schema: Schema) -> Relation {
    let mut out = Relation::new(schema);
    for (rel, _) in worlds {
        for t in rel.tuples() {
            out.insert(t.clone()).expect("same schema across worlds");
        }
    }
    out
}

/// Oracle for `certain`: intersection of all worlds' results.
pub fn certain_oracle(worlds: &[(Relation, f64)], schema: Schema) -> Relation {
    let mut out = Relation::new(schema);
    if let Some((first, _)) = worlds.first() {
        for t in first.tuples() {
            if worlds.iter().all(|(rel, _)| rel.contains(t)) {
                out.insert(t.clone()).expect("same schema across worlds");
            }
        }
    }
    out
}
