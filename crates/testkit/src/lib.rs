//! # maybms-testkit — property-testing support
//!
//! Deterministic random generators for world sets and algebra plans, plus
//! oracle helpers that compute `possible` / `certain` / `conf` semantics by
//! brute-force world enumeration. The cross-layer differential tests live in
//! this crate's `tests/` directory so that no layer needs a dev-dependency
//! cycle.
//!
//! The generators use `maybms_core::rng` (a seeded SplitMix64) instead of
//! `proptest`, which is unavailable offline; each test iterates over many
//! derived seeds and reports the failing seed for exact replay.

use std::collections::BTreeMap;

use maybms_algebra::{col, lit, naive, CmpOp, Plan, Predicate};
use maybms_core::rng::Rng;
use maybms_core::{
    Component, MayError, Relation, Schema, Tuple, URelation, Value, ValueType, WorldSet,
    WsDescriptor,
};

/// Upper bound on enumerated worlds in tests; generated inputs stay far
/// below it.
pub const WORLD_LIMIT: u128 = 1 << 20;

/// Tuning knobs for [`gen_world_set`].
#[derive(Clone, Debug)]
pub struct GenConfig {
    /// Maximum number of components (each gets 2–3 alternatives).
    pub max_components: usize,
    /// Number of base relations (named `r0`, `r1`, …).
    pub relations: usize,
    /// Maximum rows per relation.
    pub max_rows: usize,
    /// Maximum arity per relation.
    pub max_arity: usize,
    /// Values are drawn from `0..domain`.
    pub domain: i64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            max_components: 4,
            relations: 3,
            max_rows: 6,
            max_arity: 3,
            domain: 4,
        }
    }
}

/// Column-name pool shared across generated relations so natural joins have
/// columns to match on.
const COL_POOL: [&str; 4] = ["a", "b", "c", "d"];

/// Generate a small random world set: a few weighted components and a few
/// integer relations whose rows carry random (consistent) descriptors.
pub fn gen_world_set(rng: &mut Rng, cfg: &GenConfig) -> WorldSet {
    let mut ws = WorldSet::new();
    let n_comps = rng.below(cfg.max_components + 1);
    for _ in 0..n_comps {
        let alts = rng.range(2, 3);
        let weights: Vec<f64> = (0..alts).map(|_| rng.unit_f64()).collect();
        ws.components
            .add(Component::from_weights(&weights).expect("weights are positive"));
    }
    for ri in 0..cfg.relations {
        let arity = rng.range(1, cfg.max_arity);
        let start = rng.below(COL_POOL.len() - arity + 1);
        let schema = Schema::of(
            &COL_POOL[start..start + arity]
                .iter()
                .map(|n| (*n, ValueType::Int))
                .collect::<Vec<_>>(),
        )
        .expect("pool names are distinct");
        let mut rel = URelation::new(schema);
        for _ in 0..rng.below(cfg.max_rows + 1) {
            let tuple = Tuple::new(
                (0..arity)
                    .map(|_| Value::Int(rng.below(cfg.domain as usize) as i64))
                    .collect(),
            );
            let desc = gen_descriptor(rng, &ws);
            rel.push(tuple, desc)
                .expect("generated tuple matches schema");
        }
        ws.insert(format!("r{ri}"), rel)
            .expect("generated descriptors are valid");
    }
    ws
}

/// A random consistent descriptor over the world set's components (possibly
/// the tautology).
pub fn gen_descriptor(rng: &mut Rng, ws: &WorldSet) -> WsDescriptor {
    let n = ws.components.len();
    if n == 0 {
        return WsDescriptor::tautology();
    }
    let mut terms = Vec::new();
    for (id, comp) in ws.components.iter() {
        if rng.chance(0.4) {
            terms.push((id, rng.below(comp.alternatives() as usize) as u16));
        }
        if terms.len() == 2 {
            break;
        }
    }
    WsDescriptor::from_terms(terms).expect("distinct components cannot conflict")
}

/// Generate a random positive-relational-algebra plan that is guaranteed to
/// be well-typed against `ws` (schemas are tracked during generation).
pub fn gen_plan(rng: &mut Rng, ws: &WorldSet, depth: usize) -> Plan {
    assert!(
        !ws.relations.is_empty(),
        "gen_plan needs at least one base relation"
    );
    gen_plan_inner(rng, ws, depth)
}

fn gen_plan_inner(rng: &mut Rng, ws: &WorldSet, depth: usize) -> Plan {
    let names: Vec<String> = ws.relations.keys().cloned().collect();
    if depth == 0 {
        return Plan::scan(rng.pick(&names).clone());
    }
    match rng.below(6) {
        0 => Plan::scan(rng.pick(&names).clone()),
        1 => {
            let input = gen_plan_inner(rng, ws, depth - 1);
            let schema = plan_schema(&input, ws);
            let names = schema.names();
            let column = rng.pick(&names).to_string();
            let op = *rng.pick(&[
                CmpOp::Eq,
                CmpOp::Ne,
                CmpOp::Lt,
                CmpOp::Le,
                CmpOp::Gt,
                CmpOp::Ge,
            ]);
            let rhs = if rng.chance(0.5) {
                lit(rng.below(4) as i64)
            } else {
                col(rng.pick(&names).to_string())
            };
            input.select(Predicate::cmp(op, col(column), rhs))
        }
        2 => {
            let input = gen_plan_inner(rng, ws, depth - 1);
            let schema = plan_schema(&input, ws);
            let names = schema.names();
            let keep: Vec<&str> = names.iter().filter(|_| rng.chance(0.6)).copied().collect();
            let keep = if keep.is_empty() {
                vec![names[0]]
            } else {
                keep
            };
            input.project(&keep)
        }
        3 => gen_plan_inner(rng, ws, depth - 1).join(gen_plan_inner(rng, ws, depth - 1)),
        4 => {
            // Union requires identical schemas; derive both sides from one
            // subplan so compatibility is guaranteed.
            let input = gen_plan_inner(rng, ws, depth - 1);
            let schema = plan_schema(&input, ws);
            let names = schema.names();
            let column = rng.pick(&names).to_string();
            let filtered = input.clone().select(Predicate::cmp(
                CmpOp::Ne,
                col(column),
                lit(rng.below(4) as i64),
            ));
            input.union(filtered)
        }
        _ => {
            let input = gen_plan_inner(rng, ws, depth - 1);
            let schema = plan_schema(&input, ws);
            let names = schema.names();
            // Rename to a name outside the pool; skip if a nested rename
            // already introduced it (renaming would duplicate the column).
            if names.contains(&"z") {
                return input;
            }
            let old = rng.pick(&names).to_string();
            input.rename(&[(old.as_str(), "z")])
        }
    }
}

/// Schema of a generated plan (generated plans are always well-typed).
fn plan_schema(plan: &Plan, ws: &WorldSet) -> Schema {
    maybms_algebra::infer_schema(plan, &ws.relations).expect("generated plans are well-typed")
}

/// Oracle: evaluate `plan` naively in every world, returning each world's
/// result with its probability.
pub fn per_world_results(ws: &WorldSet, plan: &Plan) -> Result<Vec<(Relation, f64)>, MayError> {
    let mut out = Vec::new();
    for (_, db, p) in ws.enumerate(WORLD_LIMIT)? {
        out.push((naive::eval(plan, &db)?, p));
    }
    Ok(out)
}

/// Oracle for `conf`: per-tuple probability mass aggregated over all worlds.
pub fn conf_oracle(worlds: &[(Relation, f64)]) -> BTreeMap<Tuple, f64> {
    let mut m = BTreeMap::new();
    for (rel, p) in worlds {
        for t in rel.tuples() {
            *m.entry(t.clone()).or_insert(0.0) += p;
        }
    }
    m
}

/// Oracle for `possible`: union of all worlds' results.
pub fn possible_oracle(worlds: &[(Relation, f64)], schema: Schema) -> Relation {
    let mut out = Relation::new(schema);
    for (rel, _) in worlds {
        for t in rel.tuples() {
            out.insert(t.clone()).expect("same schema across worlds");
        }
    }
    out
}

/// Oracle for `certain`: intersection of all worlds' results.
pub fn certain_oracle(worlds: &[(Relation, f64)], schema: Schema) -> Relation {
    let mut out = Relation::new(schema);
    if let Some((first, _)) = worlds.first() {
        for t in first.tuples() {
            if worlds.iter().all(|(rel, _)| rel.contains(t)) {
                out.insert(t.clone()).expect("same schema across worlds");
            }
        }
    }
    out
}
