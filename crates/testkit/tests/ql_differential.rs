//! Differential tests for the uncertainty constructs: `repair-key`,
//! `possible`, `certain`, and `conf` are compared against brute-force
//! aggregation over the enumerated worlds.

use std::collections::BTreeMap;

use maybms_algebra::{run, Plan};
use maybms_core::rng::Rng;
use maybms_core::{Relation, Schema, Tuple, URelation, Value, ValueType, WorldSet};
use maybms_ql::{certain, conf, possible, repair_key};
use maybms_testkit::{
    certain_oracle, conf_oracle, gen_plan, gen_world_set, per_world_results, possible_oracle,
    GenConfig, WORLD_LIMIT,
};

const CASES: u64 = 150;
const EPS: f64 = 1e-9;

/// possible/certain/conf over a random inner RA plan must agree with
/// union/intersection/probability-mass aggregation over the worlds.
#[test]
fn extraction_operators_match_world_aggregation() {
    let cfg = GenConfig::default();
    for case in 0..CASES {
        let mut rng = Rng::new(0x905_51B1E ^ case);
        let ws = gen_world_set(&mut rng, &cfg);
        let inner = gen_plan(&mut rng, &ws, 2);
        let worlds = per_world_results(&ws, &inner).expect("oracle evaluates");
        let schema = worlds
            .first()
            .expect("at least one world")
            .0
            .schema()
            .clone();

        let mut ws_eval = ws.clone();
        let got_possible = run(&mut ws_eval, &possible(inner.clone())).expect("possible runs");
        assert!(got_possible.is_certain());
        assert_eq!(
            as_relation(&got_possible),
            possible_oracle(&worlds, schema.clone()),
            "case {case}: possible disagrees\nplan: {inner:?}"
        );

        let mut ws_eval = ws.clone();
        let got_certain = run(&mut ws_eval, &certain(inner.clone())).expect("certain runs");
        assert!(got_certain.is_certain());
        assert_eq!(
            as_relation(&got_certain),
            certain_oracle(&worlds, schema),
            "case {case}: certain disagrees\nplan: {inner:?}"
        );

        let mut ws_eval = ws.clone();
        let got_conf = run(&mut ws_eval, &conf(inner.clone())).expect("conf runs");
        let expected = conf_oracle(&worlds);
        let got = conf_as_map(&got_conf);
        assert_eq!(
            got.keys().collect::<Vec<_>>(),
            expected.keys().collect::<Vec<_>>(),
            "case {case}: conf support disagrees\nplan: {inner:?}"
        );
        for (t, p) in &expected {
            assert!(
                (got[t] - p).abs() < EPS,
                "case {case}: conf({t}) = {} but oracle says {p}\nplan: {inner:?}",
                got[t]
            );
        }
    }
}

/// repair-key on a random certain relation must induce exactly the
/// distribution over maximal key repairs.
#[test]
fn repair_key_induces_the_repair_distribution() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x4E9A_114B ^ case);
        let (ws, key_cols, weighted) = gen_certain_db(&mut rng);
        let key_refs: Vec<&str> = key_cols.iter().map(String::as_str).collect();
        let plan = repair_key(
            Plan::scan("r"),
            &key_refs,
            if weighted { Some("w") } else { None },
        );

        let mut ws_eval = ws.clone();
        let repaired = run(&mut ws_eval, &plan).expect("repair-key runs");

        // Distribution over repaired instances, from the WSD result.
        let mut got: BTreeMap<Relation, f64> = BTreeMap::new();
        for pick in ws_eval.components.enumerate(WORLD_LIMIT).expect("small") {
            let p = ws_eval.components.prob_of_pick(&pick);
            *got.entry(repaired.instantiate(&pick)).or_insert(0.0) += p;
        }

        let expected = repair_oracle(&ws.relations["r"], &key_cols, weighted);
        assert_eq!(
            got.keys().collect::<Vec<_>>(),
            expected.keys().collect::<Vec<_>>(),
            "case {case}: repair support disagrees"
        );
        for (db, p) in &expected {
            assert!(
                (got[db] - p).abs() < EPS,
                "case {case}: repair prob {} vs oracle {p} for\n{db}",
                got[db]
            );
        }
    }
}

/// Within one repaired key group, the repair alternatives are exclusive and
/// exhaustive, so their confidences must sum to exactly 1.
#[test]
fn conf_sums_to_one_per_repaired_key_group() {
    let schema = Schema::of(&[
        ("k", ValueType::Int),
        ("v", ValueType::Int),
        ("w", ValueType::Int),
    ])
    .expect("distinct columns");
    let rows = vec![
        Tuple::new(vec![1.into(), 10.into(), 1.into()]),
        Tuple::new(vec![1.into(), 11.into(), 2.into()]),
        Tuple::new(vec![1.into(), 12.into(), 5.into()]),
        Tuple::new(vec![2.into(), 20.into(), 3.into()]),
        Tuple::new(vec![2.into(), 21.into(), 1.into()]),
        Tuple::new(vec![3.into(), 30.into(), 7.into()]),
    ];
    let rel = Relation::from_rows(schema, rows).expect("rows match schema");
    let mut ws = WorldSet::new();
    ws.insert("r", URelation::from_certain(&rel))
        .expect("certain relation is valid");

    let plan = conf(repair_key(Plan::scan("r"), &["k"], Some("w")));
    let result = run(&mut ws, &plan).expect("conf over repair-key runs");

    let mut per_group: BTreeMap<Value, f64> = BTreeMap::new();
    for (t, _) in result.rows() {
        let p = t.get(3).as_f64().expect("conf column is a float");
        *per_group.entry(t.get(0).clone()).or_insert(0.0) += p;
    }
    assert_eq!(per_group.len(), 3);
    for (k, total) in per_group {
        assert!(
            (total - 1.0).abs() < EPS,
            "group {k}: confidences sum to {total}, not 1"
        );
    }
    // Weighted alternatives: conf(k=1, v=10) must be 1/8.
    let t10 = result
        .rows()
        .iter()
        .find(|(t, _)| t.get(1) == &Value::Int(10))
        .expect("tuple present");
    assert!((t10.0.get(3).as_f64().expect("float") - 1.0 / 8.0).abs() < EPS);
}

/// A cloned (`Arc`-shared) repair-key subtree used twice in one plan must
/// evaluate once: both occurrences refer to the same components, so a
/// natural self-join is the identity and confidences are unchanged. Without
/// memoization each occurrence would mint fresh components and the join
/// would wrongly multiply probabilities.
#[test]
fn shared_repair_subtree_evaluates_once() {
    let schema =
        Schema::of(&[("k", ValueType::Int), ("v", ValueType::Int)]).expect("distinct columns");
    let rows = vec![
        Tuple::new(vec![1.into(), 10.into()]),
        Tuple::new(vec![1.into(), 11.into()]),
    ];
    let rel = Relation::from_rows(schema, rows).expect("rows match schema");
    let mut ws = WorldSet::new();
    ws.insert("r", URelation::from_certain(&rel))
        .expect("certain relation is valid");

    let repaired = repair_key(Plan::scan("r"), &["k"], None);
    let self_join = repaired.clone().join(repaired.clone());
    let result = run(&mut ws, &conf(self_join)).expect("conf over self-join runs");

    // One key group => exactly one component minted, despite two occurrences.
    assert_eq!(ws.components.len(), 1);
    for (t, p) in conf_as_map(&result) {
        assert!(
            (p - 0.5).abs() < EPS,
            "conf({t}) = {p}, expected 0.5 (not 0.25)"
        );
    }
}

/// `repair-key` refuses uncertain inputs.
#[test]
fn repair_key_rejects_uncertain_input() {
    let mut ws = WorldSet::new();
    let c = ws
        .components
        .add(maybms_core::Component::uniform(2).expect("2 alternatives"));
    let schema = Schema::of(&[("a", ValueType::Int)]).expect("distinct columns");
    let mut u = URelation::new(schema);
    u.push(
        Tuple::new(vec![1.into()]),
        maybms_core::WsDescriptor::single(c, 0),
    )
    .expect("tuple matches schema");
    ws.insert("r0", u).expect("descriptor is valid");

    let res = run(&mut ws, &repair_key(Plan::scan("r0"), &["a"], None));
    assert!(
        matches!(res, Err(maybms_core::MayError::NotCertain(_))),
        "{res:?}"
    );
}

// ---- helpers ----

fn as_relation(u: &URelation) -> Relation {
    let mut r = Relation::new(u.schema().clone());
    for (t, _) in u.rows() {
        r.insert(t.clone()).expect("schema-checked");
    }
    r
}

fn conf_as_map(u: &URelation) -> BTreeMap<Tuple, f64> {
    let conf_idx = u.schema().arity() - 1;
    u.rows()
        .iter()
        .map(|(t, _)| {
            let data: Vec<Value> = t.values()[..conf_idx].to_vec();
            (
                Tuple::new(data),
                t.get(conf_idx).as_f64().expect("conf column is a float"),
            )
        })
        .collect()
}

/// A random certain relation r(k, v, w) with small key groups, plus whether
/// to exercise the weighted variant.
fn gen_certain_db(rng: &mut Rng) -> (WorldSet, Vec<String>, bool) {
    let schema = Schema::of(&[
        ("k", ValueType::Int),
        ("v", ValueType::Int),
        ("w", ValueType::Int),
    ])
    .expect("distinct columns");
    let mut rel = Relation::new(schema);
    for _ in 0..rng.range(1, 7) {
        rel.insert(Tuple::new(vec![
            Value::Int(rng.below(3) as i64),
            Value::Int(rng.below(4) as i64),
            Value::Int(rng.range(1, 5) as i64),
        ]))
        .expect("rows match schema");
    }
    let mut ws = WorldSet::new();
    ws.insert("r", URelation::from_certain(&rel))
        .expect("certain relation is valid");
    (ws, vec!["k".to_string()], rng.chance(0.5))
}

/// Brute-force distribution over maximal key repairs of a certain relation.
fn repair_oracle(
    input: &URelation,
    key_cols: &[String],
    weighted: bool,
) -> BTreeMap<Relation, f64> {
    let schema = input.schema().clone();
    let key_idx: Vec<usize> = key_cols
        .iter()
        .map(|k| schema.col_index(k).expect("key column exists"))
        .collect();
    let w_idx = schema.col_index("w").expect("weight column exists");

    let mut tuples: Vec<&Tuple> = input.rows().iter().map(|(t, _)| t).collect();
    tuples.sort_unstable();
    tuples.dedup();
    let mut groups: BTreeMap<Vec<Value>, Vec<&Tuple>> = BTreeMap::new();
    for t in tuples {
        groups
            .entry(t.project(&key_idx).values().to_vec())
            .or_default()
            .push(t);
    }

    // Cross product of one choice per group.
    let groups: Vec<&Vec<&Tuple>> = groups.values().collect();
    let mut out: BTreeMap<Relation, f64> = BTreeMap::new();
    let mut choice = vec![0usize; groups.len()];
    loop {
        let mut rel = Relation::new(schema.clone());
        let mut prob = 1.0;
        for (gi, g) in groups.iter().enumerate() {
            let t = g[choice[gi]];
            rel.insert(t.clone()).expect("schema-checked");
            let weight = |t: &Tuple| {
                if weighted {
                    t.get(w_idx).as_f64().expect("int weight")
                } else {
                    1.0
                }
            };
            let total: f64 = g.iter().map(|t| weight(t)).sum();
            prob *= weight(t) / total;
        }
        *out.entry(rel).or_insert(0.0) += prob;

        let mut i = groups.len();
        loop {
            if i == 0 {
                return out;
            }
            i -= 1;
            choice[i] += 1;
            if choice[i] < groups[i].len() {
                break;
            }
            choice[i] = 0;
        }
    }
}
