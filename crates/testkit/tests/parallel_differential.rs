//! Differential tests for morsel-driven parallel execution.
//!
//! The engine's parallelism contract is *byte-identical output for every
//! thread count*: numeric descriptor handles and string codes may differ
//! internally, but everything observable — row order, descriptors,
//! repair-key component numbering, normalize's canonical form, `conf`'s
//! floating-point confidences — must be exactly equal. These tests are the
//! oracle for that contract:
//!
//! * **plan execution** — generated plans mixing the positive relational
//!   algebra with the uncertainty constructs run at `threads = 1` and
//!   `threads = 4` (with the morsel threshold forced to 1 row so every
//!   parallel code path fires on tiny inputs) and must produce equal
//!   u-relations AND equal post-run world sets (component minting parity);
//! * **normalization** — `normalize_with` agrees across thread counts on
//!   randomized world sets;
//! * **pool sharding** — descriptor/string shards built over a shared base
//!   absorb back deterministically: every shard-local handle remaps to a
//!   canonical global handle with identical content, and the merged pools
//!   stay canonical;
//! * **threshold crossing** — a ~6k-row workload under the *default*
//!   morsel threshold (4096) agrees across thread counts, so the
//!   inline/fan-out boundary itself cannot change results.
//!
//! A failing case prints its seed for exact replay.

use maybms_algebra::{run_with_opts, Plan};
use maybms_core::columnar::StrPool;
use maybms_core::parallel::DEFAULT_MIN_ROWS;
use maybms_core::rng::Rng;
use maybms_core::{
    ComponentId, DescriptorPool, ParCfg, Schema, Tuple, URelation, Value, ValueType, WorldSet,
};
use maybms_ql::{conf, possible, repair_key};
use maybms_testkit::{gen_uncertain_plan, gen_world_set, GenConfig};

/// ≥ 150 generated plans, per the issue's acceptance bar.
const PLAN_CASES: usize = 160;
/// Randomized world sets for the normalize parity loop.
const NORMALIZE_CASES: usize = 50;

/// Per-shard record of `(local handle, the terms it must keep resolving to)`.
type MintedTerms = Vec<(maybms_core::DescId, Vec<(ComponentId, u16)>)>;

/// A configuration that forces every parallel code path even on the tiny
/// generated inputs: `min_rows = 1` disables the morsel threshold.
fn par(threads: usize) -> ParCfg {
    ParCfg {
        threads,
        min_rows: 1,
    }
}

fn run_both(ws: &WorldSet, plan: &Plan, seed: u64) {
    let mut ws1 = ws.clone();
    let mut ws4 = ws.clone();
    let r1 = run_with_opts(&mut ws1, plan, &par(1));
    let r4 = run_with_opts(&mut ws4, plan, &par(4));
    match (r1, r4) {
        (Ok(a), Ok(b)) => {
            assert_eq!(
                a, b,
                "seed {seed}: results differ across thread counts\nplan:\n{plan}"
            );
            assert_eq!(
                ws1, ws4,
                "seed {seed}: post-run world sets differ (component minting)\nplan:\n{plan}"
            );
        }
        (Err(e1), Err(e4)) => assert_eq!(
            e1.to_string(),
            e4.to_string(),
            "seed {seed}: errors differ across thread counts\nplan:\n{plan}"
        ),
        (r1, r4) => panic!(
            "seed {seed}: one thread count failed, the other did not\n\
             threads=1: {r1:?}\nthreads=4: {r4:?}\nplan:\n{plan}"
        ),
    }
}

#[test]
fn generated_plans_agree_across_thread_counts() {
    let cfg = GenConfig::default();
    for case in 0..PLAN_CASES {
        let seed = 0x00A6_0000 + case as u64;
        let mut rng = Rng::new(seed);
        let ws = gen_world_set(&mut rng, &cfg);
        let plan = gen_uncertain_plan(&mut rng, &ws, 2);
        run_both(&ws, &plan, seed);
    }
}

#[test]
fn normalize_agrees_across_thread_counts() {
    let cfg = GenConfig {
        max_rows: 12,
        ..GenConfig::default()
    };
    for case in 0..NORMALIZE_CASES {
        let seed = 0x00A6_1000 + case as u64;
        let mut rng = Rng::new(seed);
        let ws = gen_world_set(&mut rng, &cfg);
        let mut ws1 = ws.clone();
        let mut ws4 = ws.clone();
        ws1.normalize_with(&par(1));
        ws4.normalize_with(&par(4));
        assert_eq!(ws1, ws4, "seed {seed}: normalize differs across threads");
    }
}

/// Shards built over one base pool absorb back deterministically: each
/// local handle remaps to a global handle with the *same term list*, base
/// handles pass through untouched, identical content interned in different
/// shards converges to one global handle, and the merged pool stays
/// canonical (re-interning any entry's terms returns the same handle).
#[test]
fn pool_shard_merge_roundtrip() {
    for case in 0..20u64 {
        let seed = 0x00A6_2000 + case;
        let mut rng = Rng::new(seed);
        let mut pool = DescriptorPool::new();
        // A populated base, so base-vs-local boundaries are exercised.
        let gen_terms = |rng: &mut Rng| -> Vec<(ComponentId, u16)> {
            let mut terms: Vec<(ComponentId, u16)> = (0..rng.below(4))
                .map(|_| (ComponentId(rng.below(6) as u32), rng.below(3) as u16))
                .collect();
            terms.sort_unstable();
            terms.dedup_by_key(|t| t.0);
            terms
        };
        let base: Vec<_> = (0..10)
            .map(|_| pool.intern_terms(&gen_terms(&mut rng)))
            .collect();
        // Several shards, each recording (local handle, expected terms).
        let mut deltas = Vec::new();
        let mut expected: Vec<MintedTerms> = Vec::new();
        for _ in 0..3 {
            let mut shard = pool.shard();
            let mut minted = Vec::new();
            for _ in 0..15 {
                let terms = gen_terms(&mut rng);
                let id = shard.intern_terms(&terms);
                minted.push((id, terms));
            }
            expected.push(minted);
            deltas.push(shard.into_delta());
        }
        let remaps = pool.absorb(deltas);
        assert_eq!(remaps.len(), expected.len());
        let mut globals = base.clone();
        for (minted, remap) in expected.iter().zip(&remaps) {
            for (local, terms) in minted {
                let global = remap.remap(*local);
                assert_eq!(
                    pool.terms(global),
                    &terms[..],
                    "seed {seed}: remapped handle changed content"
                );
                globals.push(global);
            }
        }
        // The merged pool is canonical: re-interning the terms of any handle
        // we hold (base or remapped) is a hit on that same handle, so equal
        // content minted in different shards converged to one global id.
        for g in globals {
            let terms = pool.terms(g).to_vec();
            assert_eq!(
                pool.intern_terms(&terms),
                g,
                "seed {seed}: merged pool not canonical"
            );
        }
    }
}

/// String shards converge the same way: cross-shard duplicates merge to
/// one code, base codes pass through, and the merged dictionary stays
/// canonical.
#[test]
fn str_shard_merge_roundtrip() {
    for case in 0..20u64 {
        let seed = 0x00A6_3000 + case;
        let mut rng = Rng::new(seed);
        let mut pool = StrPool::new();
        let base: Vec<u32> = (0..5).map(|i| pool.intern(&format!("base{i}"))).collect();
        let mut deltas = Vec::new();
        let mut expected: Vec<Vec<(u32, String)>> = Vec::new();
        for _ in 0..3 {
            let mut shard = pool.shard();
            let mut minted = Vec::new();
            for _ in 0..12 {
                let s = format!("s{}", rng.below(8));
                let code = shard.intern(&s);
                minted.push((code, s));
            }
            expected.push(minted);
            deltas.push(shard.into_delta());
        }
        let remaps = pool.absorb(deltas);
        for (minted, remap) in expected.iter().zip(&remaps) {
            for (local, s) in minted {
                assert_eq!(
                    pool.get(remap.remap(*local)),
                    s.as_str(),
                    "seed {seed}: remapped code changed content"
                );
            }
        }
        for (i, &b) in base.iter().enumerate() {
            assert_eq!(pool.get(b), format!("base{i}"), "base codes pass through");
        }
        // Canonical after merge: re-interning any stored string is a hit.
        for code in 0..pool.len() as u32 {
            let s = pool.get(code).to_string();
            assert_eq!(
                pool.intern(&s),
                code,
                "seed {seed}: dictionary not canonical"
            );
        }
    }
}

/// A workload big enough to cross the *default* morsel threshold, so the
/// production inline/fan-out decision (not the test-forced `min_rows = 1`)
/// is what gets compared: repair-key over ~6k rows, joined and measured
/// with `conf`, plus a normalize pass.
#[test]
fn threshold_crossing_workload_agrees() {
    let rows = DEFAULT_MIN_ROWS + 2000;
    let mut rng = Rng::new(0x00A6_4000);
    let schema = Schema::of(&[
        ("a", ValueType::Int),
        ("b", ValueType::Int),
        ("w", ValueType::Int),
    ])
    .expect("distinct columns");
    let mut rel = URelation::new(schema);
    for i in 0..rows {
        let tuple = Tuple::new(vec![
            Value::Int((i / 4) as i64),
            Value::Int(rng.below(50) as i64),
            Value::Int(1 + rng.below(3) as i64),
        ]);
        rel.push(tuple, maybms_core::WsDescriptor::tautology())
            .expect("tuple matches schema");
    }
    let mut ws = WorldSet::new();
    ws.insert("big", rel).expect("certain relation is valid");

    let repaired = repair_key(possible(Plan::scan("big")), &["a"], Some("w"));
    let plan = conf(repaired.project(["b"]));

    let mut ws1 = ws.clone();
    let mut ws4 = ws.clone();
    let p1 = ParCfg::with_threads(1);
    let p4 = ParCfg::with_threads(4);
    let a = run_with_opts(&mut ws1, &plan, &p1).expect("threads=1 run succeeds");
    let b = run_with_opts(&mut ws4, &plan, &p4).expect("threads=4 run succeeds");
    assert_eq!(a, b, "threshold-crossing run differs across thread counts");
    assert_eq!(ws1, ws4, "component minting differs across thread counts");

    ws1.normalize_with(&p1);
    ws4.normalize_with(&p4);
    assert_eq!(ws1, ws4, "normalize differs across thread counts at scale");
}
