//! Differential tests for the MayQL front-end.
//!
//! Two directions, both on randomized world sets:
//!
//! * **text vs. hand-built plan** — `gen_query` emits a random MayQL string
//!   together with the plan it must lower to, built independently of the
//!   parser; the parsed plan must be equivalent and both must execute to
//!   the same u-relation.
//! * **unparse/reparse roundtrip** — random plans (including the
//!   uncertainty operators) are pretty-printed with `to_mayql`, re-parsed,
//!   and re-printed: the text must be a fixpoint and both plans must
//!   execute identically.
//!
//! Plan equivalence is compared through the canonical MayQL printing, which
//! is injective on the minimal plan shapes the planner emits. Execution
//! comparison runs each plan on its own clone of the world set: extension
//! operators mint components deterministically, so equivalent plans produce
//! identical descriptors, not merely isomorphic ones. A failing case prints
//! its seed (and query text) for exact replay.

use maybms_algebra::run;
use maybms_core::rng::Rng;
use maybms_core::{URelation, WorldSet};
use maybms_sql::{compile_unoptimized, to_mayql, Catalog};
use maybms_testkit::{gen_plan, gen_query, gen_world_set, wrap_uncertainty, GenConfig};

/// ≥ 100 cases each, per the acceptance bar of the MayQL front-end issue.
const CASES: usize = 120;

fn execute(ws: &WorldSet, plan: &maybms_algebra::Plan, context: &str) -> URelation {
    let mut ws = ws.clone();
    let mut result = run(&mut ws, plan).unwrap_or_else(|e| panic!("{context}: {e}"));
    // Sort-and-dedup so the comparison is order-insensitive (evaluation is
    // deterministic, but equivalence shouldn't depend on that).
    result.dedup();
    result
}

#[test]
fn parsed_text_matches_hand_built_plan() {
    let cfg = GenConfig::default();
    for case in 0..CASES {
        let seed = 0x5A11_0000 + case as u64;
        let mut rng = Rng::new(seed);
        let ws = gen_world_set(&mut rng, &cfg);
        let (text, hand_built) = gen_query(&mut rng, &ws, 2);
        let catalog = Catalog::from_world_set(&ws);

        let parsed = compile_unoptimized(&catalog, &text)
            .unwrap_or_else(|e| panic!("seed {seed}: {text}\n{}", e.render(&text)));
        let printed_parsed =
            to_mayql(&catalog, &parsed).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        let printed_hand =
            to_mayql(&catalog, &hand_built).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert_eq!(
            printed_parsed, printed_hand,
            "seed {seed}: parsed plan diverges from hand-built plan for: {text}"
        );

        let a = execute(&ws, &parsed, &format!("seed {seed}, parsed: {text}"));
        let b = execute(
            &ws,
            &hand_built,
            &format!("seed {seed}, hand-built: {text}"),
        );
        assert_eq!(a, b, "seed {seed}: execution differs for: {text}");
    }
}

#[test]
fn unparse_reparse_roundtrip() {
    let cfg = GenConfig::default();
    for case in 0..CASES {
        let seed = 0x0F1C_0000 + case as u64;
        let mut rng = Rng::new(seed);
        let ws = gen_world_set(&mut rng, &cfg);
        let plan = gen_plan(&mut rng, &ws, 3);
        let plan = wrap_uncertainty(&mut rng, &ws, plan);
        let catalog = Catalog::from_world_set(&ws);

        let text = to_mayql(&catalog, &plan)
            .unwrap_or_else(|e| panic!("seed {seed}: unparse failed: {e}\nplan:\n{plan}"));
        let reparsed = compile_unoptimized(&catalog, &text)
            .unwrap_or_else(|e| panic!("seed {seed}: {text}\n{}", e.render(&text)));
        let text2 = to_mayql(&catalog, &reparsed)
            .unwrap_or_else(|e| panic!("seed {seed}: re-unparse failed: {e}"));
        assert_eq!(
            text2, text,
            "seed {seed}: printing is not a fixpoint (plan shapes diverged)"
        );

        let a = execute(&ws, &plan, &format!("seed {seed}, original: {text}"));
        let b = execute(&ws, &reparsed, &format!("seed {seed}, reparsed: {text}"));
        assert_eq!(a, b, "seed {seed}: execution differs for: {text}");
    }
}

/// The census repair with WEIGHT BY, text vs. hand-built, on deterministic
/// data (random generators avoid weights because generated values include
/// zero, which is not a valid weight).
#[test]
fn weighted_repair_text_matches_hand_built() {
    use maybms_algebra::Plan;
    use maybms_core::{Relation, Schema, Tuple, Value, ValueType};
    use maybms_ql::repair_key;

    let schema = Schema::of(&[
        ("name", ValueType::Str),
        ("ssn", ValueType::Int),
        ("w", ValueType::Int),
    ])
    .expect("distinct columns");
    let rows = [
        ("Smith", 185i64, 3i64),
        ("Smith", 785, 1),
        ("Brown", 185, 1),
        ("Brown", 186, 1),
    ];
    let rel = Relation::from_rows(
        schema,
        rows.iter()
            .map(|&(n, s, w)| Tuple::new(vec![Value::str(n), s.into(), w.into()]))
            .collect(),
    )
    .expect("rows match schema");
    let mut ws = WorldSet::new();
    ws.insert("censusform", URelation::from_certain(&rel))
        .expect("certain relation is valid");
    let catalog = Catalog::from_world_set(&ws);

    let text = "repair key name in censusform weight by w";
    let parsed = compile_unoptimized(&catalog, text).expect("repair parses");
    let hand = repair_key(Plan::scan("censusform"), &["name"], Some("w"));
    assert_eq!(
        to_mayql(&catalog, &parsed).expect("parsed has MayQL form"),
        to_mayql(&catalog, &hand).expect("hand-built has MayQL form"),
    );
    assert_eq!(execute(&ws, &parsed, text), execute(&ws, &hand, text));
}
