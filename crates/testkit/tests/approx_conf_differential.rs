//! Differential tests for `conf(eps, delta)` — the (ε, δ)-approximate
//! confidence solver — against the exact solver and brute-force world
//! enumeration:
//!
//! * **sampled vs exact** — with the cutover forced to 0 (every group
//!   sampled), estimates stay within ε of the exact confidences across
//!   chain, disjoint, and dense bridging descriptor shapes, over ≥ 50
//!   seeds per shape;
//! * **thread-count parity** — forced-sampling runs at `threads = 1` and
//!   `threads = 4` (morsel threshold 1) are byte-identical, because the
//!   sampling streams are keyed on descriptor-group content rather than
//!   any execution index;
//! * **cutover boundary** — with the limit at a group's exact cost, the
//!   exact path runs and results are bit-identical to exact `conf` (and
//!   match the enumeration oracle); one below, the group samples and the
//!   estimate still lands within ε of the oracle;
//! * **seed reproducibility** — equal seeds give bit-identical estimates,
//!   and the executor's confidence counters account for every group.
//!
//! A failing case prints its seed for exact replay.

use std::collections::BTreeMap;

use maybms_algebra::{run, run_with_opts, run_with_stats_opts, Plan};
use maybms_core::rng::Rng;
use maybms_core::{
    connected_groups, Component, ParCfg, Schema, Tuple, URelation, Value, ValueType, WorldSet,
    WsDescriptor,
};
use maybms_ql::{conf, conf_approx_with, ApproxConf};
use maybms_testkit::{conf_oracle, per_world_results};

/// Seeds per shape; the issue's acceptance bar is ≥ 50.
const SEEDS: u64 = 60;
/// Absolute error bound under test.
const EPS: f64 = 0.05;
/// Per-tuple failure probability. The suite runs a few hundred estimates,
/// so with Hoeffding's (conservative) draw counts a fixed-seed failure
/// would be a genuine bug, not noise — and seeds are fixed, so a passing
/// suite stays passing.
const DELTA: f64 = 1e-3;

/// `ApproxConf` with the cutover forced to 0: every group samples.
fn forced(seed: u64) -> ApproxConf {
    ApproxConf {
        eps: EPS,
        delta: DELTA,
        seed,
        exact_limit: Some(0),
    }
}

fn par(threads: usize) -> ParCfg {
    ParCfg {
        threads,
        min_rows: 1,
    }
}

/// Descriptor shapes the solver factorizes differently: one long connected
/// chain (single big group), independent singletons (many unit groups),
/// and a dense pile of two-term bridges (few mid-sized groups).
#[derive(Clone, Copy, Debug)]
enum Shape {
    Chain,
    Disjoint,
    Dense,
}

const SHAPES: [Shape; 3] = [Shape::Chain, Shape::Disjoint, Shape::Dense];

/// A world set with one relation `r(a)` whose tuples carry descriptors of
/// the given shape. Component weights are randomized so no estimate is
/// saved by symmetry; every tuple appears under several descriptors so
/// `conf` solves a genuine disjunction.
fn shaped_world(rng: &mut Rng, shape: Shape) -> WorldSet {
    let mut ws = WorldSet::new();
    let comp = |rng: &mut Rng| {
        let w0 = rng.range(1, 9) as f64;
        let w1 = rng.range(1, 9) as f64;
        Component::from_weights(&[w0, w1]).expect("positive weights")
    };
    let schema = Schema::of(&[("a", ValueType::Int)]).expect("one column");
    let mut rel = URelation::new(schema);
    match shape {
        Shape::Chain => {
            // c0 — c1 — … — c_len: two-term links, one connected group.
            let len = rng.range(4, 9);
            let ids: Vec<_> = (0..=len).map(|_| ws.components.add(comp(rng))).collect();
            for i in 0..len {
                let d = WsDescriptor::single(ids[i], 0)
                    .conjoin(&WsDescriptor::single(ids[i + 1], 0))
                    .expect("distinct components");
                rel.push(Tuple::new(vec![Value::Int(0)]), d)
                    .expect("tuple matches schema");
            }
        }
        Shape::Disjoint => {
            // Independent singletons: every descriptor is its own group.
            for _ in 0..rng.range(2, 4) {
                let c = ws.components.add(comp(rng));
                rel.push(
                    Tuple::new(vec![Value::Int(0)]),
                    WsDescriptor::single(c, rng.below(2) as u16),
                )
                .expect("tuple matches schema");
            }
        }
        Shape::Dense => {
            // Random two-term bridges over a small component pool: groups
            // merge and split with the draw, covering mixed shapes.
            let ids: Vec<_> = (0..rng.range(4, 7))
                .map(|_| ws.components.add(comp(rng)))
                .collect();
            for _ in 0..rng.range(3, 7) {
                let i = rng.below(ids.len());
                let mut j = rng.below(ids.len());
                if j == i {
                    j = (j + 1) % ids.len();
                }
                let d = WsDescriptor::single(ids[i], rng.below(2) as u16)
                    .conjoin(&WsDescriptor::single(ids[j], rng.below(2) as u16))
                    .expect("distinct components");
                rel.push(Tuple::new(vec![Value::Int(0)]), d)
                    .expect("tuple matches schema");
            }
        }
    }
    // A second tuple with a fresh singleton keeps the per-tuple error
    // budgets independent (each tuple splits ε over its own groups only).
    let extra = ws.components.add(comp(rng));
    rel.push(
        Tuple::new(vec![Value::Int(1)]),
        WsDescriptor::single(extra, 0),
    )
    .expect("tuple matches schema");
    ws.insert("r", rel).expect("descriptors are valid");
    ws
}

fn conf_as_map(u: &URelation) -> BTreeMap<Tuple, f64> {
    let conf_idx = u.schema().arity() - 1;
    u.rows()
        .iter()
        .map(|(t, _)| {
            let data: Vec<Value> = t.values()[..conf_idx].to_vec();
            (
                Tuple::new(data),
                t.get(conf_idx).as_f64().expect("conf column is a float"),
            )
        })
        .collect()
}

/// Forced sampling lands within ε of the exact solver on every shape, for
/// 60 seeds per shape — the issue's sampled-vs-exact differential.
#[test]
fn sampling_matches_exact_within_eps_across_shapes() {
    for shape in SHAPES {
        for seed in 0..SEEDS {
            let mut rng = Rng::new(0xA990_C0DE ^ (seed << 8) ^ shape as u64);
            let ws = shaped_world(&mut rng, shape);

            let exact = run(&mut ws.clone(), &conf(Plan::scan("r"))).expect("exact conf runs");
            let approx = run(
                &mut ws.clone(),
                &conf_approx_with(Plan::scan("r"), forced(seed)),
            )
            .expect("approx conf runs");

            let exact = conf_as_map(&exact);
            let approx = conf_as_map(&approx);
            assert_eq!(
                exact.keys().collect::<Vec<_>>(),
                approx.keys().collect::<Vec<_>>(),
                "{shape:?} seed {seed}: support disagrees"
            );
            for (t, p) in &exact {
                assert!(
                    (approx[t] - p).abs() <= EPS,
                    "{shape:?} seed {seed}: |{} - {p}| > {EPS} for {t}",
                    approx[t]
                );
            }
        }
    }
}

/// Forced-sampling runs are byte-identical across thread counts: the
/// sampling streams are functions of descriptor-group content, not of any
/// morsel or worker index.
#[test]
fn sampling_is_bit_identical_across_thread_counts() {
    for shape in SHAPES {
        for seed in 0..SEEDS {
            let mut rng = Rng::new(0x7EAD_5AFE ^ (seed << 8) ^ shape as u64);
            let ws = shaped_world(&mut rng, shape);
            let plan = conf_approx_with(Plan::scan("r"), forced(seed));

            let r1 = run_with_opts(&mut ws.clone(), &plan, &par(1)).expect("threads=1 runs");
            let r4 = run_with_opts(&mut ws.clone(), &plan, &par(4)).expect("threads=4 runs");
            assert_eq!(
                r1, r4,
                "{shape:?} seed {seed}: results differ across thread counts"
            );
        }
    }
}

/// The cutover boundary is exact: with the limit *at* the most expensive
/// group's cost bound, every group stays on the exact path and the result
/// is bit-identical to exact `conf` (which matches the enumeration
/// oracle); one below, that group samples — and still lands within ε of
/// the oracle, with the executor's counters recording the switch.
#[test]
fn cutover_boundary_is_bitwise_exact_then_samples() {
    for (i, shape) in SHAPES.iter().enumerate() {
        for seed in 0..20u64 {
            let mut rng = Rng::new(0xB0_DA57 ^ (seed << 8) ^ i as u64);
            let ws = shaped_world(&mut rng, *shape);

            // Cost bound of the most expensive connected group of any
            // distinct tuple's descriptor set.
            let rel = &ws.relations["r"];
            let mut by_tuple: BTreeMap<Tuple, Vec<WsDescriptor>> = BTreeMap::new();
            for (t, d) in rel.rows() {
                by_tuple.entry(t.clone()).or_default().push(d.clone());
            }
            let max_cost = by_tuple
                .values()
                .flat_map(|descs| {
                    let refs: Vec<&WsDescriptor> = descs.iter().collect();
                    connected_groups(&refs)
                        .iter()
                        .map(|g| ws.components.group_exact_cost(g))
                        .collect::<Vec<_>>()
                })
                .max()
                .expect("at least one group") as u64;

            let oracle = {
                let worlds = per_world_results(&ws, &Plan::scan("r")).expect("oracle evaluates");
                conf_oracle(&worlds)
            };
            let exact = run(&mut ws.clone(), &conf(Plan::scan("r"))).expect("exact conf runs");

            // Limit == cost: every group is exact, bitwise equal to `conf`.
            let at = ApproxConf {
                exact_limit: Some(max_cost),
                ..forced(seed)
            };
            let (r_at, stats_at) = run_with_stats_opts(
                &mut ws.clone(),
                &conf_approx_with(Plan::scan("r"), at),
                &par(1),
            )
            .expect("boundary run");
            assert_eq!(
                r_at, exact,
                "{shape:?} seed {seed}: limit == cost must stay exact"
            );
            assert_eq!(stats_at.conf.sampled_groups, 0);
            assert_eq!(stats_at.conf.samples_drawn, 0);
            for (t, p) in conf_as_map(&r_at) {
                assert!(
                    (oracle[&t] - p).abs() < 1e-9,
                    "{shape:?} seed {seed}: exact path off the oracle at {t}"
                );
            }

            // Limit == cost − 1: the expensive group samples.
            let below = ApproxConf {
                exact_limit: Some(max_cost - 1),
                ..forced(seed)
            };
            let (r_below, stats_below) = run_with_stats_opts(
                &mut ws.clone(),
                &conf_approx_with(Plan::scan("r"), below),
                &par(1),
            )
            .expect("below-boundary run");
            assert!(
                stats_below.conf.sampled_groups >= 1,
                "{shape:?} seed {seed}: limit below cost must sample"
            );
            assert!(stats_below.conf.samples_drawn > 0);
            for (t, p) in conf_as_map(&r_below) {
                assert!(
                    (oracle[&t] - p).abs() <= EPS,
                    "{shape:?} seed {seed}: |{p} - {}| > {EPS} at {t}",
                    oracle[&t]
                );
            }
        }
    }
}

/// Equal seeds reproduce estimates bit for bit; the confidence counters
/// account for every connected group, exact plus sampled.
#[test]
fn seeds_reproduce_and_stats_account_for_groups() {
    for seed in 0..20u64 {
        let mut rng = Rng::new(0x5EED_CA5E ^ seed);
        let ws = shaped_world(&mut rng, Shape::Dense);
        let plan = conf_approx_with(Plan::scan("r"), forced(seed));

        let (a, stats) = run_with_stats_opts(&mut ws.clone(), &plan, &par(1)).expect("first run");
        let b = run(&mut ws.clone(), &plan).expect("second run");
        assert_eq!(a, b, "seed {seed}: same seed must reproduce exactly");

        // Forced cutover: every group sampled, none exact, and the group
        // count matches an independent recount over the stored rows.
        let rel = &ws.relations["r"];
        let mut by_tuple: BTreeMap<Tuple, Vec<WsDescriptor>> = BTreeMap::new();
        for (t, d) in rel.rows() {
            by_tuple.entry(t.clone()).or_default().push(d.clone());
        }
        let groups: u64 = by_tuple
            .values()
            .map(|descs| {
                let refs: Vec<&WsDescriptor> = descs.iter().collect();
                connected_groups(&refs).len() as u64
            })
            .sum();
        assert_eq!(stats.conf.exact_groups, 0, "seed {seed}");
        assert_eq!(stats.conf.sampled_groups, groups, "seed {seed}");
        assert!(stats.conf.largest_group >= 1);
    }
}

/// A tuple mixing one cheap and one expensive group under a mid-range
/// limit takes both paths in a single solve: the cheap group exact, the
/// expensive one sampled — and the combined estimate still lands within ε
/// (exact groups spend none of the error budget).
#[test]
fn mixed_exact_and_sampled_groups_within_one_tuple() {
    for seed in 0..20u64 {
        let mut rng = Rng::new(0x111D_C0DE ^ seed);
        let mut ws = WorldSet::new();
        let comp = |rng: &mut Rng, alts: usize| {
            let ws: Vec<f64> = (0..alts).map(|_| rng.range(1, 9) as f64).collect();
            Component::from_weights(&ws).expect("positive weights")
        };
        // Cheap group: one singleton (cost 2). Expensive group: a chain of
        // 8 links over 9 three-way components — cost min(2⁸, 3⁹) = 256.
        let cheap = ws.components.add(comp(&mut rng, 2));
        let ids: Vec<_> = (0..9)
            .map(|_| ws.components.add(comp(&mut rng, 3)))
            .collect();
        let schema = Schema::of(&[("a", ValueType::Int)]).expect("one column");
        let mut rel = URelation::new(schema);
        rel.push(
            Tuple::new(vec![Value::Int(0)]),
            WsDescriptor::single(cheap, 0),
        )
        .expect("tuple matches schema");
        for i in 0..8 {
            let d = WsDescriptor::single(ids[i], 0)
                .conjoin(&WsDescriptor::single(ids[i + 1], 0))
                .expect("distinct components");
            rel.push(Tuple::new(vec![Value::Int(0)]), d)
                .expect("tuple matches schema");
        }
        ws.insert("r", rel).expect("descriptors are valid");

        let exact = run(&mut ws.clone(), &conf(Plan::scan("r"))).expect("exact conf runs");
        let approx = ApproxConf {
            eps: EPS,
            delta: DELTA,
            seed,
            exact_limit: Some(16), // 2 ≤ 16 < 256
        };
        let (got, stats) = run_with_stats_opts(
            &mut ws.clone(),
            &conf_approx_with(Plan::scan("r"), approx),
            &par(1),
        )
        .expect("mixed run");
        assert_eq!(stats.conf.exact_groups, 1, "seed {seed}");
        assert_eq!(stats.conf.sampled_groups, 1, "seed {seed}");
        let exact = conf_as_map(&exact);
        for (t, p) in conf_as_map(&got) {
            assert!(
                (exact[&t] - p).abs() <= EPS,
                "seed {seed}: |{p} - {}| > {EPS}",
                exact[&t]
            );
        }
    }
}
