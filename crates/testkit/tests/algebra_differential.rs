//! Differential property tests: for random small world sets and random
//! positive-relational-algebra plans, the WSD-level executor's result,
//! instantiated in each world, must equal the naive single-world algebra run
//! inside that world. This is the central soundness property of evaluating
//! the algebra directly on the decomposition.

use maybms_algebra::{naive, run};
use maybms_core::rng::Rng;
use maybms_testkit::{gen_plan, gen_world_set, GenConfig, WORLD_LIMIT};

const CASES: u64 = 300;

#[test]
fn wsd_evaluation_matches_per_world_oracle() {
    let cfg = GenConfig::default();
    for case in 0..CASES {
        let mut rng = Rng::new(0xA15E_B00C ^ case);
        let ws = gen_world_set(&mut rng, &cfg);
        let plan = gen_plan(&mut rng, &ws, 3);

        let mut ws_eval = ws.clone();
        let result = run(&mut ws_eval, &plan)
            .unwrap_or_else(|e| panic!("case {case}: eval failed: {e}\nplan: {plan:?}"));

        for (pick, db, _prob) in ws.enumerate(WORLD_LIMIT).expect("small world set") {
            let expected = naive::eval(&plan, &db)
                .unwrap_or_else(|e| panic!("case {case}: naive eval failed: {e}"));
            let actual = result.instantiate(&pick);
            assert_eq!(
                actual, expected,
                "case {case}: world {pick:?} disagrees\nplan: {plan:?}\nwsd result:\n{result}"
            );
        }
    }
}

#[test]
fn evaluation_leaves_base_relations_untouched() {
    let cfg = GenConfig::default();
    for case in 0..20 {
        let mut rng = Rng::new(0xBA5E ^ case);
        let ws = gen_world_set(&mut rng, &cfg);
        let plan = gen_plan(&mut rng, &ws, 3);
        let mut ws_eval = ws.clone();
        run(&mut ws_eval, &plan).expect("generated plan evaluates");
        assert_eq!(ws_eval.relations, ws.relations);
        // Pure relational algebra creates no components either.
        assert_eq!(ws_eval.components, ws.components);
    }
}
