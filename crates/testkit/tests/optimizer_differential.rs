//! Differential tests for the logical plan optimizer.
//!
//! Three directions, all on randomized world sets:
//!
//! * **optimized vs. unoptimized plans** — random plans interleaving the
//!   positive relational algebra with the uncertainty constructs (RA both
//!   above and below `possible`/`certain`/`conf`/`repair-key`) execute to
//!   the same u-relation before and after [`maybms_algebra::optimize`],
//!   with the output schema preserved and optimization idempotent.
//! * **optimized MayQL by default** — `compile` (which optimizes) and
//!   `compile_unoptimized` agree on every generated query string, so the
//!   planner's default path is safe.
//! * **rewrites actually fire** — across the generated corpus the
//!   optimizer changes a healthy fraction of plans; a silent no-op
//!   optimizer would pass the equivalence checks vacuously.
//!
//! Comparisons sort-and-dedup results, because the rewrites preserve the
//! *set* a u-relation denotes, not its row order. Component minting stays
//! deterministic across the rewrite (repair-key inputs are never reordered
//! in a way its internal canonical sort doesn't absorb), so descriptors
//! are compared exactly, not merely isomorphically. A failing case prints
//! its seed and both plan trees for exact replay.

use maybms_algebra::{infer_schema, optimize, optimize_with_stats, run, Plan};
use maybms_core::rng::Rng;
use maybms_core::{world_set_stats, URelation, WorldSet};
use maybms_sql::{compile, compile_unoptimized, Catalog};
use maybms_testkit::{gen_query, gen_uncertain_plan, gen_world_set, GenConfig};

/// ≥ 150 generated plans, per the optimizer issue's acceptance bar.
const PLAN_CASES: usize = 160;
/// Generated MayQL strings for the compile-path comparison.
const QUERY_CASES: usize = 120;

fn execute(ws: &WorldSet, plan: &Plan, context: &str) -> URelation {
    let mut ws = ws.clone();
    let mut result = run(&mut ws, plan).unwrap_or_else(|e| panic!("{context}: {e}"));
    result.dedup();
    result
}

#[test]
fn optimized_plans_execute_identically() {
    let cfg = GenConfig::default();
    let mut rewritten = 0;
    for case in 0..PLAN_CASES {
        let seed = 0x0071_0000 + case as u64;
        let mut rng = Rng::new(seed);
        let ws = gen_world_set(&mut rng, &cfg);
        let plan = gen_uncertain_plan(&mut rng, &ws, 2);
        let optimized = optimize(&plan, &ws.relations)
            .unwrap_or_else(|e| panic!("seed {seed}: optimize failed: {e}\nplan:\n{plan}"));

        // The optimizer must never change what a plan *means* statically…
        assert_eq!(
            infer_schema(&plan, &ws.relations).expect("generated plans are well-typed"),
            infer_schema(&optimized, &ws.relations)
                .unwrap_or_else(|e| panic!("seed {seed}: optimized plan is ill-typed: {e}")),
            "seed {seed}: output schema changed\nplan:\n{plan}\noptimized:\n{optimized}"
        );

        // …nor what it evaluates to.
        let a = execute(&ws, &plan, &format!("seed {seed}, original"));
        let b = execute(&ws, &optimized, &format!("seed {seed}, optimized"));
        assert_eq!(
            a, b,
            "seed {seed}: execution differs\nplan:\n{plan}\noptimized:\n{optimized}"
        );

        // Optimization is idempotent: a second pass finds nothing.
        let twice = optimize(&optimized, &ws.relations).expect("re-optimization succeeds");
        assert_eq!(
            optimized.to_string(),
            twice.to_string(),
            "seed {seed}: optimization is not idempotent"
        );

        if plan.to_string() != optimized.to_string() {
            rewritten += 1;
        }
    }
    // The corpus is built to trigger rewrites; if almost nothing fires the
    // optimizer has silently stopped doing work.
    assert!(
        rewritten >= PLAN_CASES / 4,
        "only {rewritten}/{PLAN_CASES} generated plans were rewritten"
    );
}

/// Regression: `certain` must not commute with projection. Two rows that
/// differ only in a projected-away column, under descriptors that jointly
/// cover all worlds, make the projected tuple certain even though neither
/// full tuple is — so `π_k(certain(π_{k,v}(R)))` is `{}` while
/// `π_k(certain(π_k(R)))` would be `{(1)}`. The optimizer once pruned the
/// inner projection below CERTAIN and flipped the answer.
#[test]
fn certain_is_a_projection_barrier() {
    use maybms_core::{Component, Schema, Tuple, ValueType, WsDescriptor};

    let mut ws = WorldSet::new();
    let c = ws.components.add(Component::uniform(2).expect("2 > 0"));
    let schema = Schema::of(&[("k", ValueType::Int), ("v", ValueType::Int)]).unwrap();
    let mut rel = URelation::new(schema);
    rel.push(
        Tuple::new(vec![1.into(), 10.into()]),
        WsDescriptor::single(c, 0),
    )
    .unwrap();
    rel.push(
        Tuple::new(vec![1.into(), 20.into()]),
        WsDescriptor::single(c, 1),
    )
    .unwrap();
    ws.insert("r", rel).unwrap();

    let plan = maybms_ql::certain(Plan::scan("r").project(["k", "v"])).project(["k"]);
    let optimized = optimize(&plan, &ws.relations).unwrap();
    let a = execute(&ws, &plan, "certain barrier, original");
    let b = execute(&ws, &optimized, "certain barrier, optimized");
    assert_eq!(a, b, "optimized:\n{optimized}");
    assert!(a.is_empty(), "no full tuple is certain here");
}

/// Regression: projection pruning above a *swapping* rename must keep both
/// pairs and both source columns — dropping the not-required pair once
/// rewrote `rename[a → b, b → a]` into a plan whose single rename collided
/// with a still-existing column (`duplicate column`).
#[test]
fn swap_renames_survive_projection_pruning() {
    use maybms_core::{Relation, Schema, Tuple, ValueType};

    let schema = Schema::of(&[("a", ValueType::Int), ("b", ValueType::Int)]).unwrap();
    let rel = Relation::from_rows(
        schema,
        vec![
            Tuple::new(vec![1.into(), 2.into()]),
            Tuple::new(vec![3.into(), 4.into()]),
        ],
    )
    .unwrap();
    let mut ws = WorldSet::new();
    ws.insert("r", URelation::from_certain(&rel)).unwrap();

    let plan = Plan::scan("r")
        .rename([("a", "b"), ("b", "a")])
        .project(["a"]);
    let optimized = optimize(&plan, &ws.relations).unwrap();
    infer_schema(&optimized, &ws.relations)
        .unwrap_or_else(|e| panic!("optimized plan is ill-typed: {e}\n{optimized}"));
    let a = execute(&ws, &plan, "swap rename, original");
    let b = execute(&ws, &optimized, "swap rename, optimized");
    assert_eq!(a, b, "optimized:\n{optimized}");
}

/// A chain-joinable world: `k` relations `r0(c0, c1) … r{k-1}(c{k-1}, ck)`
/// with deliberately skewed sizes (so the cost phase has reorderings worth
/// choosing) and a mix of certain and single-component-uncertain rows.
fn chain_world(rng: &mut Rng, k: usize) -> WorldSet {
    use maybms_core::{Component, Schema, Tuple, Value, ValueType, WsDescriptor};

    let mut ws = WorldSet::new();
    for i in 0..k {
        let schema = Schema::of(&[
            (format!("c{i}").as_str(), ValueType::Int),
            (format!("c{}", i + 1).as_str(), ValueType::Int),
        ])
        .expect("distinct columns");
        let mut rel = URelation::new(schema);
        // Sizes alternate between tiny and biggish so join order matters.
        let rows = if rng.chance(0.5) {
            rng.range(2, 6)
        } else {
            rng.range(20, 50)
        };
        let dom = rng.range(3, 9);
        for _ in 0..rows {
            let desc = if rng.chance(0.3) {
                let c = ws.components.add(Component::uniform(2).expect("2 > 0"));
                WsDescriptor::single(c, rng.below(2) as u16)
            } else {
                WsDescriptor::tautology()
            };
            rel.push(
                Tuple::new(vec![
                    Value::Int(rng.below(dom) as i64),
                    Value::Int(rng.below(dom) as i64),
                ]),
                desc,
            )
            .expect("tuple matches schema");
        }
        ws.insert(format!("r{i}"), rel).expect("fresh name");
    }
    ws
}

/// The cost-based phase on reorder-eligible 4–6-relation join chains with
/// quantifiers interleaved: cost-optimized ≡ rule-only ≡ raw execution
/// (compared after dedup — reordering may permute rows, never the set),
/// schemas preserved, `optimize_with_stats` idempotent, and the phase
/// actually reorders a healthy fraction of the corpus.
#[test]
fn cost_optimized_plans_execute_identically() {
    let mut reordered = 0;
    let mut cases = 0;
    for case in 0..60u64 {
        let seed = 0x0071_2000 + case;
        let mut rng = Rng::new(seed);
        let k = rng.range(4, 7);
        let ws = chain_world(&mut rng, k);
        let stats = world_set_stats(&ws);

        // A scrambled left-deep join over all k relations, with `possible`
        // or `certain` wrapped around random prefixes (conf's appended
        // column would join on `conf` above it, so it stays at the top).
        let mut order: Vec<usize> = (0..k).collect();
        for i in (1..k).rev() {
            order.swap(i, rng.below(i + 1));
        }
        let mut plan = Plan::scan(format!("r{}", order[0]));
        for &i in &order[1..] {
            plan = plan.join(Plan::scan(format!("r{i}")));
            if rng.chance(0.25) {
                plan = if rng.chance(0.5) {
                    maybms_ql::possible(plan)
                } else {
                    maybms_ql::certain(plan)
                };
            }
        }
        if rng.chance(0.3) {
            plan = maybms_ql::conf(plan);
        }

        let rules = optimize(&plan, &ws.relations)
            .unwrap_or_else(|e| panic!("seed {seed}: optimize failed: {e}\nplan:\n{plan}"));
        let cost = optimize_with_stats(&plan, &ws.relations, &stats)
            .unwrap_or_else(|e| panic!("seed {seed}: cost phase failed: {e}\nplan:\n{plan}"));

        let schema = infer_schema(&plan, &ws.relations).expect("generated plans are well-typed");
        assert_eq!(
            schema,
            infer_schema(&cost, &ws.relations)
                .unwrap_or_else(|e| panic!("seed {seed}: cost plan is ill-typed: {e}\n{cost}")),
            "seed {seed}: output schema changed\nplan:\n{plan}\ncost:\n{cost}"
        );

        let a = execute(&ws, &plan, &format!("seed {seed}, raw"));
        let b = execute(&ws, &rules, &format!("seed {seed}, rule-only"));
        let c = execute(&ws, &cost, &format!("seed {seed}, cost-optimized"));
        assert_eq!(
            a, b,
            "seed {seed}: rule-only differs from raw\nplan:\n{plan}\nrules:\n{rules}"
        );
        assert_eq!(
            b, c,
            "seed {seed}: cost-optimized differs from rule-only\nplan:\n{plan}\nrules:\n{rules}\ncost:\n{cost}"
        );

        let twice =
            optimize_with_stats(&cost, &ws.relations, &stats).expect("re-optimization succeeds");
        assert_eq!(
            cost.to_string(),
            twice.to_string(),
            "seed {seed}: cost optimization is not idempotent\nplan:\n{plan}"
        );

        cases += 1;
        if cost.to_string() != rules.to_string() {
            reordered += 1;
        }
    }
    // Skewed sizes and scrambled orders are built to give the cost phase
    // work; if it never disagrees with the rule-only shape it has silently
    // stopped reordering.
    assert!(
        reordered >= cases / 4,
        "only {reordered}/{cases} chains were reordered"
    );
}

#[test]
fn default_compile_path_matches_unoptimized_compile() {
    let cfg = GenConfig::default();
    for case in 0..QUERY_CASES {
        let seed = 0x0071_1000 + case as u64;
        let mut rng = Rng::new(seed);
        let ws = gen_world_set(&mut rng, &cfg);
        let (text, _) = gen_query(&mut rng, &ws, 2);
        let catalog = Catalog::from_world_set(&ws);

        let optimized = compile(&catalog, &text)
            .unwrap_or_else(|e| panic!("seed {seed}: {text}\n{}", e.render(&text)));
        let raw = compile_unoptimized(&catalog, &text)
            .unwrap_or_else(|e| panic!("seed {seed}: {text}\n{}", e.render(&text)));
        let a = execute(&ws, &optimized, &format!("seed {seed}, optimized: {text}"));
        let b = execute(&ws, &raw, &format!("seed {seed}, raw: {text}"));
        assert_eq!(a, b, "seed {seed}: execution differs for: {text}");
    }
}
