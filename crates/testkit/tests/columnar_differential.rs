//! Differential tests for the columnar execution core: the row↔columnar
//! conversion must round-trip exactly over every value type, the columnar
//! executor must agree with the enumerate-all-worlds oracle on random plans
//! and uncertainty constructs, and the columnar normalization path must
//! produce byte-identical rows to the row-oriented reference rewrite.

use std::collections::BTreeMap;

use maybms_algebra::{naive, run};
use maybms_core::columnar::{ColumnarURelation, StrPool};
use maybms_core::normalize::{normalize_relation, normalize_rows};
use maybms_core::rng::Rng;
use maybms_core::{DescriptorPool, Tuple, URelation, Value};
use maybms_ql::{certain, conf, possible};
use maybms_testkit::{
    certain_oracle, conf_oracle, gen_mixed_relation, gen_plan, gen_world_set, per_world_results,
    possible_oracle, GenConfig, WORLD_LIMIT,
};

const CASES: u64 = 120;
const EPS: f64 = 1e-9;

/// Row → columnar → row must reproduce the relation exactly — tuples, row
/// order, descriptors, nulls, and float bit patterns included — and the
/// coarse sort key must never contradict the full cell order.
#[test]
fn row_columnar_roundtrip_is_exact() {
    for case in 0..200u64 {
        let mut rng = Rng::new(0xC01_0000 ^ case);
        let ws = gen_world_set(&mut rng, &GenConfig::default());
        let rel = gen_mixed_relation(&mut rng, &ws);

        let mut pool = DescriptorPool::new();
        let mut strings = StrPool::new();
        let col = ColumnarURelation::from_urelation(&rel, &mut pool, &mut strings);
        assert_eq!(col.len(), rel.len(), "case {case}: row count drifted");
        assert_eq!(
            col.to_urelation(&pool, &strings),
            rel,
            "case {case}: round-trip diverged\n{rel}"
        );

        // Cell accessors must mirror the tuple values and their total order.
        for i in 0..rel.len() {
            let (ti, _) = &rel.rows()[i];
            assert_eq!(col.tuple_at(i, &strings), *ti, "case {case}: row {i}");
            for j in 0..rel.len() {
                let (tj, _) = &rel.rows()[j];
                assert_eq!(
                    col.cmp_rows(i, j, &strings),
                    ti.cmp(tj),
                    "case {case}: cmp_rows({i},{j})"
                );
                for (k, c) in col.columns().iter().enumerate() {
                    // The sort prefix is a *coarse* order: strictly smaller
                    // prefix must mean strictly smaller cell.
                    let (pi, pj) = (c.sort_prefix(i, &strings), c.sort_prefix(j, &strings));
                    if pi < pj {
                        assert_eq!(
                            ti.get(k).cmp(tj.get(k)),
                            std::cmp::Ordering::Less,
                            "case {case}: sort_prefix contradicts cell order at ({i},{j},{k})"
                        );
                    }
                }
            }
        }
    }
}

/// The columnar executor, instantiated in each world, must equal the naive
/// single-world algebra run inside that world — the central soundness
/// property, re-checked against the selection-vector operators.
#[test]
fn columnar_executor_matches_world_oracle() {
    let cfg = GenConfig::default();
    for case in 0..CASES {
        let mut rng = Rng::new(0xC01_A5E ^ case);
        let ws = gen_world_set(&mut rng, &cfg);
        let plan = gen_plan(&mut rng, &ws, 3);

        let mut ws_eval = ws.clone();
        let result = run(&mut ws_eval, &plan)
            .unwrap_or_else(|e| panic!("case {case}: eval failed: {e}\nplan: {plan:?}"));

        for (pick, db, _prob) in ws.enumerate(WORLD_LIMIT).expect("small world set") {
            let expected = naive::eval(&plan, &db)
                .unwrap_or_else(|e| panic!("case {case}: naive eval failed: {e}"));
            let actual = result.instantiate(&pick);
            assert_eq!(
                actual, expected,
                "case {case}: world {pick:?} disagrees\nplan: {plan:?}\nwsd result:\n{result}"
            );
        }
    }
}

/// `possible` / `certain` / `conf` on the columnar ABI must agree with
/// world-enumeration aggregation, over random inner plans.
#[test]
fn columnar_uncertainty_ops_match_oracles() {
    let cfg = GenConfig::default();
    for case in 0..CASES {
        let mut rng = Rng::new(0xC01_0DD ^ case);
        let ws = gen_world_set(&mut rng, &cfg);
        let inner = gen_plan(&mut rng, &ws, 2);
        let worlds = per_world_results(&ws, &inner).expect("oracle evaluates");
        let schema = worlds.first().expect("≥ 1 world").0.schema().clone();

        match case % 3 {
            0 => {
                let mut ws_eval = ws.clone();
                let got = run(&mut ws_eval, &possible(inner.clone())).expect("possible runs");
                assert!(got.is_certain());
                assert_eq!(
                    as_relation(&got),
                    possible_oracle(&worlds, schema),
                    "case {case}: possible disagrees\nplan: {inner:?}"
                );
            }
            1 => {
                let mut ws_eval = ws.clone();
                let got = run(&mut ws_eval, &certain(inner.clone())).expect("certain runs");
                assert!(got.is_certain());
                assert_eq!(
                    as_relation(&got),
                    certain_oracle(&worlds, schema),
                    "case {case}: certain disagrees\nplan: {inner:?}"
                );
            }
            _ => {
                let mut ws_eval = ws.clone();
                let got = run(&mut ws_eval, &conf(inner.clone())).expect("conf runs");
                let expected = conf_oracle(&worlds);
                let got = conf_as_map(&got);
                assert_eq!(
                    got.keys().collect::<Vec<_>>(),
                    expected.keys().collect::<Vec<_>>(),
                    "case {case}: conf support disagrees\nplan: {inner:?}"
                );
                for (t, p) in &expected {
                    assert!(
                        (got[t] - p).abs() < EPS,
                        "case {case}: conf({t}) = {} but oracle says {p}\nplan: {inner:?}",
                        got[t]
                    );
                }
            }
        }
    }
}

/// The columnar normalization pipeline must emit byte-identical rows to the
/// row-oriented reference rewrite — including on mixed-type relations with
/// strings, floats, and nulls.
#[test]
fn columnar_normalize_matches_reference() {
    let cfg = GenConfig::default();
    for case in 0..150u64 {
        let mut rng = Rng::new(0xC01_4E04 ^ case);
        let ws = gen_world_set(&mut rng, &cfg);
        let mixed = gen_mixed_relation(&mut rng, &ws);
        let relations = ws
            .relations
            .values()
            .chain(std::iter::once(&mixed))
            .cloned()
            .collect::<Vec<URelation>>();

        for rel in relations {
            let expected = normalize_rows(rel.rows().to_vec(), &ws.components);
            let mut got = rel.clone();
            normalize_relation(&mut got, &ws.components);
            assert_eq!(
                got.rows(),
                expected.as_slice(),
                "case {case}: columnar normalize diverged from reference on\n{rel}"
            );
        }
    }
}

/// Flatten a certain u-relation into a plain relation (asserts certainty).
fn as_relation(u: &URelation) -> maybms_core::Relation {
    let mut out = maybms_core::Relation::new(u.schema().clone());
    for (t, d) in u.rows() {
        assert!(d.is_tautology(), "expected a certain relation");
        out.insert(t.clone()).expect("schema-checked rows");
    }
    out
}

/// Read a `conf` result into a tuple → probability map (last column is the
/// confidence).
fn conf_as_map(u: &URelation) -> BTreeMap<Tuple, f64> {
    let conf_idx = u.schema().arity() - 1;
    u.rows()
        .iter()
        .map(|(t, _)| {
            let p = match t.get(conf_idx) {
                Value::Float(f) => f.get(),
                other => panic!("conf column holds {other:?}"),
            };
            (t.project(&(0..conf_idx).collect::<Vec<_>>()), p)
        })
        .collect()
}
