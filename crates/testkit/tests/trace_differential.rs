//! Differential tests for the observability layer: tracing must be a pure
//! observer. A traced run (`run_traced`) and an untraced run
//! (`run_with_stats_opts`) of the same plan on clones of the same world
//! set must produce byte-identical u-relations and identical post-run
//! world sets — at `threads = 1` and `threads = 4` with the morsel
//! threshold forced to 1 row, so span bookkeeping is exercised under
//! every parallel code path. The trace itself must be structurally sound:
//! one span per plan node (at least — operators add `·` sub-phases), a
//! root whose `rows_out` is the result cardinality, and counter
//! attribution that never loses mass (a child's inclusive counters never
//! exceed its parent's).
//!
//! A failing case prints its seed for exact replay.

use maybms_algebra::{run_traced, run_with_stats_opts};
use maybms_core::obs::SpanKind;
use maybms_core::rng::Rng;
use maybms_core::ParCfg;
use maybms_testkit::{gen_uncertain_plan, gen_world_set, GenConfig};

const CASES: u64 = 120;

/// Force every parallel code path even on tiny generated inputs.
fn par(threads: usize) -> ParCfg {
    ParCfg {
        threads,
        min_rows: 1,
    }
}

#[test]
fn traced_and_untraced_runs_are_byte_identical() {
    let cfg = GenConfig::default();
    for case in 0..CASES {
        let mut rng = Rng::new(0x7AACE ^ case);
        let ws = gen_world_set(&mut rng, &cfg);
        let plan = gen_uncertain_plan(&mut rng, &ws, 3);
        for threads in [1, 4] {
            let cfg = par(threads);
            let mut ws_plain = ws.clone();
            let (plain, _) = run_with_stats_opts(&mut ws_plain, &plan, &cfg)
                .unwrap_or_else(|e| panic!("case {case}: untraced run failed: {e}"));
            let mut ws_traced = ws.clone();
            let (traced, _, trace) = run_traced(&mut ws_traced, &plan, &cfg)
                .unwrap_or_else(|e| panic!("case {case}: traced run failed: {e}"));
            assert_eq!(
                plain, traced,
                "case {case} (threads={threads}): tracing changed the result\nplan: {plan:?}"
            );
            assert_eq!(
                plain.to_string(),
                traced.to_string(),
                "case {case} (threads={threads}): rendered results differ"
            );
            assert_eq!(
                ws_plain, ws_traced,
                "case {case} (threads={threads}): tracing changed the world set"
            );
            assert_eq!(
                trace.threads, threads,
                "case {case}: trace records the thread budget"
            );
        }
    }
}

#[test]
fn traces_cover_every_plan_node_and_attribute_consistently() {
    let cfg = GenConfig::default();
    for case in 0..CASES {
        let mut rng = Rng::new(0x57A75 ^ case);
        let ws = gen_world_set(&mut rng, &cfg);
        let plan = gen_uncertain_plan(&mut rng, &ws, 3);
        let mut ws_eval = ws.clone();
        let (result, _, trace) = run_traced(&mut ws_eval, &plan, &par(2))
            .unwrap_or_else(|e| panic!("case {case}: traced run failed: {e}"));

        // Shared Ext subtrees are evaluated once and cached, so the span
        // count can fall short of the static node count only by the size
        // of the skipped (cached) subtrees — but never below 1, and for
        // the generated plans (no sharing across clones with the same
        // Arc identity after gen) it must cover every node.
        let nodes = plan.node_count();
        let spans = trace.node_span_count();
        assert!(
            spans >= 1 && spans <= nodes,
            "case {case}: {spans} node spans for {nodes} plan nodes\nplan: {plan:?}"
        );

        let root = trace
            .root()
            .unwrap_or_else(|| panic!("case {case}: trace has no root span"));
        // The root span is the plan's root operator. (Its `rows_out`
        // counts executor batch rows, which the final u-relation
        // conversion may merge or split per ws-descriptor — so only a
        // non-empty result implies a non-empty root.)
        assert_eq!(
            root.label,
            plan.node_label(),
            "case {case}: root span is not the plan root"
        );
        if !result.is_empty() {
            assert!(
                root.rows_out > 0,
                "case {case}: non-empty result from a zero-row root span"
            );
        }

        for (i, span) in trace.spans.iter().enumerate() {
            // Wall-clock containment: a child runs inside its parent.
            if let Some(parent) = span.parent {
                let p = &trace.spans[parent as usize];
                assert!(
                    span.start_nanos >= p.start_nanos
                        && span.start_nanos + span.dur_nanos <= p.start_nanos + p.dur_nanos,
                    "case {case}: span {i} escapes its parent's interval"
                );
            }
            // Counter attribution never goes negative: exclusive counters
            // are inclusive minus children, saturating — but for a
            // single-query trace the children's sums must genuinely fit.
            if span.kind == SpanKind::Node {
                let ex = trace.exclusive(i);
                assert!(
                    ex.conjoin_calls <= span.counters.conjoin_calls
                        && ex.intern_calls <= span.counters.intern_calls
                        && ex.morsels <= span.counters.morsels,
                    "case {case}: exclusive counters of span {i} exceed inclusive"
                );
            }
        }
    }
}
