//! Differential tests for the interned execution core and the factorized
//! `conf` algorithm:
//!
//! 1. The interned-pool executor (descriptor handles, zero-copy operators,
//!    hash-and-verify join/dedup) must agree with the enumerate-all-worlds
//!    oracle on randomized plans — per world *and* on the aggregated
//!    `conf` semantics.
//! 2. `ComponentSet::prob_of_dnf` (connected-component factorization with
//!    adaptive inclusion–exclusion) must agree with
//!    `ComponentSet::prob_of_dnf_enumerate` (unfactorized brute force) on
//!    adversarial shared-variable DNFs, and `covers_all_worlds` must agree
//!    with brute-force coverage.
//! 3. `DescriptorPool` round-trips descriptors and mirrors
//!    `WsDescriptor::conjoin` exactly, including the non-canonical handles
//!    minted by pool conjunction.

use maybms_algebra::{naive, run};
use maybms_core::rng::Rng;
use maybms_core::{Component, ComponentSet, DescriptorPool, WorldSet, WsDescriptor};
use maybms_ql::conf;
use maybms_testkit::{
    conf_oracle, gen_descriptor, gen_plan, gen_world_set, per_world_results, GenConfig, WORLD_LIMIT,
};

const EPS: f64 = 1e-9;

/// Deeper plans than the base differential suite: more joins means more
/// pool conjunctions, more non-canonical handles, and more hash-dedup.
#[test]
fn interned_executor_matches_per_world_oracle_on_deep_plans() {
    let cfg = GenConfig {
        max_components: 5,
        relations: 3,
        max_rows: 8,
        max_arity: 3,
        domain: 3,
    };
    for case in 0..200u64 {
        let mut rng = Rng::new(0x147E_24ED ^ case);
        let ws = gen_world_set(&mut rng, &cfg);
        let plan = gen_plan(&mut rng, &ws, 4);

        let mut ws_eval = ws.clone();
        let result = run(&mut ws_eval, &plan)
            .unwrap_or_else(|e| panic!("case {case}: eval failed: {e}\nplan: {plan:?}"));

        for (pick, db, _prob) in ws.enumerate(WORLD_LIMIT).expect("small world set") {
            let expected = naive::eval(&plan, &db)
                .unwrap_or_else(|e| panic!("case {case}: naive eval failed: {e}"));
            assert_eq!(
                result.instantiate(&pick),
                expected,
                "case {case}: world {pick:?} disagrees\nplan: {plan:?}\nwsd result:\n{result}"
            );
        }
    }
}

/// `conf` over random plans: the factorized exact confidence of every
/// result tuple must equal the probability mass aggregated over all worlds.
#[test]
fn factorized_conf_matches_world_aggregation() {
    let cfg = GenConfig::default();
    for case in 0..100u64 {
        let mut rng = Rng::new(0xFAC7_0012 ^ case);
        let ws = gen_world_set(&mut rng, &cfg);
        let plan = gen_plan(&mut rng, &ws, 2);
        let worlds = per_world_results(&ws, &plan).expect("oracle evaluates");
        let expected = conf_oracle(&worlds);

        let mut ws_eval = ws.clone();
        let got = run(&mut ws_eval, &conf(plan.clone())).expect("conf runs");
        let conf_idx = got.schema().arity() - 1;
        assert_eq!(got.len(), expected.len(), "case {case}: support size");
        for (t, _) in got.rows() {
            let data = maybms_core::Tuple::new(t.values()[..conf_idx].to_vec());
            let p = t.get(conf_idx).as_f64().expect("conf column is a float");
            let want = expected[&data];
            assert!(
                (p - want).abs() < EPS,
                "case {case}: conf({data}) = {p}, oracle {want}\nplan: {plan:?}"
            );
        }
    }
}

/// Random components with several alternatives each.
fn gen_components(rng: &mut Rng, n: usize) -> ComponentSet {
    let mut cs = ComponentSet::new();
    for _ in 0..n {
        let alts = rng.range(2, 4);
        let weights: Vec<f64> = (0..alts).map(|_| rng.unit_f64()).collect();
        cs.add(Component::from_weights(&weights).expect("positive weights"));
    }
    cs
}

/// Factorized DNF probability and coverage versus the brute-force
/// enumerator, on DNFs engineered to stress the connected-component
/// partition: variable chains that bridge would-be groups, duplicated
/// descriptors, subsumed descriptors, and fully disjoint blocks.
#[test]
fn dnf_factorization_matches_brute_force() {
    for case in 0..400u64 {
        let mut rng = Rng::new(0xD9F_CA5E ^ case);
        let n = rng.range(1, 7);
        let cs = gen_components(&mut rng, n);
        let mut ws = WorldSet::new();
        ws.components = cs.clone();

        let mut descs: Vec<WsDescriptor> = Vec::new();
        for _ in 0..rng.range(1, 6) {
            descs.push(gen_descriptor(&mut rng, &ws));
        }
        // Adversarial garnish: duplicate one descriptor, and add a chain
        // descriptor linking two random components (bridging groups).
        if rng.chance(0.5) {
            let d = descs[rng.below(descs.len())].clone();
            descs.push(d);
        }
        if n >= 2 && rng.chance(0.7) {
            let a = rng.below(n);
            let mut b = rng.below(n);
            while b == a {
                b = rng.below(n);
            }
            let bridge = WsDescriptor::from_terms(vec![
                (
                    maybms_core::ComponentId(a as u32),
                    rng.below(cs.get(maybms_core::ComponentId(a as u32)).alternatives() as usize)
                        as u16,
                ),
                (
                    maybms_core::ComponentId(b as u32),
                    rng.below(cs.get(maybms_core::ComponentId(b as u32)).alternatives() as usize)
                        as u16,
                ),
            ])
            .expect("distinct components");
            descs.push(bridge);
        }

        let fast = cs.prob_of_dnf(&descs);
        let brute = cs.prob_of_dnf_enumerate(&descs);
        assert!(
            (fast - brute).abs() < EPS,
            "case {case}: factorized {fast} vs brute {brute}\ndescs: {descs:?}"
        );

        // Coverage must agree with per-world satisfaction.
        let covered_brute = cs
            .enumerate(WORLD_LIMIT)
            .expect("small component set")
            .iter()
            .all(|w| descs.iter().any(|d| d.satisfied_by(w)));
        assert_eq!(
            cs.covers_all_worlds(&descs),
            covered_brute,
            "case {case}: coverage disagrees\ndescs: {descs:?}"
        );
    }
}

/// Hand-picked shapes where the factorization boundary is exact: two
/// disjoint blocks, probability `1 − (1 − p₁)(1 − p₂)`.
#[test]
fn disjoint_blocks_multiply() {
    let mut cs = ComponentSet::new();
    let c: Vec<_> = (0..4)
        .map(|_| cs.add(Component::from_weights(&[1.0, 3.0]).expect("positive")))
        .collect();
    // Block A: chain over c0,c1. Block B: chain over c2,c3.
    let descs = vec![
        WsDescriptor::from_terms(vec![(c[0], 0), (c[1], 1)]).expect("distinct"),
        WsDescriptor::from_terms(vec![(c[1], 0)]).expect("distinct"),
        WsDescriptor::from_terms(vec![(c[2], 1), (c[3], 0)]).expect("distinct"),
    ];
    let pa = cs.prob_of_dnf_enumerate(&descs[..2]);
    let pb = cs.prob_of_dnf_enumerate(&descs[2..]);
    let expected = 1.0 - (1.0 - pa) * (1.0 - pb);
    assert!((cs.prob_of_dnf(&descs) - expected).abs() < EPS);
    assert!((cs.prob_of_dnf_enumerate(&descs) - expected).abs() < EPS);
}

/// Pool round-trip and conjunction against the owned-descriptor semantics,
/// including subsumption shortcuts and conflict detection.
#[test]
fn pool_conjoin_mirrors_descriptor_conjoin() {
    for case in 0..300u64 {
        let mut rng = Rng::new(0x900_1C0 ^ case);
        let n = rng.range(1, 5);
        let cs = gen_components(&mut rng, n);
        let mut ws = WorldSet::new();
        ws.components = cs;

        let mut pool = DescriptorPool::new();
        let a = gen_descriptor(&mut rng, &ws);
        let b = gen_descriptor(&mut rng, &ws);
        let (ia, ib) = (pool.intern(&a), pool.intern(&b));
        assert_eq!(pool.to_descriptor(ia), a, "round-trip a");
        assert_eq!(pool.to_descriptor(ib), b, "round-trip b");
        assert_eq!(pool.intern(&a), ia, "canonical handle");

        match (a.conjoin(&b), pool.conjoin(ia, ib)) {
            (Some(d), Some(id)) => {
                assert_eq!(
                    pool.to_descriptor(id),
                    d,
                    "case {case}: pool conjunction of {a} and {b}"
                );
                // Conjunction may mint a non-canonical handle; it must still
                // compare equal to the canonical one by content.
                let canon = pool.intern(&d);
                assert!(pool.same_descriptor(id, canon));
            }
            (None, None) => {}
            (d, id) => panic!("case {case}: conjoin disagrees: {d:?} vs {id:?} for {a} ∧ {b}"),
        }
    }
}
