//! Differential tests for sideways information passing and late
//! materialization.
//!
//! The executor's contract for both features is *byte-identical output*:
//! a Bloom filter is under-approximating (false positives only keep rows
//! the join drops anyway) and rowid-indirection gathers are a pure
//! representation change, so flipping `MAYBMS_SIP`, `MAYBMS_LATE_MAT`, or
//! the thread count must never change a u-relation or the post-run world
//! set (component minting parity included). These tests are the oracle:
//!
//! * **generated join plans** — 120 randomized plans, each rooted at a
//!   natural join over generated subtrees mixing selections, projections,
//!   renames, unions, and the uncertainty operators, run under every
//!   `{sip} × {late_mat} × {threads 1, 4}` combination and compared
//!   byte-for-byte against the all-off single-threaded baseline;
//! * **selective join chain** — a deterministic 5-way chain with a
//!   1%-selective tail (the shape SIP exists for: the filter cascades
//!   down the chain), large enough that filters actually build and prune,
//!   checked the same way plus an explicit prune-counter assertion.
//!
//! A failing case prints its seed for exact replay.

use maybms_algebra::{run_with_exec, run_with_stats_exec, ExecCfg, Plan};
use maybms_core::rng::Rng;
use maybms_core::{ParCfg, Schema, Tuple, URelation, Value, ValueType, WorldSet, WsDescriptor};
use maybms_testkit::{gen_plan, gen_uncertain_plan, gen_world_set, GenConfig};

/// Per the issue's acceptance bar.
const JOIN_PLAN_CASES: usize = 120;

/// `min_rows = 1` disables the morsel threshold so the parallel code paths
/// fire even on tiny generated inputs.
fn par(threads: usize) -> ParCfg {
    ParCfg {
        threads,
        min_rows: 1,
    }
}

/// Every `{sip} × {late_mat} × {threads}` combination under test.
fn all_cfgs() -> Vec<ExecCfg> {
    let mut cfgs = Vec::new();
    for &sip in &[false, true] {
        for &late_mat in &[false, true] {
            for &threads in &[1, 4] {
                cfgs.push(ExecCfg {
                    par: par(threads),
                    sip,
                    late_mat,
                });
            }
        }
    }
    cfgs
}

/// Run `plan` under every configuration and demand byte-identical results
/// and post-run world sets against the all-off single-threaded baseline
/// (or identical error messages, when the generated plan is ill-typed).
fn run_all(ws: &WorldSet, plan: &Plan, seed: u64) {
    let baseline_cfg = ExecCfg {
        par: par(1),
        sip: false,
        late_mat: false,
    };
    let mut ws_base = ws.clone();
    let baseline = run_with_exec(&mut ws_base, plan, &baseline_cfg);
    for cfg in all_cfgs() {
        let mut ws_var = ws.clone();
        let got = run_with_exec(&mut ws_var, plan, &cfg);
        let label = format!(
            "seed {seed}: sip={} late_mat={} threads={}",
            cfg.sip, cfg.late_mat, cfg.par.threads
        );
        match (&baseline, &got) {
            (Ok(a), Ok(b)) => {
                assert_eq!(a, b, "{label}: results differ from baseline\nplan:\n{plan}");
                assert_eq!(
                    ws_base, ws_var,
                    "{label}: post-run world sets differ (component minting)\nplan:\n{plan}"
                );
            }
            (Err(e1), Err(e2)) => assert_eq!(
                e1.to_string(),
                e2.to_string(),
                "{label}: errors differ from baseline\nplan:\n{plan}"
            ),
            _ => panic!(
                "{label}: baseline and variant disagree on success\n\
                 baseline: {baseline:?}\nvariant: {got:?}\nplan:\n{plan}"
            ),
        }
    }
}

/// 120 generated plans, each rooted at a natural join (the operator SIP
/// instruments), with generated subtrees on both sides — uncertainty
/// operators included, so the mint guard and the filter-descent barriers
/// (unions, extension operators) all get exercised.
#[test]
fn generated_join_plans_agree_across_sip_and_late_mat() {
    let cfg = GenConfig::default();
    for case in 0..JOIN_PLAN_CASES {
        let seed = 0x0051_0000 + case as u64;
        let mut rng = Rng::new(seed);
        let ws = gen_world_set(&mut rng, &cfg);
        // A join root over generated subtrees; every third case joins an
        // uncertainty-wrapped left side so repair-key minting sits inside
        // a join input (the mint-guard path).
        let left = if case % 3 == 0 {
            gen_uncertain_plan(&mut rng, &ws, 1)
        } else {
            gen_plan(&mut rng, &ws, 2)
        };
        let right = gen_plan(&mut rng, &ws, 2);
        let plan = left.join(right);
        run_all(&ws, &plan, seed);
    }
}

/// The SIP showcase shape: a 5-way chain `r1 ⋈ r2 ⋈ r3 ⋈ r4 ⋈ r5` where
/// the last relation keeps only 1% of the key space, so the Bloom filter
/// built from `r5` prunes `r4`'s scan, the already-pruned `r4` seeds the
/// next filter into `r3`, and so on down the chain. Big enough (4 × 4096
/// probe rows) that morsel parallelism engages under the default
/// threshold, small enough for a test.
#[test]
fn selective_join_chain_agrees_and_prunes() {
    let n = 4096u32;
    let mut ws = WorldSet::new();
    let cols = [("a", "b"), ("b", "c"), ("c", "d"), ("d", "e"), ("e", "f")];
    for (i, &(k1, k2)) in cols.iter().enumerate() {
        let schema =
            Schema::of(&[(k1, ValueType::Int), (k2, ValueType::Int)]).expect("distinct columns");
        let mut rel = URelation::new(schema);
        // r5 keeps one key in a hundred; r1–r4 cover the full key space.
        let rows = if i == 4 { n / 100 } else { n };
        for r in 0..rows {
            let key = if i == 4 { r * 100 } else { r };
            rel.push(
                Tuple::new(vec![Value::Int(key as i64), Value::Int(key as i64)]),
                WsDescriptor::tautology(),
            )
            .expect("tuple matches schema");
        }
        ws.insert(format!("r{}", i + 1), rel)
            .expect("certain relation is valid");
    }
    let plan = Plan::scan("r1")
        .join(Plan::scan("r2"))
        .join(Plan::scan("r3"))
        .join(Plan::scan("r4"))
        .join(Plan::scan("r5"));
    run_all(&ws, &plan, 0x0051_1000);

    // And the filters actually fired: with SIP on, the 1%-selective tail
    // must have pruned the overwhelming majority of probe rows.
    let cfg = ExecCfg {
        par: par(2),
        sip: true,
        late_mat: true,
    };
    let (result, stats) =
        run_with_stats_exec(&mut ws.clone(), &plan, &cfg).expect("chain evaluates");
    assert_eq!(
        result.len(),
        (n / 100) as usize,
        "one row per surviving key"
    );
    assert!(
        stats.sip.filters_built >= 4,
        "expected a filter per join in the chain, built {}",
        stats.sip.filters_built
    );
    assert!(
        stats.sip.probe_rows_pruned > stats.sip.probe_rows_tested / 2,
        "expected the selective tail to prune most probe rows ({} of {} pruned)",
        stats.sip.probe_rows_pruned,
        stats.sip.probe_rows_tested
    );
}
