//! Property tests for WSD normalization: the rewrites must preserve the
//! induced probability distribution over database *instances* exactly (up to
//! float tolerance), while never growing the representation.

use maybms_core::rng::Rng;
use maybms_testkit::{gen_world_set, GenConfig, WORLD_LIMIT};

const CASES: u64 = 200;
const EPS: f64 = 1e-9;

#[test]
fn normalization_preserves_instance_distribution() {
    let cfg = GenConfig::default();
    for case in 0..CASES {
        let mut rng = Rng::new(0x4E04 ^ case);
        let ws = gen_world_set(&mut rng, &cfg);
        let before = ws
            .instance_distribution(WORLD_LIMIT)
            .expect("small world set");

        let mut normalized = ws.clone();
        normalized.normalize();
        let after = normalized
            .instance_distribution(WORLD_LIMIT)
            .expect("small world set");

        assert_eq!(
            before.len(),
            after.len(),
            "case {case}: instance support changed\nbefore: {ws:?}\nafter: {normalized:?}"
        );
        for ((db_b, p_b), (db_a, p_a)) in before.iter().zip(&after) {
            assert_eq!(db_b, db_a, "case {case}: instance contents changed");
            assert!(
                (p_b - p_a).abs() < EPS,
                "case {case}: instance probability drifted: {p_b} vs {p_a}"
            );
        }

        let rows =
            |w: &maybms_core::WorldSet| -> usize { w.relations.values().map(|r| r.len()).sum() };
        assert!(
            rows(&normalized) <= rows(&ws),
            "case {case}: normalization grew the representation"
        );
        assert!(normalized.components.len() <= ws.components.len());
    }
}

#[test]
fn normalization_is_idempotent() {
    let cfg = GenConfig::default();
    for case in 0..50 {
        let mut rng = Rng::new(0x1DE0 ^ case);
        let mut ws = gen_world_set(&mut rng, &cfg);
        ws.normalize();
        let once = ws.clone();
        ws.normalize();
        assert_eq!(ws, once, "case {case}: normalize is not idempotent");
    }
}
