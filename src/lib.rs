//! # maybms — umbrella crate
//!
//! Re-exports the three layers of the MayBMS reproduction (Antova, Koch &
//! Olteanu, VLDB 2007) and hosts the runnable examples:
//!
//! * [`core`] (`maybms-core`) — world-set decompositions: values, schemas,
//!   tuples, components, world-set descriptors, u-relations, world
//!   enumeration, and normalization;
//! * [`algebra`] (`maybms-algebra`) — the logical plan IR and the executor
//!   for the positive relational algebra, evaluated directly on the compact
//!   WSD representation;
//! * [`ql`] (`maybms-ql`) — the paper's uncertainty constructs as plan
//!   operators: `repair-key`, `possible`, `certain`, and exact `conf`.
//!
//! Run the paper's census running example with
//! `cargo run --example census`. See `ARCHITECTURE.md` for the data model
//! and a worked example.

pub use maybms_algebra as algebra;
pub use maybms_core as core;
pub use maybms_ql as ql;
