//! # maybms — umbrella crate
//!
//! Re-exports the three layers of the MayBMS reproduction (Antova, Koch &
//! Olteanu, VLDB 2007) and hosts the runnable examples:
//!
//! * [`core`] (`maybms-core`) — world-set decompositions: values, schemas,
//!   tuples, components, world-set descriptors, u-relations, world
//!   enumeration, and normalization;
//! * [`algebra`] (`maybms-algebra`) — the logical plan IR and the executor
//!   for the positive relational algebra, evaluated directly on the compact
//!   WSD representation;
//! * [`ql`] (`maybms-ql`) — the paper's uncertainty constructs as plan
//!   operators: `repair-key`, `possible`, `certain`, and exact `conf`;
//! * [`sql`] (`maybms-sql`) — the MayQL textual front-end: lexer, parser,
//!   catalog-based semantic analysis, lowering to plans, and the MayQL
//!   pretty-printer.
//!
//! Run the paper's census running example with
//! `cargo run --example census`, or drive the engine interactively with
//! `cargo run --example repl` (`-- --batch examples/census.mayql` for the
//! scripted version). See `ARCHITECTURE.md` for the data model and a worked
//! example.

pub use maybms_algebra as algebra;
pub use maybms_core as core;
pub use maybms_ql as ql;
pub use maybms_sql as sql;
