//! Batch-mode golden tests for the REPL's `\set` knob handling.
//!
//! A mistyped knob used to be a silent no-op: the script kept running with
//! whatever settings it *thought* it had changed. These tests pin the hard
//! error — batch mode must stop with a non-zero exit and name the valid
//! knobs — and the success path for the knobs the error message promises.
//!
//! Each test drives the actual `repl` example binary through `cargo run`
//! (the example has no library form), so what is pinned is exactly what a
//! script author sees.

use std::path::PathBuf;
use std::process::{Command, Output};

/// Run `cargo run --example repl -- --batch <script>` on a temp script.
fn run_batch(name: &str, script: &str) -> Output {
    let path = std::env::temp_dir().join(format!("maybms-repl-batch-{name}.mayql"));
    std::fs::write(&path, script).expect("temp script is writable");
    let manifest: PathBuf = [env!("CARGO_MANIFEST_DIR"), "Cargo.toml"].iter().collect();
    let output = Command::new(std::env::var("CARGO").unwrap_or_else(|_| "cargo".into()))
        .args(["run", "--quiet", "--example", "repl", "--manifest-path"])
        .arg(&manifest)
        .arg("--")
        .arg("--batch")
        .arg(&path)
        .output()
        .expect("cargo runs");
    std::fs::remove_file(&path).ok();
    output
}

#[test]
fn unknown_set_knob_is_a_hard_error_listing_valid_knobs() {
    let out = run_batch(
        "unknown-knob",
        "\\set nosuch on\nSELECT ssn FROM censusform;\n",
    );
    assert!(
        !out.status.success(),
        "batch run with an unknown knob must exit non-zero"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("unknown knob `nosuch`"),
        "stderr names the bad knob: {stderr}"
    );
    for knob in [
        "threads",
        "conf_exact_limit",
        "cost_opt",
        "sip",
        "late_mat",
        "plan_cache",
    ] {
        assert!(
            stderr.contains(knob),
            "stderr lists valid knob `{knob}`: {stderr}"
        );
    }
    // The statement after the bad `\set` must not have run.
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        !stdout.contains("rows)"),
        "no query output after the failed \\set: {stdout}"
    );
}

#[test]
fn malformed_set_value_is_a_hard_error() {
    let out = run_batch("bad-value", "\\set sip maybe\n");
    assert!(!out.status.success(), "invalid value must exit non-zero");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("invalid value `maybe`"),
        "stderr names the bad value: {stderr}"
    );
}

#[test]
fn valid_knobs_round_trip_in_batch_mode() {
    let out = run_batch(
        "valid-knobs",
        "\\set sip off\n\\set late_mat off\n\\set plan_cache off\n\
         \\set sip on\nSELECT ssn FROM censusform;\n",
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "valid knobs succeed: {stderr}");
    for echo in [
        "sip = off",
        "late_mat = off",
        "plan_cache = off",
        "sip = on",
    ] {
        assert!(stdout.contains(echo), "stdout echoes `{echo}`: {stdout}");
    }
    // Set semantics: the four census readings hold three distinct ssns.
    assert!(stdout.contains("(3 rows)"), "the query ran: {stdout}");
}
